//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace's bench
//! targets run against this minimal wall-clock harness instead of the real
//! `criterion`. It implements the API subset those benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple: each benchmark is auto-calibrated to
//! roughly [`TARGET_SAMPLE_NANOS`] per sample, then timed for `sample_size`
//! samples, reporting the median per-iteration time (and throughput when
//! set). There is no warm-up analysis, outlier classification, or HTML
//! report — just stable, comparable numbers printed to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Target wall-clock per measured sample during calibration.
pub const TARGET_SAMPLE_NANOS: u128 = 5_000_000;

/// Default number of measured samples per benchmark.
pub const DEFAULT_SAMPLE_SIZE: usize = 50;

/// Opaque-to-the-optimizer value laundering, as in real criterion.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle, passed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of measured samples (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Calibrates, measures, and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measurement = measure(self.sample_size, f);
        let median = measurement.median_nanos;

        print!("  {id:<28} {:>12}/iter", format_nanos(median));
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                let rate = n as f64 * 1e9 / median;
                print!("   {:>14} elem/s", format_rate(rate));
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                let rate = n as f64 * 1e9 / median;
                print!("   {:>14} B/s", format_rate(rate));
            }
            _ => {}
        }
        println!();
        self
    }

    /// Ends the group (separator only; nothing buffered).
    pub fn finish(&mut self) {}
}

/// Result of one calibrated measurement, for callers that want numbers
/// back instead of (or in addition to) the printed report.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median per-iteration wall time in nanoseconds.
    pub median_nanos: f64,
    /// Iterations per sample chosen by calibration.
    pub iters_per_sample: u64,
    /// Number of measured samples.
    pub samples: usize,
}

impl Measurement {
    /// Elements per second for a workload of `elements` per iteration.
    pub fn rate(&self, elements: u64) -> f64 {
        if self.median_nanos > 0.0 {
            elements as f64 * 1e9 / self.median_nanos
        } else {
            0.0
        }
    }
}

/// Calibrates `f` to roughly [`TARGET_SAMPLE_NANOS`] per sample, then
/// times `sample_size` samples and returns the median per-iteration time.
/// This is the engine behind [`BenchmarkGroup::bench_function`], exposed
/// so benchmark *binaries* (which persist results rather than print them)
/// can share the methodology.
pub fn measure<F>(sample_size: usize, mut f: F) -> Measurement
where
    F: FnMut(&mut Bencher),
{
    let sample_size = sample_size.max(2);
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Calibrate: grow the iteration count until one sample takes
    // roughly TARGET_SAMPLE_NANOS.
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        let nanos = bencher.elapsed.as_nanos().max(1);
        if nanos >= TARGET_SAMPLE_NANOS / 2 || bencher.iters >= (1 << 30) {
            break;
        }
        let scale = (TARGET_SAMPLE_NANOS / nanos).clamp(2, 1024);
        bencher.iters = bencher.iters.saturating_mul(scale as u64);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        median_nanos: samples[samples.len() / 2],
        iters_per_sample: bencher.iters,
        samples: sample_size,
    }
}

/// Timing handle handed to the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Registers bench functions under a group name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(1));
        group.sample_size(5);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(selftest, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        selftest();
    }

    #[test]
    fn measure_returns_positive_median_and_rate() {
        let m = measure(3, |b| b.iter(|| (0..1000u64).sum::<u64>()));
        assert!(m.median_nanos > 0.0);
        assert!(m.iters_per_sample >= 1);
        assert_eq!(m.samples, 3);
        assert!(m.rate(1000) > 0.0);
        let zero = Measurement {
            median_nanos: 0.0,
            iters_per_sample: 1,
            samples: 2,
        };
        assert_eq!(zero.rate(1000), 0.0);
    }

    #[test]
    fn formatting_covers_scales() {
        assert!(format_nanos(12.3).ends_with("ns"));
        assert!(format_nanos(12_300.0).ends_with("µs"));
        assert!(format_nanos(12_300_000.0).ends_with("ms"));
        assert!(format_nanos(2.3e9).ends_with('s'));
        assert!(format_rate(2.5e9).ends_with('G'));
        assert!(format_rate(2.5e6).ends_with('M'));
        assert!(format_rate(2.5e3).ends_with('K'));
    }
}
