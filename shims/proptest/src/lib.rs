//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace's
//! property-test suites run against this hand-rolled mini harness instead
//! of the real `proptest`. It implements the API subset those suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with [`Strategy::prop_map`], ranges, tuples, [`Just`],
//!   [`any`], [`prop_oneof!`], and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * cases are drawn from a *deterministic* per-test RNG (seeded from the
//!   test's name), so failures reproduce exactly on every run;
//! * there is **no shrinking** — a failure reports the offending inputs
//!   verbatim;
//! * `prop_assume!` skips the case rather than resampling it.
//!
//! # Examples
//!
//! ```no_run
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases per property when no config is given (matches the real
/// proptest default).
pub const DEFAULT_CASES: u32 = 256;

/// Per-property configuration (the subset in use: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The value-generation interface.
///
/// Object-safe so [`prop_oneof!`] can mix differently-typed strategies
/// producing the same value type.
pub trait Strategy {
    /// Type of the generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over `arms`; each is picked with equal probability.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws one value uniformly over the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG, seeded from the test path so each property
/// gets an independent — but reproducible — stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Runs `body` for `config.cases` deterministic cases, formatting the
/// sampled inputs into the panic message on failure. Used by [`proptest!`];
/// not part of the public proptest API.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng, u32) -> Result<(), String>,
{
    let mut rng = test_rng(test_name);
    for case in 0..config.cases {
        if let Err(message) = body(&mut rng, case) {
            panic!(
                "property {test_name} failed at case {case}/{}: {message}",
                config.cases
            );
        }
    }
}

/// The common import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, Union,
    };

    /// The `prop::` module alias used by call sites
    /// (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the sampled inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Declares property tests: each function runs its body over many sampled
/// inputs. Mirrors the real `proptest!` item form.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must come first so the catch-all below
    // doesn't re-match (and infinitely recurse on) `@config` invocations.
    (@config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $(let $arg = $strategy;)*
                #[allow(unused_variables, unused_mut)]
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng, _case| {
                        $(let $arg = $crate::Strategy::sample(&$arg, rng);)*
                        $(let input = format!("{}={:?}", stringify!($arg), $arg);)*
                        let mut trail = String::new();
                        $(
                            trail.push_str(&format!("\n  {} = {:?}", stringify!($arg), $arg));
                        )*
                        let _ = input;
                        let run = || -> Result<(), String> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        };
                        run().map_err(|e| format!("{e}{trail}"))
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u32),
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0u32..10, pair in (0u64..5, 0usize..=3)) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 5 && pair.1 <= 3);
        }

        #[test]
        fn oneof_maps_and_collections(
            shape in prop_oneof![Just(Shape::Dot), (1u32..9).prop_map(Shape::Line)],
            flags in prop::collection::vec(any::<bool>(), 0..8),
        ) {
            prop_assert!(flags.len() < 8);
            match shape {
                Shape::Dot => {}
                Shape::Line(n) => prop_assert!((1..9).contains(&n)),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_and_assume(v in 0u32..100) {
            prop_assume!(v != 50);
            prop_assert_ne!(v, 50);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u32..1000;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn impossible(v in 10u32..20) {
                prop_assert!(v < 10, "v was {}", v);
            }
        }
        impossible();
    }
}
