//! Property tests for the prediction structures: the RAS against a vector
//! model, snapshot/recover laws, and accuracy floors on biased streams.

use fdip_bpred::{Bimodal, DirectionPredictor, Gshare, Hybrid, ReturnAddressStack, Tage};
use fdip_types::Addr;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum RasOp {
    Push(u64),
    Pop,
    Peek,
}

fn ras_op() -> impl Strategy<Value = RasOp> {
    prop_oneof![
        (1u64..1 << 20).prop_map(RasOp::Push),
        Just(RasOp::Pop),
        Just(RasOp::Peek),
    ]
}

/// Reference model: an unbounded stack truncated to the newest `cap`
/// entries.
#[derive(Default)]
struct RasModel {
    stack: Vec<u64>,
    cap: usize,
}

impl RasModel {
    fn push(&mut self, v: u64) {
        self.stack.push(v);
        // Overflow silently drops the oldest entry.
        if self.stack.len() > self.cap {
            self.stack.remove(0);
        }
    }

    fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    fn peek(&self) -> Option<u64> {
        self.stack.last().copied()
    }
}

proptest! {
    #[test]
    fn ras_matches_truncated_stack_model(
        cap in 1usize..12,
        ops in prop::collection::vec(ras_op(), 0..100),
    ) {
        let mut ras = ReturnAddressStack::new(cap);
        let mut model = RasModel { stack: Vec::new(), cap };
        for op in ops {
            match op {
                RasOp::Push(v) => {
                    ras.push(Addr::new(v * 4));
                    model.push(v * 4);
                }
                RasOp::Pop => {
                    prop_assert_eq!(ras.pop().map(Addr::raw), model.pop());
                }
                RasOp::Peek => {
                    prop_assert_eq!(ras.peek().map(Addr::raw), model.peek());
                }
            }
            prop_assert!(ras.len() <= cap);
            prop_assert_eq!(ras.len(), model.stack.len());
        }
    }

    #[test]
    fn ras_snapshot_restore_is_exact(
        cap in 1usize..8,
        before in prop::collection::vec(1u64..1000, 0..12),
        after in prop::collection::vec(1u64..1000, 0..12),
    ) {
        let mut ras = ReturnAddressStack::new(cap);
        for v in &before {
            ras.push(Addr::new(v * 4));
        }
        let snapshot = ras.snapshot();
        let drained: Vec<_> = std::iter::from_fn(|| ras.pop()).collect();
        for v in &after {
            ras.push(Addr::new(v * 4));
        }
        ras.restore(&snapshot);
        let restored: Vec<_> = std::iter::from_fn(|| ras.pop()).collect();
        prop_assert_eq!(drained, restored);
    }

    #[test]
    fn predictors_learn_any_constant_branch(
        pc_index in 0u64..1 << 16,
        taken in any::<bool>(),
    ) {
        let pc = Addr::from_inst_index(pc_index);
        let predictors: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(12)),
            Box::new(Gshare::new(12, 8)),
            Box::new(Hybrid::new(12, 12, 8, 12)),
            Box::new(Tage::new(12, 10, 4)),
        ];
        for mut p in predictors {
            for _ in 0..64 {
                let predicted = p.predict(pc);
                p.spec_update(pc, predicted);
                p.commit(pc, taken);
            }
            prop_assert_eq!(p.predict(pc), taken, "{} direction {}", p.name(), taken);
        }
    }

    #[test]
    fn recover_is_restore_plus_shift(
        outcomes in prop::collection::vec(any::<bool>(), 1..30),
        corrected in any::<bool>(),
    ) {
        // For history-based predictors: recover(snap, c) must equal taking
        // the snapshot history and shifting in c — verified through the
        // predictor's observable predictions on a fresh twin.
        let mut a = Gshare::new(10, 8);
        let mut b = Gshare::new(10, 8);
        let pc = Addr::new(0x40);
        for &t in &outcomes {
            a.spec_update(pc, t);
            b.spec_update(pc, t);
        }
        let snap = a.snapshot();
        // a wanders down a wrong path, then recovers.
        a.spec_update(pc, !corrected);
        a.spec_update(pc, corrected);
        a.recover(snap, corrected);
        // b just takes the corrected outcome.
        b.spec_update(pc, corrected);
        // Both must now predict identically on any pc.
        for i in 0..32u64 {
            let probe = Addr::from_inst_index(i * 3);
            prop_assert_eq!(a.predict(probe), b.predict(probe));
        }
    }

    #[test]
    fn tage_storage_is_monotone_in_tables(tables in 1usize..6) {
        let small = Tage::new(10, 8, tables);
        let large = Tage::new(10, 8, tables + 1);
        prop_assert!(large.storage_bits() > small.storage_bits());
    }
}
