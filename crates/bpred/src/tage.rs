use fdip_types::Addr;

use crate::{DirectionPredictor, GlobalHistory, HistorySnapshot, SatCounter};

/// A compact TAGE-style predictor: a bimodal base table plus tagged
/// components indexed with geometrically increasing history lengths.
///
/// This is the predictor family modern FDIP front-ends actually ship with;
/// it is provided for the predictor ablation (`a4`) and as a library
/// feature. The implementation follows the canonical TAGE update rules in
/// simplified form: longest-match provides the prediction, the alternate
/// is the next-longest match, useful bits protect providers that beat
/// their alternate, and allocation on a misprediction claims a not-useful
/// entry in a longer-history table.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{DirectionPredictor, Tage};
/// use fdip_types::Addr;
///
/// let mut p = Tage::new(12, 10, 4);
/// let pc = Addr::new(0x100);
/// for i in 0..200 {
///     let taken = i % 4 != 3; // loop with 4 trips
///     let predicted = p.predict(pc);
///     p.spec_update(pc, predicted);
///     p.commit(pc, taken);
///     if predicted != taken {
///         // (a real front-end would recover history here)
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    base: Vec<SatCounter>,
    base_mask: u64,
    tables: Vec<TaggedTable>,
    spec_history: GlobalHistory,
    commit_history: GlobalHistory,
    /// Deterministic LFSR for allocation tie-breaking.
    lfsr: u64,
}

#[derive(Clone, Debug)]
struct TaggedTable {
    entries: Vec<TageEntry>,
    mask: u64,
    history_bits: u32,
}

#[derive(Copy, Clone, Debug)]
struct TageEntry {
    tag: u16,
    counter: SatCounter,
    useful: u8,
}

const TAG_BITS: u32 = 9;

impl Tage {
    /// Creates a TAGE with `2^log2_base` base counters, `2^log2_tagged`
    /// entries per tagged table, and `tables` tagged components with
    /// history lengths 4, 8, 16, … (doubling).
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero or unreasonably large.
    pub fn new(log2_base: u32, log2_tagged: u32, tables: usize) -> Self {
        assert!((1..=24).contains(&log2_base));
        assert!((1..=24).contains(&log2_tagged));
        assert!((1..=6).contains(&tables), "history lengths fit in 64 bits");
        let base_entries = 1usize << log2_base;
        let tagged_entries = 1usize << log2_tagged;
        let tables = (0..tables)
            .map(|i| TaggedTable {
                entries: vec![
                    TageEntry {
                        tag: 0,
                        counter: SatCounter::weakly_not_taken(3),
                        useful: 0,
                    };
                    tagged_entries
                ],
                mask: tagged_entries as u64 - 1,
                history_bits: 4 << i,
            })
            .collect();
        Tage {
            base: vec![SatCounter::weakly_not_taken(2); base_entries],
            base_mask: base_entries as u64 - 1,
            tables,
            spec_history: GlobalHistory::new(),
            commit_history: GlobalHistory::new(),
            lfsr: 0xace1_ace1,
        }
    }

    fn base_index(&self, pc: Addr) -> usize {
        (pc.inst_index() & self.base_mask) as usize
    }

    /// Folds `bits` of history into `width`-bit chunks by XOR.
    fn fold(history: u64, bits: u32, width: u32) -> u64 {
        let mut h = if bits >= 64 {
            history
        } else {
            history & ((1u64 << bits) - 1)
        };
        let mut folded = 0u64;
        while h != 0 {
            folded ^= h & ((1u64 << width) - 1);
            h >>= width;
        }
        folded
    }

    fn index_and_tag(table: &TaggedTable, pc: Addr, history: &GlobalHistory) -> (usize, u16) {
        let bits = table.history_bits.min(64);
        let h = history.low_bits(bits);
        let width = 64 - table.mask.leading_zeros();
        let index = ((pc.inst_index() ^ Self::fold(h, bits, width.max(1))) & table.mask) as usize;
        let tag_fold = Self::fold(h ^ (pc.inst_index() << 3), bits.max(TAG_BITS), TAG_BITS);
        let tag = ((pc.inst_index() ^ tag_fold) & ((1 << TAG_BITS) - 1)) as u16;
        // Tag 0 means invalid; remap.
        ((index), if tag == 0 { 1 } else { tag })
    }

    /// Longest-match provider and alternate predictions for `pc` at the
    /// given history: `(provider_table, provider_pred, alt_pred)`.
    fn lookup(&self, pc: Addr, history: &GlobalHistory) -> (Option<usize>, bool, bool) {
        let base_pred = self.base[self.base_index(pc)].predicts_taken();
        let mut provider = None;
        let mut provider_pred = base_pred;
        let mut alt_pred = base_pred;
        for (i, table) in self.tables.iter().enumerate() {
            let (index, tag) = Self::index_and_tag(table, pc, history);
            if table.entries[index].tag == tag {
                alt_pred = provider_pred;
                provider = Some(i);
                provider_pred = table.entries[index].counter.predicts_taken();
            }
        }
        (provider, provider_pred, alt_pred)
    }
}

impl DirectionPredictor for Tage {
    fn predict(&self, pc: Addr) -> bool {
        self.lookup(pc, &self.spec_history).1
    }

    fn spec_update(&mut self, _pc: Addr, taken: bool) {
        self.spec_history.shift(taken);
    }

    fn commit(&mut self, pc: Addr, taken: bool) {
        let history = self.commit_history;
        let (provider, provider_pred, alt_pred) = self.lookup(pc, &history);
        match provider {
            Some(t) => {
                let (index, _) = Self::index_and_tag(&self.tables[t], pc, &history);
                let entry = &mut self.tables[t].entries[index];
                entry.counter.update(taken);
                if provider_pred != alt_pred {
                    // Useful bit tracks whether the provider beats its alt.
                    if provider_pred == taken {
                        entry.useful = (entry.useful + 1).min(3);
                    } else {
                        entry.useful = entry.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let index = self.base_index(pc);
                self.base[index].update(taken);
            }
        }
        // Allocate on misprediction: claim a not-useful entry in a table
        // with longer history than the provider.
        if provider_pred != taken {
            let start = provider.map_or(0, |t| t + 1);
            self.lfsr ^= self.lfsr << 13;
            self.lfsr ^= self.lfsr >> 7;
            self.lfsr ^= self.lfsr << 17;
            let mut allocated = false;
            for t in start..self.tables.len() {
                let (index, tag) = Self::index_and_tag(&self.tables[t], pc, &history);
                let entry = &mut self.tables[t].entries[index];
                if entry.useful == 0 {
                    entry.tag = tag;
                    entry.counter = if taken {
                        SatCounter::weakly_taken(3)
                    } else {
                        SatCounter::weakly_not_taken(3)
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Age useful bits so allocation succeeds eventually.
                for t in start..self.tables.len() {
                    let (index, _) = Self::index_and_tag(&self.tables[t], pc, &history);
                    let entry = &mut self.tables[t].entries[index];
                    entry.useful = entry.useful.saturating_sub(1);
                }
            }
        }
        self.commit_history.shift(taken);
    }

    fn snapshot(&self) -> HistorySnapshot {
        self.spec_history.snapshot()
    }

    fn recover(&mut self, snapshot: HistorySnapshot, corrected: bool) {
        self.spec_history.restore(snapshot);
        self.spec_history.shift(corrected);
    }

    fn storage_bits(&self) -> u64 {
        let base = self.base.len() as u64 * 2;
        let tagged: u64 = self
            .tables
            .iter()
            .map(|t| t.entries.len() as u64 * (TAG_BITS as u64 + 3 + 2))
            .sum();
        base + tagged
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lockstep driver with proper history recovery on mispredicts.
    fn accuracy(p: &mut Tage, seq: &[(Addr, bool)]) -> f64 {
        let mut correct = 0;
        for &(pc, taken) in seq {
            let snap = p.snapshot();
            let predicted = p.predict(pc);
            p.spec_update(pc, predicted);
            p.commit(pc, taken);
            if predicted == taken {
                correct += 1;
            } else {
                p.recover(snap, taken);
            }
        }
        correct as f64 / seq.len() as f64
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = Tage::new(12, 10, 4);
        let seq: Vec<(Addr, bool)> = (0..2000).map(|_| (Addr::new(0x40), true)).collect();
        assert!(accuracy(&mut p, &seq) > 0.99);
    }

    #[test]
    fn learns_long_loop_exits_that_defeat_bimodal() {
        // 12-trip loop: bimodal gets ~1/12 wrong; TAGE should learn the
        // exit through history.
        let mut p = Tage::new(12, 10, 4);
        let seq: Vec<(Addr, bool)> = (0..6000).map(|i| (Addr::new(0x80), i % 12 != 11)).collect();
        let tage_acc = accuracy(&mut p, &seq);
        let mut bimodal = crate::Bimodal::new(12);
        let mut correct = 0;
        for &(pc, taken) in &seq {
            if bimodal.predict(pc) == taken {
                correct += 1;
            }
            bimodal.commit(pc, taken);
        }
        let bimodal_acc = correct as f64 / seq.len() as f64;
        assert!(
            tage_acc > bimodal_acc + 0.03,
            "tage {tage_acc} vs bimodal {bimodal_acc}"
        );
        assert!(tage_acc > 0.97, "tage {tage_acc}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut p = Tage::new(12, 10, 4);
        let seq: Vec<(Addr, bool)> = (0..4000).map(|i| (Addr::new(0x100), i % 2 == 0)).collect();
        let acc = accuracy(&mut p, &seq);
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn recovery_restores_history() {
        let mut p = Tage::new(10, 8, 3);
        let pc = Addr::new(0x40);
        p.spec_update(pc, true);
        let snap = p.snapshot();
        p.spec_update(pc, false);
        p.spec_update(pc, false);
        p.recover(snap, true);
        // After recovery, spec history equals commit path if commits
        // mirror: shift true twice.
        let mut expect = GlobalHistory::new();
        expect.shift(true);
        expect.shift(true);
        assert_eq!(p.spec_history.low_bits(8), expect.low_bits(8));
    }

    #[test]
    fn storage_accounting() {
        let p = Tage::new(12, 10, 4);
        let expect = (1u64 << 12) * 2 + 4 * (1u64 << 10) * (9 + 3 + 2);
        assert_eq!(p.storage_bits(), expect);
    }

    #[test]
    fn deterministic() {
        let seq: Vec<(Addr, bool)> = (0..500)
            .map(|i| (Addr::from_inst_index(i % 37), i % 3 == 0))
            .collect();
        let mut a = Tage::new(10, 8, 3);
        let mut b = Tage::new(10, 8, 3);
        assert_eq!(accuracy(&mut a, &seq), accuracy(&mut b, &seq));
    }

    #[test]
    #[should_panic(expected = "history lengths")]
    fn too_many_tables_rejected() {
        let _ = Tage::new(10, 8, 7);
    }
}
