/// An n-bit saturating up/down counter, the building block of every
/// table-based direction predictor.
///
/// The counter saturates at `0` and `2^bits - 1`; values in the upper half
/// predict *taken*.
///
/// # Examples
///
/// ```
/// use fdip_bpred::SatCounter;
///
/// let mut c = SatCounter::weakly_not_taken(2);
/// assert!(!c.predicts_taken());
/// c.update(true);
/// assert!(c.predicts_taken()); // 1 -> 2: weakly taken
/// c.update(true);
/// c.update(true);
/// assert_eq!(c.value(), 3);    // saturated
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter with `bits` bits, initialized to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or `value` exceeds the
    /// counter's maximum.
    pub fn new(bits: u32, value: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be 1..=7 bits");
        let max = (1u8 << bits) - 1;
        assert!(value <= max, "initial value out of range");
        SatCounter { value, max }
    }

    /// A `bits`-bit counter initialized just below the taken threshold
    /// (the traditional "weakly not-taken" reset state).
    pub fn weakly_not_taken(bits: u32) -> Self {
        let max = (1u8 << bits) - 1;
        SatCounter::new(bits, max / 2)
    }

    /// A `bits`-bit counter initialized just above the taken threshold.
    pub fn weakly_taken(bits: u32) -> Self {
        let max = (1u8 << bits) - 1;
        SatCounter::new(bits, max / 2 + 1)
    }

    /// Current raw value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum raw value (`2^bits - 1`).
    pub fn max(self) -> u8 {
        self.max
    }

    /// Returns `true` if the counter is in its upper half.
    pub fn predicts_taken(self) -> bool {
        self.value > self.max / 2
    }

    /// Increments (taken) or decrements (not-taken), saturating.
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Storage cost in bits.
    pub fn bits(self) -> u32 {
        8 - self.max.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_hysteresis() {
        let mut c = SatCounter::new(2, 3); // strongly taken
        c.update(false);
        assert!(c.predicts_taken(), "one not-taken should not flip");
        c.update(false);
        assert!(!c.predicts_taken());
    }

    #[test]
    fn saturation() {
        let mut c = SatCounter::new(2, 0);
        c.update(false);
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn thresholds() {
        assert!(!SatCounter::weakly_not_taken(2).predicts_taken());
        assert!(SatCounter::weakly_taken(2).predicts_taken());
        assert!(!SatCounter::weakly_not_taken(3).predicts_taken());
        assert!(SatCounter::weakly_taken(3).predicts_taken());
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = SatCounter::new(1, 0);
        assert!(!c.predicts_taken());
        c.update(true);
        assert!(c.predicts_taken());
        c.update(false);
        assert!(!c.predicts_taken());
    }

    #[test]
    fn bits_reports_width() {
        assert_eq!(SatCounter::new(2, 0).bits(), 2);
        assert_eq!(SatCounter::new(3, 0).bits(), 3);
        assert_eq!(SatCounter::new(1, 0).bits(), 1);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_rejected() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_rejected() {
        let _ = SatCounter::new(2, 4);
    }
}
