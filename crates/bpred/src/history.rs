/// The global branch-history register: outcomes of the most recent
/// conditional branches, newest in the least-significant bit.
///
/// The front-end shifts *predicted* outcomes in at predict time; after a
/// misprediction it restores the [`HistorySnapshot`] captured when the
/// mispredicted branch was predicted and shifts in the corrected outcome.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct GlobalHistory {
    bits: u64,
}

/// An opaque checkpoint of the global history, captured per predicted
/// branch and restored on misprediction recovery.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct HistorySnapshot(u64);

impl GlobalHistory {
    /// Fresh, all-not-taken history.
    pub fn new() -> Self {
        GlobalHistory::default()
    }

    /// Shifts in one outcome (newest in bit 0).
    pub fn shift(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | u64::from(taken);
    }

    /// The low `n` bits of history.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n > 64`.
    pub fn low_bits(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 64 {
            self.bits
        } else {
            self.bits & ((1u64 << n) - 1)
        }
    }

    /// Captures the current history.
    pub fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot(self.bits)
    }

    /// Restores a previously captured history.
    pub fn restore(&mut self, snapshot: HistorySnapshot) {
        self.bits = snapshot.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_order_is_newest_in_bit_zero() {
        let mut h = GlobalHistory::new();
        h.shift(true);
        h.shift(false);
        h.shift(true);
        assert_eq!(h.low_bits(3), 0b101);
    }

    #[test]
    fn low_bits_masks() {
        let mut h = GlobalHistory::new();
        for _ in 0..10 {
            h.shift(true);
        }
        assert_eq!(h.low_bits(4), 0b1111);
        assert_eq!(h.low_bits(64), (1u64 << 10) - 1);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut h = GlobalHistory::new();
        h.shift(true);
        h.shift(true);
        let snap = h.snapshot();
        h.shift(false);
        h.shift(false);
        assert_eq!(h.low_bits(4), 0b1100);
        h.restore(snap);
        assert_eq!(h.low_bits(4), 0b0011);
    }
}
