use fdip_types::Addr;

use crate::{DirectionPredictor, HistorySnapshot, SatCounter};

/// A two-level *local*-history predictor (Yeh & Patt's PAg): a per-branch
/// history table feeding one shared pattern table of 2-bit counters.
///
/// Local history nails self-patterned branches — above all loop back-edges
/// with fixed trip counts, which it predicts perfectly once the trip count
/// fits in the history register — without the cross-branch interference
/// global schemes suffer.
///
/// Histories are updated at commit only (the predictor sees slightly stale
/// local history while speculating, the standard modeling simplification
/// for local schemes; there is no speculative global state to repair).
///
/// # Examples
///
/// ```
/// use fdip_bpred::{DirectionPredictor, TwoLevelLocal};
/// use fdip_types::Addr;
///
/// let mut p = TwoLevelLocal::new(10, 10);
/// let backedge = Addr::new(0x40);
/// // An 8-trip loop: T,T,T,T,T,T,T,N repeated.
/// for i in 0..400 {
///     p.commit(backedge, i % 8 != 7);
/// }
/// // The exit pattern is now in the history: after 7 takens, predict N.
/// # let _ = p.predict(backedge);
/// ```
#[derive(Clone, Debug)]
pub struct TwoLevelLocal {
    /// Per-branch history registers.
    histories: Vec<u16>,
    history_mask: u64,
    history_bits: u32,
    /// Shared pattern table indexed by local history.
    patterns: Vec<SatCounter>,
}

impl TwoLevelLocal {
    /// Creates a predictor with `2^log2_branches` history registers of
    /// `history_bits` bits each (the pattern table has `2^history_bits`
    /// counters).
    ///
    /// # Panics
    ///
    /// Panics if `log2_branches` is 0 or greater than 24, or
    /// `history_bits` is 0 or greater than 16.
    pub fn new(log2_branches: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&log2_branches));
        assert!((1..=16).contains(&history_bits));
        TwoLevelLocal {
            histories: vec![0; 1 << log2_branches],
            history_mask: (1u64 << log2_branches) - 1,
            history_bits,
            patterns: vec![SatCounter::weakly_not_taken(2); 1 << history_bits],
        }
    }

    fn history_index(&self, pc: Addr) -> usize {
        (pc.inst_index() & self.history_mask) as usize
    }

    fn pattern_index(&self, pc: Addr) -> usize {
        let h = self.histories[self.history_index(pc)];
        (h as usize) & ((1 << self.history_bits) - 1)
    }
}

impl DirectionPredictor for TwoLevelLocal {
    fn predict(&self, pc: Addr) -> bool {
        self.patterns[self.pattern_index(pc)].predicts_taken()
    }

    fn spec_update(&mut self, _pc: Addr, _taken: bool) {
        // Local histories advance at commit.
    }

    fn commit(&mut self, pc: Addr, taken: bool) {
        let pattern = self.pattern_index(pc);
        self.patterns[pattern].update(taken);
        let history = self.history_index(pc);
        self.histories[history] =
            ((self.histories[history] << 1) | u16::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot::default()
    }

    fn recover(&mut self, _snapshot: HistorySnapshot, _corrected: bool) {}

    fn storage_bits(&self) -> u64 {
        self.histories.len() as u64 * self.history_bits as u64 + self.patterns.len() as u64 * 2
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(p: &mut TwoLevelLocal, pc: Addr, outcomes: &[bool]) -> f64 {
        let mut correct = 0;
        for &taken in outcomes {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.commit(pc, taken);
        }
        correct as f64 / outcomes.len() as f64
    }

    #[test]
    fn loop_exits_become_perfect_after_warmup() {
        let mut p = TwoLevelLocal::new(10, 10);
        let pc = Addr::new(0x80);
        // 8-trip loop, 600 iterations — local history 10 ≥ period 8.
        let outcomes: Vec<bool> = (0..4800).map(|i| i % 8 != 7).collect();
        let acc = accuracy(&mut p, pc, &outcomes);
        assert!(acc > 0.98, "accuracy {acc}");
        // Bimodal can only get 7/8 of these.
        let mut bimodal = crate::Bimodal::new(10);
        let mut correct = 0;
        for &taken in &outcomes {
            if bimodal.predict(pc) == taken {
                correct += 1;
            }
            bimodal.commit(pc, taken);
        }
        assert!(acc > correct as f64 / outcomes.len() as f64 + 0.05);
    }

    #[test]
    fn periods_beyond_the_history_are_not_learnable() {
        let mut p = TwoLevelLocal::new(10, 4);
        let pc = Addr::new(0x80);
        // 32-trip loop with only 4 bits of history: exit invisible.
        let outcomes: Vec<bool> = (0..3200).map(|i| i % 32 != 31).collect();
        let acc = accuracy(&mut p, pc, &outcomes);
        assert!(acc < 0.99, "should not be perfect: {acc}");
        assert!(acc > 0.9, "still mostly-taken: {acc}");
    }

    #[test]
    fn branches_with_aliasing_histories_share_patterns() {
        // Two branches with identical behavior reinforce each other in the
        // shared pattern table.
        let mut p = TwoLevelLocal::new(8, 8);
        let a = Addr::from_inst_index(1);
        let b = Addr::from_inst_index(2);
        for _ in 0..20 {
            p.commit(a, true);
            p.commit(b, true);
        }
        assert!(p.predict(a));
        assert!(p.predict(b));
    }

    #[test]
    fn storage_accounting() {
        let p = TwoLevelLocal::new(10, 12);
        assert_eq!(p.storage_bits(), 1024 * 12 + 4096 * 2);
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn zero_history_rejected() {
        // The assert message names the range via the variable.
        let _ = TwoLevelLocal::new(10, 0);
    }
}
