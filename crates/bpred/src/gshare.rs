use fdip_types::Addr;

use crate::{DirectionPredictor, GlobalHistory, HistorySnapshot, SatCounter};

/// The gshare predictor: 2-bit counters indexed by `PC ⊕ global history`.
///
/// Correlates on recent branch outcomes, capturing patterned branches
/// (alternators, loop exits) that defeat [`Bimodal`](crate::Bimodal).
///
/// # Examples
///
/// ```
/// use fdip_bpred::{DirectionPredictor, Gshare};
/// use fdip_types::Addr;
///
/// let mut p = Gshare::new(12, 8);
/// let pc = Addr::new(0x100);
/// // Train an alternating pattern; gshare learns it through history.
/// for i in 0..64 {
///     let taken = i % 2 == 0;
///     p.spec_update(pc, taken);
///     p.commit(pc, taken);
/// }
/// # let _ = p.predict(pc);
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<SatCounter>,
    /// Retire-time history used to index table *training*; kept separate
    /// from the speculative history so wrong-path speculation cannot corrupt
    /// training indices.
    commit_history: GlobalHistory,
    spec_history: GlobalHistory,
    history_bits: u32,
    index_mask: u64,
}

impl Gshare {
    /// Creates a gshare predictor with `2^log2_entries` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 30, or `history_bits`
    /// exceeds 64.
    pub fn new(log2_entries: u32, history_bits: u32) -> Self {
        assert!((1..=30).contains(&log2_entries));
        assert!(history_bits <= 64);
        let entries = 1usize << log2_entries;
        Gshare {
            table: vec![SatCounter::weakly_not_taken(2); entries],
            commit_history: GlobalHistory::new(),
            spec_history: GlobalHistory::new(),
            history_bits,
            index_mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: Addr, history: &GlobalHistory) -> usize {
        let h = history.low_bits(self.history_bits);
        ((pc.inst_index() ^ h) & self.index_mask) as usize
    }

    /// Prediction made with the *commit-time* history; used by
    /// [`Hybrid`](crate::Hybrid) to train its chooser in commit order.
    pub(crate) fn commit_prediction(&self, pc: Addr) -> bool {
        self.table[self.index(pc, &self.commit_history)].predicts_taken()
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc, &self.spec_history)].predicts_taken()
    }

    fn spec_update(&mut self, _pc: Addr, taken: bool) {
        self.spec_history.shift(taken);
    }

    fn commit(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc, &self.commit_history);
        self.table[idx].update(taken);
        self.commit_history.shift(taken);
    }

    fn snapshot(&self) -> HistorySnapshot {
        self.spec_history.snapshot()
    }

    fn recover(&mut self, snapshot: HistorySnapshot, corrected: bool) {
        self.spec_history.restore(snapshot);
        self.spec_history.shift(corrected);
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives predict/spec/commit in lockstep, as a front-end with no
    /// mispredictions would, and returns the accuracy over `outcomes`.
    fn run(p: &mut Gshare, pc: Addr, outcomes: &[bool]) -> f64 {
        let mut correct = 0;
        for &taken in outcomes {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.spec_update(pc, taken);
            p.commit(pc, taken);
        }
        correct as f64 / outcomes.len() as f64
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut p = Gshare::new(12, 8);
        let outcomes: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let acc = run(&mut p, Addr::new(0x100), &outcomes);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // Pattern: 7 taken then 1 not-taken, repeated — a loop with 8 trips.
        let mut p = Gshare::new(12, 10);
        let outcomes: Vec<bool> = (0..800).map(|i| i % 8 != 7).collect();
        let acc = run(&mut p, Addr::new(0x200), &outcomes);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn bimodal_cannot_learn_what_gshare_can() {
        use crate::Bimodal;
        let outcomes: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let mut g = Gshare::new(12, 8);
        let g_acc = run(&mut g, Addr::new(0x300), &outcomes);
        let mut b = Bimodal::new(12);
        let mut b_correct = 0;
        for &taken in &outcomes {
            if b.predict(Addr::new(0x300)) == taken {
                b_correct += 1;
            }
            b.commit(Addr::new(0x300), taken);
        }
        let b_acc = b_correct as f64 / outcomes.len() as f64;
        assert!(g_acc > b_acc + 0.3, "gshare {g_acc} vs bimodal {b_acc}");
    }

    #[test]
    fn recovery_repairs_wrong_path_history() {
        let mut p = Gshare::new(10, 8);
        let pc = Addr::new(0x80);
        // Establish a speculative history, snapshot, pollute, recover.
        p.spec_update(pc, true);
        let snap = p.snapshot();
        let clean_index = p.index(pc, &p.spec_history.clone());
        p.spec_update(pc, false);
        p.spec_update(pc, false);
        p.recover(snap, true);
        // After recovery the history is the snapshot plus the corrected
        // outcome (true), so the index matches shifting `true` into the
        // clean history.
        let mut expect = GlobalHistory::new();
        expect.shift(true);
        expect.shift(true);
        assert_eq!(p.index(pc, &expect), p.index(pc, &p.spec_history.clone()));
        let _ = clean_index;
    }

    #[test]
    fn zero_history_gshare_degenerates_to_bimodal_indexing() {
        let mut p = Gshare::new(8, 0);
        let pc = Addr::new(0x500);
        p.spec_update(pc, true);
        p.spec_update(pc, false);
        // With 0 history bits the index ignores history entirely.
        assert_eq!(
            p.index(pc, &p.spec_history.clone()),
            p.index(pc, &GlobalHistory::new())
        );
    }
}
