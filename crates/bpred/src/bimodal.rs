use fdip_types::Addr;

use crate::{DirectionPredictor, HistorySnapshot, SatCounter};

/// The classic bimodal predictor: a PC-indexed table of 2-bit counters.
///
/// History-free, so it excels on strongly biased branches and forms the
/// pattern-insensitive half of the McFarling [`Hybrid`](crate::Hybrid).
///
/// # Examples
///
/// ```
/// use fdip_bpred::{Bimodal, DirectionPredictor};
/// use fdip_types::Addr;
///
/// let mut p = Bimodal::new(10);
/// let pc = Addr::new(0x80);
/// p.commit(pc, true);
/// p.commit(pc, true);
/// assert!(p.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<SatCounter>,
    index_mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log2_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 30.
    pub fn new(log2_entries: u32) -> Self {
        assert!((1..=30).contains(&log2_entries));
        let entries = 1usize << log2_entries;
        Bimodal {
            table: vec![SatCounter::weakly_not_taken(2); entries],
            index_mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: Addr) -> usize {
        (pc.inst_index() & self.index_mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].predicts_taken()
    }

    fn spec_update(&mut self, _pc: Addr, _taken: bool) {
        // Bimodal keeps no history.
    }

    fn commit(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot::default()
    }

    fn recover(&mut self, _snapshot: HistorySnapshot, _corrected: bool) {}

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_bias_quickly() {
        let mut p = Bimodal::new(8);
        let pc = Addr::new(0x400);
        p.commit(pc, true);
        p.commit(pc, true);
        assert!(p.predict(pc));
        p.commit(pc, false);
        assert!(p.predict(pc), "2-bit hysteresis survives one anomaly");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_when_indices_differ() {
        let mut p = Bimodal::new(8);
        let a = Addr::new(0x100);
        let b = Addr::new(0x104);
        p.commit(a, true);
        p.commit(a, true);
        assert!(p.predict(a));
        assert!(!p.predict(b));
    }

    #[test]
    fn aliasing_wraps_modulo_table_size() {
        let mut p = Bimodal::new(4); // 16 entries
        let a = Addr::from_inst_index(3);
        let b = Addr::from_inst_index(3 + 16);
        p.commit(a, true);
        p.commit(a, true);
        assert!(p.predict(b), "aliased pcs share a counter");
    }

    #[test]
    fn storage_bits() {
        assert_eq!(Bimodal::new(10).storage_bits(), 1024 * 2);
    }

    #[test]
    fn recover_is_a_noop() {
        let mut p = Bimodal::new(6);
        let snap = p.snapshot();
        p.commit(Addr::new(0x40), true);
        let before = p.predict(Addr::new(0x40));
        p.recover(snap, false);
        assert_eq!(p.predict(Addr::new(0x40)), before);
    }
}
