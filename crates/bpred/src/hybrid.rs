use fdip_types::Addr;

use crate::{Bimodal, DirectionPredictor, Gshare, HistorySnapshot, SatCounter};

/// McFarling-style hybrid predictor: [`Bimodal`] and [`Gshare`] components
/// arbitrated by a PC-indexed chooser table of 2-bit counters.
///
/// The chooser trains toward whichever component was correct when they
/// disagree; both components always train. This is the default predictor of
/// the reproduction's front-end, approximating the combining predictor used
/// in the 1999 evaluation.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{DirectionPredictor, Hybrid};
/// use fdip_types::Addr;
///
/// let mut p = Hybrid::new(12, 12, 10, 12);
/// let pc = Addr::new(0x40);
/// p.spec_update(pc, true);
/// p.commit(pc, true);
/// # let _ = p.predict(pc);
/// ```
#[derive(Clone, Debug)]
pub struct Hybrid {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<SatCounter>,
    chooser_mask: u64,
}

impl Hybrid {
    /// Creates a hybrid from component sizes: `2^log2_bimodal` bimodal
    /// counters, `2^log2_gshare` gshare counters with `history_bits`
    /// history, and `2^log2_chooser` chooser counters.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the component constructors.
    pub fn new(log2_bimodal: u32, log2_gshare: u32, history_bits: u32, log2_chooser: u32) -> Self {
        assert!((1..=30).contains(&log2_chooser));
        let chooser_entries = 1usize << log2_chooser;
        Hybrid {
            bimodal: Bimodal::new(log2_bimodal),
            gshare: Gshare::new(log2_gshare, history_bits),
            // Weakly prefer bimodal (upper half = use gshare): biased
            // branches dominate cold code, and bimodal is the safer default
            // until gshare demonstrates a pattern win on a given PC.
            chooser: vec![SatCounter::weakly_not_taken(2); chooser_entries],
            chooser_mask: chooser_entries as u64 - 1,
        }
    }

    fn chooser_index(&self, pc: Addr) -> usize {
        (pc.inst_index() & self.chooser_mask) as usize
    }

    fn uses_gshare(&self, pc: Addr) -> bool {
        self.chooser[self.chooser_index(pc)].predicts_taken()
    }
}

impl DirectionPredictor for Hybrid {
    fn predict(&self, pc: Addr) -> bool {
        if self.uses_gshare(pc) {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn spec_update(&mut self, pc: Addr, taken: bool) {
        self.gshare.spec_update(pc, taken);
        self.bimodal.spec_update(pc, taken);
    }

    fn commit(&mut self, pc: Addr, taken: bool) {
        // Component predictions *at commit-time table state*, used to train
        // the chooser. (Commit-order training is the standard model.)
        let g_pred = {
            // Index gshare with its commit history, as its commit() will.

            self.gshare_commit_prediction(pc)
        };
        let b_pred = self.bimodal.predict(pc);
        if g_pred != b_pred {
            let idx = self.chooser_index(pc);
            self.chooser[idx].update(g_pred == taken);
        }
        self.gshare.commit(pc, taken);
        self.bimodal.commit(pc, taken);
    }

    fn snapshot(&self) -> HistorySnapshot {
        self.gshare.snapshot()
    }

    fn recover(&mut self, snapshot: HistorySnapshot, corrected: bool) {
        self.gshare.recover(snapshot, corrected);
    }

    fn storage_bits(&self) -> u64 {
        self.bimodal.storage_bits() + self.gshare.storage_bits() + self.chooser.len() as u64 * 2
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

impl Hybrid {
    /// Gshare's would-be prediction using its commit-time history, for
    /// chooser training.
    fn gshare_commit_prediction(&self, pc: Addr) -> bool {
        self.gshare.commit_prediction(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lockstep driver (no mispredictions).
    fn accuracy(p: &mut dyn DirectionPredictor, seq: &[(Addr, bool)]) -> f64 {
        let mut correct = 0;
        for &(pc, taken) in seq {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.spec_update(pc, taken);
            p.commit(pc, taken);
        }
        correct as f64 / seq.len() as f64
    }

    /// A workload mixing a strongly biased branch (bimodal-friendly) with an
    /// alternating branch (gshare-friendly), interleaved so gshare's history
    /// is polluted for the biased branch.
    fn mixed_workload() -> Vec<(Addr, bool)> {
        let biased = Addr::new(0x1000);
        let pattern = Addr::new(0x2000);
        let noise: Vec<Addr> = (0..8).map(|i| Addr::new(0x3000 + i * 4)).collect();
        let mut seq = Vec::new();
        let mut lfsr: u64 = 0xace1;
        for i in 0..1500 {
            seq.push((biased, true));
            seq.push((pattern, i % 2 == 0));
            // Pseudo-random noise branches scramble global history.
            for &n in &noise {
                lfsr = lfsr.wrapping_mul(6364136223846793005).wrapping_add(1);
                seq.push((n, lfsr >> 63 != 0));
            }
        }
        seq
    }

    #[test]
    fn hybrid_is_competitive_with_best_component_on_mixed_workload() {
        let seq = mixed_workload();
        let mut hybrid = Hybrid::new(12, 12, 10, 12);
        let mut bimodal = Bimodal::new(12);
        let mut gshare = Gshare::new(12, 10);
        let h = accuracy(&mut hybrid, &seq);
        let b = accuracy(&mut bimodal, &seq);
        let g = accuracy(&mut gshare, &seq);
        assert!(
            h + 0.02 >= b.max(g),
            "hybrid {h} vs bimodal {b} vs gshare {g}"
        );
    }

    #[test]
    fn chooser_moves_toward_correct_component() {
        let mut p = Hybrid::new(10, 10, 8, 10);
        let pc = Addr::new(0x40);
        // Train a strong always-taken bias. Gshare also learns it, so the
        // chooser need not move; verify overall correctness instead.
        for _ in 0..50 {
            p.spec_update(pc, true);
            p.commit(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn storage_is_sum_of_parts() {
        let p = Hybrid::new(10, 11, 8, 9);
        assert_eq!(
            p.storage_bits(),
            (1u64 << 10) * 2 + (1u64 << 11) * 2 + (1u64 << 9) * 2
        );
    }

    #[test]
    fn recovery_only_touches_history() {
        let mut p = Hybrid::new(8, 8, 6, 8);
        let pc = Addr::new(0x100);
        for _ in 0..10 {
            p.spec_update(pc, true);
            p.commit(pc, true);
        }
        let snap = p.snapshot();
        p.spec_update(pc, false);
        p.recover(snap, true);
        assert!(p.predict(pc));
    }
}
