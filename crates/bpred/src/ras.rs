use fdip_types::Addr;

/// A fixed-capacity circular return address stack.
///
/// Calls push the return address; returns pop it. On overflow the oldest
/// entry is silently overwritten (as in hardware). The front-end speculates
/// through the RAS, so a full [`RasSnapshot`] can be captured per predicted
/// branch and restored on misprediction — modeling a checkpointed RAS with
/// perfect repair.
///
/// # Examples
///
/// ```
/// use fdip_bpred::ReturnAddressStack;
/// use fdip_types::Addr;
///
/// let mut ras = ReturnAddressStack::new(8);
/// ras.push(Addr::new(0x104));
/// ras.push(Addr::new(0x208));
/// assert_eq!(ras.pop(), Some(Addr::new(0x208)));
/// assert_eq!(ras.pop(), Some(Addr::new(0x104)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    /// Index one past the top of stack (modulo capacity).
    top: usize,
    /// Number of live entries (≤ capacity).
    len: usize,
}

/// A complete checkpoint of the RAS, restored on misprediction recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RasSnapshot {
    entries: Vec<Addr>,
    top: usize,
    len: usize,
}

impl ReturnAddressStack {
    /// Creates an empty RAS holding up to `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ras capacity must be positive");
        ReturnAddressStack {
            entries: vec![Addr::ZERO; capacity],
            top: 0,
            len: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no return address is available.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a return address, overwriting the oldest entry when full.
    pub fn push(&mut self, return_addr: Addr) {
        let cap = self.entries.len();
        self.entries[self.top] = return_addr;
        self.top = (self.top + 1) % cap;
        self.len = (self.len + 1).min(cap);
    }

    /// Pops the most recent return address, or `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        let cap = self.entries.len();
        self.top = (self.top + cap - 1) % cap;
        self.len -= 1;
        Some(self.entries[self.top])
    }

    /// Peeks at the most recent return address without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        let cap = self.entries.len();
        Some(self.entries[(self.top + cap - 1) % cap])
    }

    /// Captures the full stack state.
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot {
            entries: self.entries.clone(),
            top: self.top,
            len: self.len,
        }
    }

    /// Restores a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a RAS of a different capacity.
    pub fn restore(&mut self, snapshot: &RasSnapshot) {
        assert_eq!(
            snapshot.entries.len(),
            self.entries.len(),
            "snapshot capacity mismatch"
        );
        self.entries.copy_from_slice(&snapshot.entries);
        self.top = snapshot.top;
        self.len = snapshot.len;
    }

    /// Storage cost in bits, assuming `addr_bits`-bit addresses.
    pub fn storage_bits(&self, addr_bits: u32) -> u64 {
        self.entries.len() as u64 * addr_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(4);
        for i in 1..=3u64 {
            ras.push(Addr::new(i * 0x10));
        }
        assert_eq!(ras.len(), 3);
        assert_eq!(ras.pop(), Some(Addr::new(0x30)));
        assert_eq!(ras.pop(), Some(Addr::new(0x20)));
        assert_eq!(ras.pop(), Some(Addr::new(0x10)));
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Addr::new(0x10));
        ras.push(Addr::new(0x20));
        ras.push(Addr::new(0x30)); // evicts 0x10
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(Addr::new(0x30)));
        assert_eq!(ras.pop(), Some(Addr::new(0x20)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn wraparound_after_overflow_keeps_working() {
        let mut ras = ReturnAddressStack::new(3);
        for i in 1..=7u64 {
            ras.push(Addr::new(i));
        }
        assert_eq!(ras.pop(), Some(Addr::new(7)));
        ras.push(Addr::new(8));
        assert_eq!(ras.pop(), Some(Addr::new(8)));
        assert_eq!(ras.pop(), Some(Addr::new(6)));
        assert_eq!(ras.pop(), Some(Addr::new(5)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(Addr::new(0x44));
        assert_eq!(ras.peek(), Some(Addr::new(0x44)));
        assert_eq!(ras.len(), 1);
        assert_eq!(ras.pop(), Some(Addr::new(0x44)));
        assert_eq!(ras.peek(), None);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(Addr::new(0x10));
        ras.push(Addr::new(0x20));
        let snap = ras.snapshot();
        ras.pop();
        ras.push(Addr::new(0x99));
        ras.push(Addr::new(0xaa));
        ras.restore(&snap);
        assert_eq!(ras.pop(), Some(Addr::new(0x20)));
        assert_eq!(ras.pop(), Some(Addr::new(0x10)));
    }

    #[test]
    fn storage_accounting() {
        let ras = ReturnAddressStack::new(16);
        assert_eq!(ras.storage_bits(48), 16 * 48);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
