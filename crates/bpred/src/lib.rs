//! Branch-prediction structures for the FDIP reproduction.
//!
//! The decoupled front-end of the 1999 FDIP design couples a *direction
//! predictor* (is this conditional taken?), a BTB (where do taken branches
//! go? — see the `fdip-btb` crate), and a *return address stack*. This crate
//! provides the direction predictors ([`Bimodal`], [`Gshare`], and the
//! McFarling-style [`Hybrid`]), the [`ReturnAddressStack`], an optional
//! [`IndirectTargetCache`], and the speculative [`GlobalHistory`] plumbing
//! that lets the branch-prediction unit run ahead of execution and recover
//! on mispredictions.
//!
//! # Speculation protocol
//!
//! The front-end predicts branches long before they execute. Predictors
//! therefore split their state in two:
//!
//! * *history* (the global history register) is updated **speculatively** at
//!   predict time via [`DirectionPredictor::spec_update`] and repaired after
//!   a misprediction by restoring a [`HistorySnapshot`];
//! * *tables* (the saturating counters) are trained **non-speculatively** at
//!   retire time via [`DirectionPredictor::commit`].
//!
//! # Examples
//!
//! ```
//! use fdip_bpred::{DirectionPredictor, Gshare};
//! use fdip_types::Addr;
//!
//! let mut p = Gshare::new(12, 10); // 2^12 counters, 10 bits of history
//! let pc = Addr::new(0x1040);
//! for _ in 0..32 {
//!     let predicted = p.predict(pc);
//!     p.spec_update(pc, true);
//!     p.commit(pc, true);
//!     let _ = predicted;
//! }
//! assert!(p.predict(pc)); // learned always-taken
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod counter;
mod gshare;
mod history;
mod hybrid;
mod indirect;
mod local;
mod ras;
mod tage;
mod traits;

pub use bimodal::Bimodal;
pub use counter::SatCounter;
pub use gshare::Gshare;
pub use history::{GlobalHistory, HistorySnapshot};
pub use hybrid::Hybrid;
pub use indirect::IndirectTargetCache;
pub use local::TwoLevelLocal;
pub use ras::{RasSnapshot, ReturnAddressStack};
pub use tage::Tage;
pub use traits::DirectionPredictor;
