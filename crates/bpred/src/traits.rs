use fdip_types::Addr;

use crate::HistorySnapshot;

/// A conditional-branch direction predictor usable by a run-ahead front-end.
///
/// Implementations split their state into speculatively-maintained *history*
/// and retire-trained *tables*; see the [crate docs](crate) for the
/// protocol. The trait is object-safe: the front-end holds a
/// `Box<dyn DirectionPredictor>` chosen by configuration.
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at `pc` using the
    /// current (speculative) history.
    fn predict(&self, pc: Addr) -> bool;

    /// Shifts the *predicted* outcome into the speculative history.
    /// Call immediately after [`predict`](Self::predict).
    fn spec_update(&mut self, pc: Addr, taken: bool);

    /// Trains the prediction tables with the architecturally-resolved
    /// outcome. Called at retire, in program order.
    fn commit(&mut self, pc: Addr, taken: bool);

    /// Captures the speculative history, to be restored if a younger branch
    /// turns out mispredicted.
    fn snapshot(&self) -> HistorySnapshot;

    /// Restores the speculative history captured by
    /// [`snapshot`](Self::snapshot), then shifts in `corrected` — the actual
    /// outcome of the branch that mispredicted.
    fn recover(&mut self, snapshot: HistorySnapshot, corrected: bool);

    /// Total table storage in bits (history registers excluded, as in
    /// hardware budget accounting).
    fn storage_bits(&self) -> u64;

    /// Short stable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bimodal, Gshare, Hybrid};

    #[test]
    fn trait_is_object_safe() {
        let predictors: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(10)),
            Box::new(Gshare::new(10, 8)),
            Box::new(Hybrid::new(10, 10, 8, 10)),
        ];
        for p in &predictors {
            assert!(!p.name().is_empty());
            assert!(p.storage_bits() > 0);
            let _ = p.predict(Addr::new(0x40));
        }
    }
}
