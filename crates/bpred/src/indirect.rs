use fdip_types::Addr;

use crate::GlobalHistory;

/// A small tagged, direct-mapped indirect-target cache, optionally hashed
/// with global history to disambiguate polymorphic call sites.
///
/// The baseline FDIP front-end predicts indirect branches with the BTB's
/// stored target (last-taken-target policy); this structure is the optional
/// enhancement studied in the extension experiments. With `history_bits = 0`
/// it degenerates to a last-target table.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{GlobalHistory, IndirectTargetCache};
/// use fdip_types::Addr;
///
/// let mut itc = IndirectTargetCache::new(8, 4);
/// let h = GlobalHistory::new();
/// itc.update(Addr::new(0x100), &h, Addr::new(0x4000));
/// assert_eq!(itc.predict(Addr::new(0x100), &h), Some(Addr::new(0x4000)));
/// ```
#[derive(Clone, Debug)]
pub struct IndirectTargetCache {
    entries: Vec<Option<Entry>>,
    index_mask: u64,
    history_bits: u32,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Entry {
    tag: u16,
    target: Addr,
}

impl IndirectTargetCache {
    /// Creates a cache with `2^log2_entries` entries, hashing in
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 24.
    pub fn new(log2_entries: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&log2_entries));
        let entries = 1usize << log2_entries;
        IndirectTargetCache {
            entries: vec![None; entries],
            index_mask: entries as u64 - 1,
            history_bits,
        }
    }

    fn index_and_tag(&self, pc: Addr, history: &GlobalHistory) -> (usize, u16) {
        let h = history.low_bits(self.history_bits);
        let key = pc.inst_index() ^ (h << 1);
        let index = (key & self.index_mask) as usize;
        // Fold the rest of the key into a 16-bit tag.
        let hi = key >> self.index_mask.count_ones();
        let tag = ((hi ^ (hi >> 16) ^ (hi >> 32)) & 0xffff) as u16;
        (index, tag)
    }

    /// Predicted target for the indirect branch at `pc`, if a matching
    /// entry exists.
    pub fn predict(&self, pc: Addr, history: &GlobalHistory) -> Option<Addr> {
        let (index, tag) = self.index_and_tag(pc, history);
        self.entries[index]
            .filter(|e| e.tag == tag)
            .map(|e| e.target)
    }

    /// Installs or updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: Addr, history: &GlobalHistory, target: Addr) {
        let (index, tag) = self.index_and_tag(pc, history);
        self.entries[index] = Some(Entry { tag, target });
    }

    /// Storage cost in bits: 16-bit tag plus `addr_bits` target per entry.
    pub fn storage_bits(&self, addr_bits: u32) -> u64 {
        self.entries.len() as u64 * (16 + addr_bits as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut itc = IndirectTargetCache::new(6, 0);
        let h = GlobalHistory::new();
        assert_eq!(itc.predict(Addr::new(0x40), &h), None);
        itc.update(Addr::new(0x40), &h, Addr::new(0x9000));
        assert_eq!(itc.predict(Addr::new(0x40), &h), Some(Addr::new(0x9000)));
    }

    #[test]
    fn history_disambiguates_polymorphic_sites() {
        let mut itc = IndirectTargetCache::new(8, 6);
        let pc = Addr::new(0x100);
        let mut h1 = GlobalHistory::new();
        h1.shift(true);
        let mut h2 = GlobalHistory::new();
        h2.shift(true);
        h2.shift(false); // h2 = 0b10, h1 = 0b1: distinct low bits
        itc.update(pc, &h1, Addr::new(0x1000));
        itc.update(pc, &h2, Addr::new(0x2000));
        assert_eq!(itc.predict(pc, &h1), Some(Addr::new(0x1000)));
        assert_eq!(itc.predict(pc, &h2), Some(Addr::new(0x2000)));
    }

    #[test]
    fn without_history_last_target_wins() {
        let mut itc = IndirectTargetCache::new(8, 0);
        let pc = Addr::new(0x100);
        let h = GlobalHistory::new();
        itc.update(pc, &h, Addr::new(0x1000));
        itc.update(pc, &h, Addr::new(0x2000));
        assert_eq!(itc.predict(pc, &h), Some(Addr::new(0x2000)));
    }

    #[test]
    fn tag_rejects_aliases() {
        let mut itc = IndirectTargetCache::new(4, 0); // 16 entries
        let h = GlobalHistory::new();
        let a = Addr::from_inst_index(5);
        let b = Addr::from_inst_index(5 + 16 * 7); // same index, different tag
        itc.update(a, &h, Addr::new(0x1000));
        assert_eq!(itc.predict(b, &h), None, "alias must miss on tag");
    }

    #[test]
    fn storage_accounting() {
        let itc = IndirectTargetCache::new(8, 4);
        assert_eq!(itc.storage_bits(48), 256 * (16 + 48));
    }
}
