//! Steady-state allocation audit for the simulator hot loop.
//!
//! The crate promises that `Simulator::step()` allocates nothing once the
//! run is warmed up: every buffer the per-cycle path touches (FTQ, scratch
//! vectors, MSHR file, cache slabs, prefetch queues) is preallocated at
//! construction or reaches its high-water capacity early. This test makes
//! that claim falsifiable: it installs a counting global allocator, warms
//! each tracked configuration past its capacity-growth phase, then counts
//! heap allocations over the remainder of the run and requires zero.
//!
//! The allocator swap is process-wide, which is why the test lives behind
//! the off-by-default `count-allocs` feature (see `Cargo.toml`) and runs
//! as its own target:
//!
//! ```text
//! cargo test -p fdip --features count-allocs --test alloc_free
//! ```
//!
//! The trace and warmup point are deterministic, so a failure here is a
//! real regression (some per-cycle path started allocating), never flake.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use fdip::{BtbVariant, CpfMode, FrontendConfig, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};

/// Wraps the system allocator; counts `alloc`/`realloc` calls while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `config` unarmed until `warmup_instrs` instructions have retired,
/// then arms the counter for the rest of the run and returns the
/// allocation count. Warmup is measured in retired instructions, not
/// `step()` calls: the event kernel skips idle spans, so the number of
/// steps per instruction varies by config and would make a step-count
/// warmup overrun the trace.
fn steady_state_allocs(config: &FrontendConfig, warmup_instrs: u64) -> u64 {
    let trace = GeneratorConfig::profile(Profile::Server)
        .seed(5)
        .target_len(50_000)
        .generate();
    let mut sim = Simulator::new(config, &trace);
    while !sim.is_done() && sim.retired() < warmup_instrs {
        sim.step();
    }
    assert!(!sim.is_done(), "warmup consumed the whole trace");
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    while !sim.is_done() {
        sim.step();
    }
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Every configuration class tracked by `core_bench` holds the zero-alloc
/// steady-state contract.
#[test]
fn step_is_allocation_free_in_steady_state() {
    let configs: Vec<(&str, FrontendConfig)> = vec![
        ("baseline", FrontendConfig::default()),
        (
            "fdip",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "fdip_cpf",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Both)),
        ),
        (
            "fdip_x",
            FrontendConfig::default()
                .with_btb(BtbVariant::partitioned(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "ftb_fdip",
            FrontendConfig::default()
                .with_btb(BtbVariant::basic_block(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "stream",
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::StreamBuffers(Default::default())),
        ),
        (
            "pif",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::Pif(Default::default())),
        ),
    ];
    for (name, config) in configs {
        // Retiring half of the 50k-instruction trace is comfortably past
        // the point where every lazily grown structure (BTB set vecs,
        // prefetch queues, stream buffers) hits its high-water capacity.
        let allocs = steady_state_allocs(&config, 25_000);
        assert_eq!(
            allocs, 0,
            "{name}: {allocs} heap allocations in steady state (post-warmup)"
        );
    }
}
