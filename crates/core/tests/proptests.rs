//! Property tests for the full simulator: completion, determinism, and
//! physical plausibility over random configurations and workloads.

use fdip::{
    BtbVariant, CpfMode, FdipConfig, FrontendConfig, PredictorKind, PrefetcherKind, Simulator,
};
use fdip_trace::gen::{GeneratorConfig, Profile};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = Profile> {
    prop_oneof![
        Just(Profile::Client),
        Just(Profile::Server),
        Just(Profile::MicroLoop),
        Just(Profile::Jumpy),
    ]
}

fn prefetcher_strategy() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::None),
        Just(PrefetcherKind::NextLine),
        Just(PrefetcherKind::StreamBuffers(Default::default())),
        (0usize..4, any::<bool>(), 0u32..16).prop_map(|(cpf, bus, stall)| {
            let cpf = [
                CpfMode::None,
                CpfMode::Enqueue,
                CpfMode::Remove,
                CpfMode::Both,
            ][cpf];
            PrefetcherKind::Fdip(FdipConfig {
                cpf,
                require_idle_bus: bus,
                stall_path_lines: stall,
                ..FdipConfig::default()
            })
        }),
        Just(PrefetcherKind::Pif(Default::default())),
    ]
}

fn btb_strategy() -> impl Strategy<Value = BtbVariant> {
    prop_oneof![
        (6usize..12).prop_map(|log2| BtbVariant::conventional(1 << log2)),
        (6usize..12).prop_map(|log2| BtbVariant::basic_block(1 << log2)),
        (6usize..12).prop_map(|log2| BtbVariant::partitioned(1 << log2)),
        Just(BtbVariant::Ideal),
    ]
}

fn predictor_strategy() -> impl Strategy<Value = PredictorKind> {
    prop_oneof![
        (8u32..14).prop_map(|log2_entries| PredictorKind::Bimodal { log2_entries }),
        ((8u32..14), (1u32..14)).prop_map(|(log2_entries, history_bits)| {
            PredictorKind::Gshare {
                log2_entries,
                history_bits,
            }
        }),
        Just(PredictorKind::Hybrid {
            log2_entries: 12,
            history_bits: 10,
        }),
        Just(PredictorKind::Tage {
            log2_base: 10,
            log2_tagged: 8,
            tables: 4,
        }),
        Just(PredictorKind::Perfect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_configuration_completes_with_plausible_physics(
        profile in profile_strategy(),
        seed in 0u64..100,
        prefetcher in prefetcher_strategy(),
        btb in btb_strategy(),
        predictor in predictor_strategy(),
        ftq in 1usize..40,
        fetch_width in 1u32..8,
    ) {
        let trace = GeneratorConfig::profile(profile)
            .seed(seed)
            .target_len(8_000)
            .generate();
        let config = FrontendConfig {
            fetch_width,
            retire_width: fetch_width,
            ftq_entries: ftq,
            btb,
            predictor,
            prefetcher,
            ..FrontendConfig::default()
        };
        let stats = Simulator::run_trace(&config, &trace);
        // Completion.
        prop_assert_eq!(stats.instructions, trace.len() as u64);
        // Physics: IPC cannot exceed the machine width; cycles cover the work.
        prop_assert!(stats.ipc() <= fetch_width as f64 + 1e-9);
        prop_assert!(stats.cycles >= trace.len() as u64 / fetch_width as u64);
        // Counter sanity.
        let m = &stats.mem;
        prop_assert_eq!(m.l1_hits + m.l1_misses + m.pb_hits, m.l1_accesses);
        prop_assert!(stats.branches.btb_hits <= stats.branches.btb_lookups);
        prop_assert!(stats.branches.exec_redirects <= stats.branches.branches);
        prop_assert!(stats.mean_ftq_occupancy() <= ftq as f64 + 1e-9);
    }

    #[test]
    fn simulation_is_deterministic_for_any_config(
        seed in 0u64..50,
        prefetcher in prefetcher_strategy(),
    ) {
        let trace = GeneratorConfig::profile(Profile::MicroLoop)
            .seed(seed)
            .target_len(5_000)
            .generate();
        let config = FrontendConfig::default().with_prefetcher(prefetcher);
        let a = Simulator::run_trace(&config, &trace);
        let b = Simulator::run_trace(&config, &trace);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn event_kernel_matches_cycle_oracle(
        profile in profile_strategy(),
        seed in 0u64..50,
        prefetcher in prop_oneof![
            Just(PrefetcherKind::None),
            Just(PrefetcherKind::fdip()),
            (0usize..4, any::<bool>(), 0u32..16).prop_map(|(cpf, bus, stall)| {
                let cpf = [
                    CpfMode::None,
                    CpfMode::Enqueue,
                    CpfMode::Remove,
                    CpfMode::Both,
                ][cpf];
                PrefetcherKind::Fdip(FdipConfig {
                    cpf,
                    require_idle_bus: bus,
                    stall_path_lines: stall,
                    ..FdipConfig::default()
                })
            }),
        ],
        btb in btb_strategy(),
        ftq in 1usize..40,
    ) {
        // The event-driven kernel must be observationally equivalent to
        // the cycle-by-cycle oracle: equal stats structs, field by field
        // (SimStats derives PartialEq over every counter).
        let trace = GeneratorConfig::profile(profile)
            .seed(seed)
            .target_len(8_000)
            .generate();
        let config = FrontendConfig {
            ftq_entries: ftq,
            btb,
            prefetcher,
            ..FrontendConfig::default()
        };
        let event = Simulator::run_trace(&config, &trace);
        let oracle = Simulator::run_trace_cycle_oracle(&config, &trace);
        prop_assert_eq!(event, oracle);
    }

    #[test]
    fn batched_sweep_equals_independent_runs(
        profile in profile_strategy(),
        seed in 0u64..50,
        prefetcher in prefetcher_strategy(),
    ) {
        // A lockstep batch mixing shared-walk members (same BPU key),
        // a different-key member, and a live-BPU boomerang member must
        // reproduce each config's solo statistics exactly.
        let trace = GeneratorConfig::profile(profile)
            .seed(seed)
            .target_len(6_000)
            .generate();
        let configs = vec![
            FrontendConfig::default(),
            FrontendConfig::default().with_prefetcher(prefetcher),
            FrontendConfig::default()
                .with_btb(BtbVariant::basic_block(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip())
                .with_predecode_btb_fill(true),
        ];
        let batched = fdip::run_batch(&configs, &trace);
        for (config, batched) in configs.iter().zip(batched) {
            let solo = Simulator::run_trace(config, &trace);
            prop_assert_eq!(solo, batched);
        }
    }

    #[test]
    fn prefetching_never_changes_the_retired_work(
        seed in 0u64..50,
        prefetcher in prefetcher_strategy(),
    ) {
        // Correctness property: prefetchers may only change *timing*.
        let trace = GeneratorConfig::profile(Profile::Client)
            .seed(seed)
            .target_len(6_000)
            .generate();
        let with = Simulator::run_trace(
            &FrontendConfig::default().with_prefetcher(prefetcher),
            &trace,
        );
        let without = Simulator::run_trace(&FrontendConfig::default(), &trace);
        prop_assert_eq!(with.instructions, without.instructions);
        // Branch outcomes are architectural: identical regardless of caches.
        prop_assert_eq!(with.branches.branches, without.branches.branches);
        prop_assert_eq!(with.branches.conditionals, without.branches.conditionals);
    }
}
