//! # Fetch-Directed Instruction Prefetching
//!
//! A cycle-accurate, trace-driven simulator of the decoupled front-end
//! microarchitecture introduced by Reinman, Calder & Austin in
//! *"Fetch Directed Instruction Prefetching"* (MICRO-32, 1999) — rebuilt
//! from scratch in Rust, together with the baselines it was evaluated
//! against and the FDIP-X extension of the later "Revisited" study.
//!
//! ## The idea
//!
//! A branch-prediction unit (BPU) is *decoupled* from the fetch engine by a
//! **fetch target queue (FTQ)**: the BPU predicts future control flow and
//! enqueues fetch blocks faster than the fetch engine consumes them. The
//! not-yet-fetched FTQ entries are a window into the future instruction
//! stream — ideal prefetch candidates. The **prefetch engine** scans them,
//! filters candidates through **Cache Probe Filtering** (stealing idle L1-I
//! tag ports to discard blocks already cached), enqueues survivors into a
//! **prefetch instruction queue (PIQ)**, and issues them over the L2 bus
//! into a **prefetch buffer** beside the L1-I.
//!
//! ## What this crate provides
//!
//! * [`Simulator`] — drives a [`fdip_trace::Trace`] through the full
//!   front-end: BPU ([`bpu`]), FTQ ([`ftq`]), fetch engine ([`fetch`]),
//!   back-end retire proxy ([`backend`]), memory hierarchy (`fdip-mem`),
//!   and a pluggable prefetcher ([`prefetch`]).
//! * Prefetchers: none, tagged next-line, stream buffers, **FDIP** (the
//!   paper), and a PIF-style temporal streamer (extension baseline).
//! * [`FrontendConfig`] — every knob of the machine model, with the
//!   reproduction's baseline as `Default`.
//! * [`SimStats`] — cycles, IPC, miss/coverage/accuracy/bus counters.
//!
//! ## Quickstart
//!
//! ```
//! use fdip::{FrontendConfig, PrefetcherKind, Simulator};
//! use fdip_trace::gen::{GeneratorConfig, Profile};
//!
//! let trace = GeneratorConfig::profile(Profile::MicroLoop)
//!     .seed(1)
//!     .target_len(20_000)
//!     .generate();
//!
//! let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
//! let fdip = Simulator::run_trace(
//!     &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
//!     &trace,
//! );
//! assert!(fdip.ipc() >= base.ipc() * 0.99); // prefetching never tanks IPC here
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod bpu;
pub mod cancel;
mod config;
pub mod events;
pub mod fetch;
pub mod ftq;
pub mod predecode;
pub mod prefetch;
mod simulator;
pub mod spec;
mod stats;

pub use batch::{run_batch, walk_key, SharedWalk};
pub use cancel::{CancelToken, Cancelled};
pub use config::{
    BtbVariant, CpfMode, FdipConfig, FrontendConfig, PifConfig, PredictorKind, PrefetcherKind,
    ShotgunConfig,
};
pub use events::{EventCalendar, EventKind};
pub use simulator::{Simulator, StorageReport};
pub use stats::{BranchStats, FdipStats, ShotgunStats, SimStats};
