use fdip_mem::MemStats;

/// Branch-prediction counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Dynamic branches processed by the BPU.
    pub branches: u64,
    /// Dynamic conditional branches.
    pub conditionals: u64,
    /// Execute-time redirects: direction or indirect-target mispredictions.
    pub exec_redirects: u64,
    /// Decode-time redirects: BTB misses on direct branches, wrong stored
    /// targets caught at decode (misfetches).
    pub decode_redirects: u64,
    /// BTB lookups.
    pub btb_lookups: u64,
    /// BTB hits.
    pub btb_hits: u64,
    /// Taken branches the BTB failed to identify.
    pub btb_miss_taken: u64,
    /// Return-address-stack mispredictions (wrong return target).
    pub ras_mispredicts: u64,
}

impl BranchStats {
    /// Mispredictions (execute redirects) per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.exec_redirects as f64 * 1000.0 / instructions as f64
        }
    }

    /// BTB hit ratio.
    pub fn btb_hit_ratio(&self) -> f64 {
        if self.btb_lookups == 0 {
            0.0
        } else {
            self.btb_hits as f64 / self.btb_lookups as f64
        }
    }
}

/// FDIP prefetch-engine counters (zero unless the FDIP prefetcher ran).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdipStats {
    /// FTQ cache-block candidates examined.
    pub candidates: u64,
    /// Candidates suppressed by the recently-requested filter.
    pub filtered_recent: u64,
    /// Candidates discarded by an enqueue-CPF probe (already cached).
    pub filtered_cpf_enqueue: u64,
    /// PIQ entries discarded by a remove-CPF probe at issue.
    pub filtered_cpf_remove: u64,
    /// Candidates dropped because the PIQ was full.
    pub dropped_piq_full: u64,
    /// Candidates enqueued into the PIQ.
    pub enqueued: u64,
    /// Prefetches issued to the memory system.
    pub issued: u64,
    /// CPF probes that found no idle tag port this cycle.
    pub probe_port_unavailable: u64,
}

/// Shotgun-lite spatial-footprint counters (zero unless Shotgun ran).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShotgunStats {
    /// Predicted calls that triggered a footprint lookup.
    pub triggers: u64,
    /// Footprint lines enqueued across all triggers.
    pub footprint_lines_enqueued: u64,
    /// Footprint prefetches issued to the memory system.
    pub issued: u64,
}

/// Complete result of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the fetch engine delivered nothing.
    pub fetch_stall_cycles: u64,
    /// Stall cycles attributable to L1-I misses (fetch waiting on a fill).
    pub icache_stall_cycles: u64,
    /// Cycles the FTQ was empty (BPU stalled on a redirect or starved).
    pub ftq_empty_cycles: u64,
    /// Sum of FTQ occupancy sampled each cycle (for mean occupancy).
    pub ftq_occupancy_sum: u64,
    /// Branch statistics.
    pub branches: BranchStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Bus busy cycles (from the L1–L2 bus).
    pub bus_busy_cycles: u64,
    /// FDIP engine statistics.
    pub fdip: FdipStats,
    /// Stream-buffer resets (stream prefetcher only).
    pub stream_resets: u64,
    /// PIF stream-lookup misses causing replay resets (PIF only).
    pub pif_resets: u64,
    /// BTB entries pre-installed by predecode fill (Boomerang extension).
    pub predecode_installs: u64,
    /// Shotgun-lite statistics.
    pub shotgun: ShotgunStats,
    /// Redirects that finished while an earlier redirect's penalty was
    /// still pending (the earliest resume cycle wins). Structurally zero
    /// under the current one-redirect-in-flight BPU; deliberately *not*
    /// serialized into results JSON so the committed result schema (and
    /// the byte-identity of past experiment output) is unaffected.
    pub redirect_overlaps: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean FTQ occupancy in fetch blocks.
    pub fn mean_ftq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ftq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// L1-I misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem.l1_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Bus utilization over the run.
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.bus_busy_cycles as f64 / self.cycles as f64).min(1.0)
        }
    }

    /// Speedup of this run over `baseline`, or `None` when the runs are
    /// not comparable (different instruction counts, or this run retired
    /// zero cycles).
    ///
    /// Library and server paths use this form; experiment code — where a
    /// mismatch is always a programming error — uses the panicking
    /// [`speedup_over`](Self::speedup_over) wrapper.
    pub fn try_speedup_over(&self, baseline: &SimStats) -> Option<f64> {
        if self.instructions != baseline.instructions || self.cycles == 0 {
            None
        } else {
            Some(baseline.cycles as f64 / self.cycles as f64)
        }
    }

    /// Speedup of this run over `baseline` (same trace).
    ///
    /// # Panics
    ///
    /// Panics if the two runs retired different instruction counts.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert_eq!(
            self.instructions, baseline.instructions,
            "speedup requires equal work"
        );
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Fraction of the baseline's L1-I misses this run eliminated.
    pub fn miss_coverage_vs(&self, baseline: &SimStats) -> f64 {
        if baseline.mem.l1_misses == 0 {
            0.0
        } else {
            1.0 - self.mem.l1_misses as f64 / baseline.mem.l1_misses as f64
        }
    }
}

impl fdip_types::ToJson for BranchStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            branches,
            conditionals,
            exec_redirects,
            decode_redirects,
            btb_lookups,
            btb_hits,
            btb_miss_taken,
            ras_mispredicts,
        )
    }
}

impl fdip_types::ToJson for FdipStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            candidates,
            filtered_recent,
            filtered_cpf_enqueue,
            filtered_cpf_remove,
            dropped_piq_full,
            enqueued,
            issued,
            probe_port_unavailable,
        )
    }
}

impl fdip_types::ToJson for ShotgunStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(self, triggers, footprint_lines_enqueued, issued)
    }
}

impl fdip_types::ToJson for SimStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            cycles,
            instructions,
            fetch_stall_cycles,
            icache_stall_cycles,
            ftq_empty_cycles,
            ftq_occupancy_sum,
            branches,
            mem,
            bus_busy_cycles,
            fdip,
            stream_resets,
            pif_resets,
            predecode_installs,
            shotgun,
        )
    }
}

impl fdip_types::FromJson for BranchStats {
    fn from_json(value: &fdip_types::Json) -> Option<BranchStats> {
        fdip_types::from_json_fields!(
            value,
            BranchStats {
                branches,
                conditionals,
                exec_redirects,
                decode_redirects,
                btb_lookups,
                btb_hits,
                btb_miss_taken,
                ras_mispredicts,
            }
        )
    }
}

impl fdip_types::FromJson for FdipStats {
    fn from_json(value: &fdip_types::Json) -> Option<FdipStats> {
        fdip_types::from_json_fields!(
            value,
            FdipStats {
                candidates,
                filtered_recent,
                filtered_cpf_enqueue,
                filtered_cpf_remove,
                dropped_piq_full,
                enqueued,
                issued,
                probe_port_unavailable,
            }
        )
    }
}

impl fdip_types::FromJson for ShotgunStats {
    fn from_json(value: &fdip_types::Json) -> Option<ShotgunStats> {
        fdip_types::from_json_fields!(
            value,
            ShotgunStats {
                triggers,
                footprint_lines_enqueued,
                issued,
            }
        )
    }
}

impl fdip_types::FromJson for SimStats {
    fn from_json(value: &fdip_types::Json) -> Option<SimStats> {
        fdip_types::from_json_fields!(
            value,
            SimStats {
                cycles,
                instructions,
                fetch_stall_cycles,
                icache_stall_cycles,
                ftq_empty_cycles,
                ftq_occupancy_sum,
                branches,
                mem,
                bus_busy_cycles,
                fdip,
                stream_resets,
                pif_resets,
                predecode_installs,
                shotgun,
                // `redirect_overlaps` is intentionally absent from the
                // persisted schema (see its field doc); it defaults to 0
                // when parsing.
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            instructions: 2000,
            ftq_occupancy_sum: 8000,
            bus_busy_cycles: 250,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.mean_ftq_occupancy() - 8.0).abs() < 1e-12);
        assert!((s.bus_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_coverage() {
        let mut base = SimStats {
            cycles: 2000,
            instructions: 1000,
            ..SimStats::default()
        };
        base.mem.l1_misses = 100;
        let mut fast = SimStats {
            cycles: 1000,
            instructions: 1000,
            ..SimStats::default()
        };
        fast.mem.l1_misses = 25;
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((fast.miss_coverage_vs(&base) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn try_speedup_is_none_on_mismatch() {
        let a = SimStats {
            instructions: 10,
            cycles: 5,
            ..SimStats::default()
        };
        let b = SimStats {
            instructions: 20,
            cycles: 10,
            ..SimStats::default()
        };
        assert_eq!(a.try_speedup_over(&b), None);
        let c = SimStats {
            instructions: 10,
            cycles: 10,
            ..SimStats::default()
        };
        assert_eq!(a.try_speedup_over(&c), Some(2.0));
        // Zero-cycle run never divides by zero.
        let z = SimStats {
            instructions: 10,
            cycles: 0,
            ..SimStats::default()
        };
        assert_eq!(z.try_speedup_over(&c), None);
    }

    #[test]
    #[should_panic(expected = "equal work")]
    fn speedup_rejects_mismatched_runs() {
        let a = SimStats {
            instructions: 10,
            cycles: 1,
            ..SimStats::default()
        };
        let b = SimStats {
            instructions: 20,
            cycles: 1,
            ..SimStats::default()
        };
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn sim_stats_json_round_trip() {
        use fdip_types::{FromJson, Json, ToJson};
        let mut s = SimStats {
            cycles: 1234,
            instructions: 5678,
            ftq_empty_cycles: 9,
            ..SimStats::default()
        };
        s.branches.btb_hits = 42;
        s.mem.l1_misses = 7;
        s.fdip.issued = 11;
        s.shotgun.triggers = 2;
        let doc = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(SimStats::from_json(&doc), Some(s));
        // A document missing a nested struct fails whole.
        assert_eq!(
            SimStats::from_json(&Json::obj([("cycles", Json::uint(1))])),
            None
        );
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1i_mpki(), 0.0);
        assert_eq!(s.bus_utilization(), 0.0);
        assert_eq!(s.branches.mpki(0), 0.0);
        assert_eq!(s.branches.btb_hit_ratio(), 0.0);
    }
}
