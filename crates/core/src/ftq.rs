//! The fetch target queue — the decoupling structure at the heart of FDIP.

use std::collections::VecDeque;

use fdip_types::FetchBlock;

/// Why the front-end must resteer after this block, and when the resteer
/// materializes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Redirect {
    /// Caught at decode (BTB miss on a direct branch, wrong stored target):
    /// short bubble.
    Decode,
    /// Caught at execute (wrong direction, wrong indirect target): full
    /// bubble.
    Execute,
}

/// One FTQ entry: a predicted fetch block plus run-ahead bookkeeping.
#[derive(Copy, Clone, Debug)]
pub struct FtqEntry {
    /// Monotonic sequence number (prefetch scan cursor survives dequeues).
    pub seq: u64,
    /// The fetch block.
    pub block: FetchBlock,
    /// Index into the trace of the block's first instruction.
    pub trace_idx: usize,
    /// Pending front-end resteer discovered while predicting this block.
    /// The BPU stalls after emitting such a block; the penalty is charged
    /// when the fetch engine finishes delivering it.
    pub redirect: Option<Redirect>,
}

/// A bounded FIFO of predicted fetch blocks.
///
/// The head is consumed by the fetch engine; deeper entries are the
/// prefetch engine's candidate window.
///
/// # Examples
///
/// ```
/// use fdip::ftq::{Ftq, FtqEntry};
/// use fdip_types::{Addr, BlockEnd, FetchBlock};
///
/// let mut ftq = Ftq::new(2);
/// let block = FetchBlock::new(Addr::new(0x1000), 4, BlockEnd::SizeLimit);
/// let seq = ftq.push(block, 0, None).unwrap();
/// assert_eq!(seq, 0);
/// assert!(ftq.head().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Ftq {
    entries: VecDeque<FtqEntry>,
    capacity: usize,
    next_seq: u64,
}

impl Ftq {
    /// Creates an empty FTQ of `capacity` fetch blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ftq capacity must be non-zero");
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// Capacity in fetch blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no block is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when the BPU must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Enqueues a block; returns its sequence number, or `None` when full.
    pub fn push(
        &mut self,
        block: FetchBlock,
        trace_idx: usize,
        redirect: Option<Redirect>,
    ) -> Option<u64> {
        if self.is_full() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(FtqEntry {
            seq,
            block,
            trace_idx,
            redirect,
        });
        Some(seq)
    }

    /// The block the fetch engine is consuming.
    pub fn head(&self) -> Option<&FtqEntry> {
        self.entries.front()
    }

    /// Removes and returns the head.
    pub fn pop(&mut self) -> Option<FtqEntry> {
        self.entries.pop_front()
    }

    /// Iterates over all entries, head first (prefetch engine scans the
    /// non-head portion).
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        self.entries.iter()
    }

    /// The first entry *beyond the head* whose sequence number is at least
    /// `seq` — the prefetch engine's scan cursor, resolved in O(1).
    ///
    /// Sequence numbers are assigned at push and the queue is a FIFO, so
    /// queued entries hold contiguous ascending seqs; the target is found
    /// by index arithmetic instead of a linear `find`. Equivalent to
    /// `iter().skip(1).find(|e| e.seq >= seq)`, which the unit tests
    /// assert against.
    pub fn lookahead_at_or_after(&self, seq: u64) -> Option<&FtqEntry> {
        let front_seq = self.entries.front()?.seq;
        let idx = (seq.saturating_sub(front_seq) as usize).max(1);
        self.entries.get(idx)
    }

    /// Flushes every entry (pipeline flush on misprediction recovery
    /// models that restart elsewhere; the stall-on-redirect BPU keeps the
    /// FTQ correct-path, so this is used by tests and future wrong-path
    /// extensions).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_types::{Addr, BlockEnd};

    fn block(start: u64) -> FetchBlock {
        FetchBlock::new(Addr::new(start), 4, BlockEnd::SizeLimit)
    }

    #[test]
    fn lookahead_matches_linear_scan() {
        let mut ftq = Ftq::new(8);
        // Pop a few entries first so the front seq is non-zero.
        for i in 0..4 {
            ftq.push(block(0x1000 + i * 0x40), i as usize, None)
                .unwrap();
        }
        ftq.pop();
        ftq.pop();
        for i in 4..8 {
            ftq.push(block(0x1000 + i * 0x40), i as usize, None)
                .unwrap();
        }
        // Every cursor position (including before-front and past-back)
        // agrees with the reference linear scan.
        for seq in 0..12 {
            let linear = ftq.iter().skip(1).find(|e| e.seq >= seq).map(|e| e.seq);
            let indexed = ftq.lookahead_at_or_after(seq).map(|e| e.seq);
            assert_eq!(indexed, linear, "cursor seq {seq}");
        }
        ftq.flush();
        assert!(ftq.lookahead_at_or_after(0).is_none());
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut ftq = Ftq::new(2);
        assert_eq!(ftq.push(block(0x100), 0, None), Some(0));
        assert_eq!(ftq.push(block(0x200), 4, None), Some(1));
        assert!(ftq.is_full());
        assert_eq!(ftq.push(block(0x300), 8, None), None);
        assert_eq!(ftq.pop().unwrap().block.start, Addr::new(0x100));
        assert_eq!(ftq.pop().unwrap().block.start, Addr::new(0x200));
        assert!(ftq.pop().is_none());
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_wraparound() {
        let mut ftq = Ftq::new(1);
        let a = ftq.push(block(0x0), 0, None).unwrap();
        ftq.pop();
        let b = ftq.push(block(0x40), 4, None).unwrap();
        assert!(b > a);
    }

    #[test]
    fn iter_is_head_first() {
        let mut ftq = Ftq::new(4);
        ftq.push(block(0x100), 0, None);
        ftq.push(block(0x200), 4, None);
        let starts: Vec<_> = ftq.iter().map(|e| e.block.start.raw()).collect();
        assert_eq!(starts, vec![0x100, 0x200]);
    }

    #[test]
    fn flush_empties() {
        let mut ftq = Ftq::new(4);
        ftq.push(block(0x100), 0, Some(Redirect::Execute));
        ftq.flush();
        assert!(ftq.is_empty());
    }
}
