//! The FDIP prefetch engine — the paper's contribution.
//!
//! Every cycle the engine advances a scan cursor over the *non-head* FTQ
//! entries, turning each entry's cache blocks into prefetch candidates.
//! Candidates pass through, in order:
//!
//! 1. the recently-requested filter (FDIP-X throttling),
//! 2. MSHR / prefetch-buffer dedup,
//! 3. **enqueue-CPF** (when enabled): an idle L1-I tag port must confirm
//!    the block misses before it may enter the PIQ — no idle port, the
//!    candidate waits;
//! 4. the bounded **PIQ**;
//! 5. **remove-CPF** (when enabled): at issue, an idle-port probe discards
//!    entries that became cached while queued;
//! 6. the bus-idle policy gate, then issue into the prefetch buffer.

use std::collections::VecDeque;

use fdip_mem::{MemoryHierarchy, PrefetchOutcome, RecentRequestFilter};
use fdip_types::{Addr, Cycle};

use crate::config::{CpfMode, FdipConfig};
use crate::ftq::Ftq;
use crate::stats::FdipStats;

/// What an FTQ-side engine would do on upcoming cycles, as reported by
/// pause analysis ([`FdipEngine::pause_until`]). The event kernel uses
/// this to decide whether idle cycles may be skipped and which calendar
/// event bounds the skip.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EnginePause {
    /// The engine would do observable work (stats or state change) this
    /// cycle — the simulator must not skip.
    Active,
    /// The engine is blocked on something already in the calendar (a fill
    /// completion frees an MSHR) or has no work at all; skipping is safe
    /// with no extra event.
    Idle,
    /// The engine is blocked only on the bus; it becomes active at the
    /// given cycle (scheduled as the bus-grant event).
    Until(Cycle),
}

/// Outcome of running one candidate through the filter chain.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Consider {
    /// Entered the PIQ.
    Enqueued,
    /// Rejected by a filter (or dropped, PIQ full).
    Filtered,
    /// Enqueue-CPF found no idle tag port; the candidate must wait.
    NoPort,
}

/// The FTQ-side prefetch engine.
#[derive(Debug)]
pub struct FdipEngine {
    config: FdipConfig,
    piq: VecDeque<Addr>,
    recent: RecentRequestFilter,
    /// Sequence number of the FTQ entry currently being scanned.
    scan_seq: u64,
    /// Next cache-block index within that entry.
    scan_block: usize,
    block_bytes: u64,
    /// Sequential prefetch cursor used while the BPU stalls on a redirect:
    /// the real front-end keeps fetching (and thus prefetching) the
    /// sequential path until the resteer materializes, and that fall-through
    /// code is usually about to execute. `(next line, lines left)`.
    stall_path: Option<(Addr, u32)>,
}

impl FdipEngine {
    /// Creates the engine for `block_bytes` cache lines.
    pub fn new(config: FdipConfig, block_bytes: u64) -> Self {
        FdipEngine {
            config,
            piq: VecDeque::with_capacity(config.piq_entries),
            recent: RecentRequestFilter::new(config.recent_filter_entries, block_bytes),
            scan_seq: 0,
            scan_block: 0,
            block_bytes,
            stall_path: None,
        }
    }

    /// Current PIQ occupancy.
    pub fn piq_len(&self) -> usize {
        self.piq.len()
    }

    /// Arms sequential stall-path prefetching from `fall_through` (called
    /// when the BPU emits a redirect block and stalls).
    pub fn begin_stall_path(&mut self, fall_through: Addr) {
        if self.config.stall_path_lines > 0 {
            self.stall_path = Some((
                fall_through.block_base(self.block_bytes),
                self.config.stall_path_lines,
            ));
        }
    }

    /// Disarms stall-path prefetching (called when the BPU resumes).
    pub fn end_stall_path(&mut self) {
        self.stall_path = None;
    }

    /// Returns `true` when a [`per_cycle`](Self::per_cycle) call with an
    /// empty FTQ would do no work at all: the PIQ is drained and no armed
    /// stall path has lines left to walk. The simulator's idle-cycle
    /// fast-forward relies on this to skip over redirect stalls.
    pub fn is_quiescent(&self) -> bool {
        self.piq.is_empty() && !matches!(self.stall_path, Some((_, left)) if left > 0)
    }

    /// Pause analysis for the event kernel: would the next
    /// [`per_cycle`](Self::per_cycle) call do observable work, and if not,
    /// what bounds the wait? Mirrors [`scan`](Self::scan) and
    /// [`issue`](Self::issue) *in their exact blocker order* so the
    /// verdict matches what the oracle loop would have done:
    ///
    /// 1. scan would emit a candidate (or walk an armed stall path) →
    ///    [`EnginePause::Active`] (every candidate counts a stat);
    /// 2. PIQ empty (and issue disabled) → [`EnginePause::Idle`];
    /// 3. remove-CPF probe would pop a now-cached head, or has no tag
    ///    port to probe with (which counts a stat) → `Active`;
    /// 4. `require_idle_bus` with a busy bus →
    ///    [`EnginePause::Until`]`(bus free)`;
    /// 5. the head would pop silently (in flight / in the prefetch
    ///    buffer) → `Active`;
    /// 6. no MSHR within the prefetch reserve → `Idle` (only a fill
    ///    completion — already a calendar event — can unblock it);
    /// 7. otherwise the head would issue → `Active`.
    ///
    /// Sound only under the kernel's skip preconditions (fetch inactive so
    /// tag ports stay free and the FTQ does not pop; BPU blocked so the
    /// FTQ does not push; skips stop at fill cycles so L1/MSHR/prefetch-
    /// buffer/bus state is constant over the skipped range).
    pub fn pause_until(&self, now: Cycle, ftq: &Ftq, mem: &MemoryHierarchy) -> EnginePause {
        if self.scan_would_work(ftq) {
            return EnginePause::Active;
        }
        let Some(&head) = self.piq.front() else {
            return EnginePause::Idle;
        };
        if self.config.max_issue_per_cycle == 0 {
            return EnginePause::Idle;
        }
        if matches!(self.config.cpf, CpfMode::Remove | CpfMode::Both) {
            if mem.config().tag_ports == 0 {
                // issue() counts probe_port_unavailable every cycle.
                return EnginePause::Active;
            }
            if mem.probe_l1(head) {
                // issue() would pop the head and count filtered_cpf_remove.
                return EnginePause::Active;
            }
        }
        if self.config.require_idle_bus && !mem.bus_idle(now) {
            return EnginePause::Until(mem.bus().free_at());
        }
        if mem.in_flight(head) || mem.probe_prefetch_buffer(head) {
            return EnginePause::Active;
        }
        if !mem.can_accept_prefetch() {
            return EnginePause::Idle;
        }
        EnginePause::Active
    }

    /// Would [`scan`](Self::scan) find a candidate (or stall-path line)
    /// from the current cursor? Replays the cursor-advance logic without
    /// mutating it: advancing over exhausted entries emits no stats and
    /// converges in a single real `scan` call, so skipping those cycles
    /// is unobservable.
    fn scan_would_work(&self, ftq: &Ftq) -> bool {
        if self.config.scan_blocks_per_cycle == 0 {
            return false;
        }
        let mut seq = self.scan_seq;
        let mut block = self.scan_block;
        loop {
            let Some(entry) = ftq.lookahead_at_or_after(seq) else {
                // Nothing beyond the head: an armed stall path with lines
                // left emits one candidate per cycle.
                return matches!(self.stall_path, Some((_, left)) if left > 0);
            };
            if entry.seq > seq {
                block = 0;
            }
            if entry
                .block
                .cache_blocks(self.block_bytes)
                .nth(block)
                .is_some()
            {
                return true;
            }
            seq = entry.seq + 1;
            block = 0;
        }
    }

    /// Runs one cycle: scan then issue.
    pub fn per_cycle(
        &mut self,
        now: Cycle,
        ftq: &Ftq,
        mem: &mut MemoryHierarchy,
        stats: &mut FdipStats,
    ) {
        self.scan(ftq, mem, stats);
        self.issue(now, mem, stats);
    }

    fn scan(&mut self, ftq: &Ftq, mem: &mut MemoryHierarchy, stats: &mut FdipStats) {
        let mut budget = self.config.scan_blocks_per_cycle;
        while budget > 0 {
            // The head is the fetch engine's demand work; scan beyond it.
            let Some(entry) = ftq.lookahead_at_or_after(self.scan_seq) else {
                // Nothing queued beyond the head: walk the sequential
                // stall path if one is armed.
                if let Some((line, left)) = self.stall_path {
                    if left == 0 {
                        break;
                    }
                    self.stall_path = Some((line + self.block_bytes, left - 1));
                    stats.candidates += 1;
                    self.consider(line, mem, stats);
                }
                break;
            };
            if entry.seq > self.scan_seq {
                self.scan_seq = entry.seq;
                self.scan_block = 0;
            }
            let Some(candidate) = entry
                .block
                .cache_blocks(self.block_bytes)
                .nth(self.scan_block)
            else {
                // Entry exhausted: move to the next one.
                self.scan_seq = entry.seq + 1;
                self.scan_block = 0;
                continue;
            };
            budget -= 1;
            stats.candidates += 1;
            self.scan_block += 1;
            if self.consider(candidate, mem, stats) == Consider::NoPort {
                // No idle port for the enqueue probe: the candidate waits.
                stats.candidates -= 1;
                self.scan_block -= 1;
                break;
            }
        }
    }

    /// Runs one candidate through the filter chain and (maybe) the PIQ.
    fn consider(
        &mut self,
        candidate: Addr,
        mem: &mut MemoryHierarchy,
        stats: &mut FdipStats,
    ) -> Consider {
        if self.recent.check_and_count(candidate) {
            stats.filtered_recent += 1;
            return Consider::Filtered;
        }
        if mem.in_flight(candidate) || mem.probe_prefetch_buffer(candidate) {
            return Consider::Filtered;
        }
        if self.piq.len() >= self.config.piq_entries {
            stats.dropped_piq_full += 1;
            return Consider::Filtered;
        }
        if matches!(self.config.cpf, CpfMode::Enqueue | CpfMode::Both) {
            if mem.ports_mut().try_use() {
                if mem.probe_l1(candidate) {
                    stats.filtered_cpf_enqueue += 1;
                    return Consider::Filtered;
                }
            } else {
                stats.probe_port_unavailable += 1;
                return Consider::NoPort;
            }
        }
        self.piq.push_back(candidate);
        // Record at enqueue: the FDIP-X filter suppresses re-requests of
        // blocks already heading out, not just already issued.
        self.recent.note(candidate);
        stats.enqueued += 1;
        Consider::Enqueued
    }

    fn issue(&mut self, now: Cycle, mem: &mut MemoryHierarchy, stats: &mut FdipStats) {
        let mut issued = 0;
        while issued < self.config.max_issue_per_cycle {
            let Some(&candidate) = self.piq.front() else {
                break;
            };
            if matches!(self.config.cpf, CpfMode::Remove | CpfMode::Both) {
                if mem.ports_mut().try_use() {
                    if mem.probe_l1(candidate) {
                        self.piq.pop_front();
                        stats.filtered_cpf_remove += 1;
                        continue;
                    }
                } else {
                    stats.probe_port_unavailable += 1;
                }
            }
            if self.config.require_idle_bus && !mem.bus_idle(now) {
                break;
            }
            match mem.issue_prefetch(now, candidate, false) {
                PrefetchOutcome::Issued { .. } => {
                    self.piq.pop_front();
                    stats.issued += 1;
                    issued += 1;
                }
                PrefetchOutcome::InFlight | PrefetchOutcome::InPrefetchBuffer => {
                    self.piq.pop_front();
                }
                PrefetchOutcome::NoMshr => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_mem::HierarchyConfig;
    use fdip_types::{BlockEnd, FetchBlock};

    fn ftq_with_blocks(starts: &[u64]) -> Ftq {
        let mut ftq = Ftq::new(16);
        for (i, &s) in starts.iter().enumerate() {
            ftq.push(
                FetchBlock::new(Addr::new(s), 8, BlockEnd::SizeLimit),
                i * 8,
                None,
            );
        }
        ftq
    }

    fn engine(cpf: CpfMode) -> FdipEngine {
        FdipEngine::new(
            FdipConfig {
                cpf,
                ..FdipConfig::default()
            },
            64,
        )
    }

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn scans_beyond_head_and_issues() {
        let ftq = ftq_with_blocks(&[0x1000, 0x2000, 0x3000]);
        let mut engine = engine(CpfMode::None);
        let mut mem = mem();
        let mut stats = FdipStats::default();
        let mut now = Cycle::ZERO;
        for _ in 0..50 {
            mem.begin_cycle(now);
            engine.per_cycle(now, &ftq, &mut mem, &mut stats);
            now += 10; // leave the bus idle between cycles
        }
        // Head (0x1000) untouched; 0x2000 and 0x3000 prefetched.
        assert_eq!(stats.issued, 2, "{stats:?}");
        assert!(mem.in_flight(Addr::new(0x2000)) || mem.probe_prefetch_buffer(Addr::new(0x2000)));
        assert!(!mem.in_flight(Addr::new(0x1000)));
    }

    #[test]
    fn enqueue_cpf_filters_cached_blocks() {
        let ftq = ftq_with_blocks(&[0x1000, 0x2000]);
        let mut engine = engine(CpfMode::Enqueue);
        let mut mem = mem();
        // Pre-load 0x2000 into the L1.
        mem.begin_cycle(Cycle::ZERO);
        mem.demand_access(Cycle::ZERO, Addr::new(0x2000));
        let warm = Cycle::new(500);
        mem.begin_cycle(warm);
        let mut stats = FdipStats::default();
        engine.per_cycle(warm, &ftq, &mut mem, &mut stats);
        assert_eq!(stats.filtered_cpf_enqueue, 1);
        assert_eq!(stats.issued, 0);
    }

    #[test]
    fn enqueue_cpf_waits_for_idle_port() {
        let ftq = ftq_with_blocks(&[0x1000, 0x2000]);
        let mut engine = engine(CpfMode::Enqueue);
        let mut mem = mem();
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        // Exhaust both tag ports (as demand fetch would).
        assert!(mem.ports_mut().try_use());
        assert!(mem.ports_mut().try_use());
        let mut stats = FdipStats::default();
        engine.per_cycle(now, &ftq, &mut mem, &mut stats);
        assert_eq!(stats.enqueued, 0, "no port, candidate must wait");
        assert!(stats.probe_port_unavailable > 0);
        // Next cycle a port is free: the same candidate goes through.
        let t = now.next();
        mem.begin_cycle(t);
        engine.per_cycle(t, &ftq, &mut mem, &mut stats);
        assert_eq!(stats.enqueued, 1);
    }

    #[test]
    fn remove_cpf_discards_stale_piq_entries() {
        let ftq = ftq_with_blocks(&[0x1000, 0x2000]);
        let mut engine = engine(CpfMode::Remove);
        let mut mem = mem();
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        // Scan enqueues 0x2000 (no enqueue probe in Remove mode)…
        engine.scan(&ftq, &mut mem, &mut FdipStats::default());
        assert_eq!(engine.piq_len(), 1);
        // …then the block lands in the L1 before issue.
        mem.demand_access(now, Addr::new(0x2000));
        let t = Cycle::new(500);
        mem.begin_cycle(t);
        let mut stats = FdipStats::default();
        engine.issue(t, &mut mem, &mut stats);
        assert_eq!(stats.filtered_cpf_remove, 1);
        assert_eq!(stats.issued, 0);
    }

    #[test]
    fn recent_filter_suppresses_duplicates() {
        let mut ftq = Ftq::new(16);
        // Two entries covering the same cache block.
        for i in 0..3 {
            ftq.push(
                FetchBlock::new(Addr::new(0x2000), 8, BlockEnd::SizeLimit),
                i * 8,
                None,
            );
        }
        let mut engine = engine(CpfMode::None);
        let mut mem = mem();
        let mut stats = FdipStats::default();
        let mut now = Cycle::ZERO;
        for _ in 0..20 {
            mem.begin_cycle(now);
            engine.per_cycle(now, &ftq, &mut mem, &mut stats);
            now += 10;
        }
        assert_eq!(stats.issued, 1);
        assert!(stats.filtered_recent >= 1, "{stats:?}");
    }

    #[test]
    fn piq_capacity_drops_overflow() {
        let mut ftq = Ftq::new(64);
        for i in 0..40 {
            ftq.push(
                FetchBlock::new(Addr::new(0x10000 + i * 0x1000), 8, BlockEnd::SizeLimit),
                (i * 8) as usize,
                None,
            );
        }
        let mut engine = FdipEngine::new(
            FdipConfig {
                piq_entries: 2,
                require_idle_bus: true,
                scan_blocks_per_cycle: 8,
                ..FdipConfig::default()
            },
            64,
        );
        let mut mem = mem();
        let mut stats = FdipStats::default();
        // Keep the bus busy so nothing issues while scanning floods the PIQ.
        mem.begin_cycle(Cycle::ZERO);
        mem.demand_access(Cycle::ZERO, Addr::new(0x0dea_d000));
        for c in 0..4u64 {
            let now = Cycle::new(c);
            mem.begin_cycle(now);
            engine.scan(&ftq, &mut mem, &mut stats);
        }
        assert!(stats.dropped_piq_full > 0, "{stats:?}");
        assert_eq!(engine.piq_len(), 2);
    }

    #[test]
    fn pause_analysis_tracks_the_blocker_chain() {
        // Fresh engine over an FTQ with scannable work: active.
        let ftq = ftq_with_blocks(&[0x1000, 0x2000]);
        let fresh = engine(CpfMode::None);
        let mem = mem();
        assert_eq!(
            fresh.pause_until(Cycle::ZERO, &ftq, &mem),
            EnginePause::Active
        );
        // Empty FTQ, empty PIQ, no stall path: idle.
        let empty = Ftq::new(16);
        assert_eq!(
            fresh.pause_until(Cycle::ZERO, &empty, &mem),
            EnginePause::Idle
        );
        // Armed stall path keeps it active even with an empty FTQ.
        let mut armed = engine(CpfMode::None);
        armed.begin_stall_path(Addr::new(0x8000));
        assert_eq!(
            armed.pause_until(Cycle::ZERO, &empty, &mem),
            EnginePause::Active
        );
    }

    #[test]
    fn pause_reports_bus_wait_cycle() {
        let ftq = ftq_with_blocks(&[0x1000, 0x2000]);
        let mut engine = FdipEngine::new(
            FdipConfig {
                require_idle_bus: true,
                ..FdipConfig::default()
            },
            64,
        );
        let mut mem = mem();
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        // Occupy the bus, then let scan fill the PIQ.
        mem.demand_access(now, Addr::new(0x9000));
        let mut stats = FdipStats::default();
        engine.scan(&ftq, &mut mem, &mut stats);
        assert!(engine.piq_len() > 0);
        // Cursor is past the queue, so only issue remains — blocked on the
        // bus until its free cycle.
        let free_at = mem.bus().free_at();
        assert!(free_at.is_after(now));
        assert_eq!(
            engine.pause_until(now, &ftq, &mem),
            EnginePause::Until(free_at)
        );
        // Once the bus frees, the head would issue: active again.
        assert_eq!(engine.pause_until(free_at, &ftq, &mem), EnginePause::Active);
    }

    #[test]
    fn bus_policy_gates_issue() {
        let ftq = ftq_with_blocks(&[0x1000, 0x2000]);
        let mut engine = engine(CpfMode::None);
        let mut mem = mem();
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        // Demand transfer occupies the bus.
        mem.demand_access(now, Addr::new(0x9000));
        let mut stats = FdipStats::default();
        engine.per_cycle(now, &ftq, &mut mem, &mut stats);
        assert_eq!(stats.issued, 0, "bus busy, prefetch deferred");
        assert_eq!(engine.piq_len(), 1);
    }
}
