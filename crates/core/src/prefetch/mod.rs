//! Prefetchers.
//!
//! Two attachment points exist in the front-end:
//!
//! * **Demand-side** ([`DemandSide`]): wraps the fetch engine's L1-I
//!   accesses — where tagged next-line prefetching triggers, stream
//!   buffers are probed/allocated, and PIF records and replays its
//!   temporal stream.
//! * **FTQ-side** ([`FdipEngine`]): the paper's contribution — scans
//!   not-yet-fetched FTQ entries and turns them into filtered prefetches;
//!   [`ShotgunEngine`] layers spatial call-target footprints on top of it.

mod fdip;
mod pif;
mod shotgun;
mod stream;

pub use fdip::{EnginePause, FdipEngine};
pub use pif::PifEngine;
pub use shotgun::ShotgunEngine;
pub use stream::StreamAdapter;

use fdip_mem::{DemandOutcome, MemoryHierarchy, NextLineTrigger};
use fdip_types::{Addr, Cycle};

/// What the fetch engine should do after a demand access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessResult {
    /// The line is present; deliver instructions now.
    Ready,
    /// The line arrives at the given cycle; stall until then.
    Wait(Cycle),
    /// Transient structural hazard (MSHRs full); retry next cycle.
    Retry,
}

pub(crate) fn map_outcome(outcome: DemandOutcome) -> AccessResult {
    match outcome {
        DemandOutcome::L1Hit { .. } | DemandOutcome::PrefetchBufferHit => AccessResult::Ready,
        DemandOutcome::InFlight { ready_at, .. } | DemandOutcome::Miss { ready_at } => {
            AccessResult::Wait(ready_at)
        }
        DemandOutcome::MshrFull => AccessResult::Retry,
    }
}

/// The demand-side prefetcher attached to the fetch engine's L1-I path.
#[derive(Debug)]
pub enum DemandSide {
    /// Plain accesses, no prefetching.
    None,
    /// Tagged next-line prefetching.
    NextLine(NextLineTrigger),
    /// Stream buffers probed in parallel with the L1.
    Stream(StreamAdapter),
    /// PIF-style temporal streaming.
    Pif(PifEngine),
}

impl DemandSide {
    /// Performs the demand access for the fetch engine, applying the
    /// prefetcher's trigger/probe policy.
    pub fn access(&mut self, now: Cycle, addr: Addr, mem: &mut MemoryHierarchy) -> AccessResult {
        match self {
            DemandSide::None => map_outcome(mem.demand_access(now, addr)),
            DemandSide::NextLine(trigger) => {
                let outcome = mem.demand_access(now, addr);
                match &outcome {
                    DemandOutcome::L1Hit { info } => {
                        if let Some(next) = trigger.on_hit(addr, info) {
                            let _ = mem.issue_prefetch(now, next, true);
                        }
                    }
                    DemandOutcome::Miss { .. } => {
                        let _ = mem.issue_prefetch(now, trigger.on_miss(addr), true);
                    }
                    _ => {}
                }
                map_outcome(outcome)
            }
            DemandSide::Stream(adapter) => adapter.access(now, addr, mem),
            DemandSide::Pif(engine) => engine.access(now, addr, mem),
        }
    }

    /// Background work: stream refills, PIF replay issue.
    pub fn per_cycle(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        match self {
            DemandSide::Stream(adapter) => adapter.per_cycle(now, mem),
            DemandSide::Pif(engine) => engine.per_cycle(now, mem),
            _ => {}
        }
    }

    /// Returns `true` for kinds whose [`per_cycle`](Self::per_cycle) is a
    /// no-op (no background work between demand accesses). Stream buffers
    /// and PIF replay run every cycle, so they are never passive; the
    /// simulator's idle-cycle fast-forward must not skip over them.
    pub fn is_passive(&self) -> bool {
        matches!(self, DemandSide::None | DemandSide::NextLine(_))
    }

    /// Stream-buffer resets (0 for other kinds).
    pub fn stream_resets(&self) -> u64 {
        match self {
            DemandSide::Stream(adapter) => adapter.resets(),
            _ => 0,
        }
    }

    /// PIF replay resets (0 for other kinds).
    pub fn pif_resets(&self) -> u64 {
        match self {
            DemandSide::Pif(engine) => engine.resets(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_mem::HierarchyConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn none_maps_outcomes_directly() {
        let mut mem = mem();
        let mut side = DemandSide::None;
        mem.begin_cycle(Cycle::ZERO);
        let first = side.access(Cycle::ZERO, Addr::new(0x1000), &mut mem);
        assert!(matches!(first, AccessResult::Wait(_)));
        let far = Cycle::new(1_000);
        mem.begin_cycle(far);
        assert_eq!(
            side.access(far, Addr::new(0x1000), &mut mem),
            AccessResult::Ready
        );
        assert_eq!(side.stream_resets(), 0);
        assert_eq!(side.pif_resets(), 0);
    }

    #[test]
    fn next_line_prefetches_the_sequential_block_on_miss() {
        let mut mem = mem();
        let mut side = DemandSide::NextLine(NextLineTrigger::new(64));
        mem.begin_cycle(Cycle::ZERO);
        side.access(Cycle::ZERO, Addr::new(0x1000), &mut mem);
        assert!(mem.in_flight(Addr::new(0x1040)), "next line issued");
        assert_eq!(mem.stats().prefetches_issued, 1);
    }

    #[test]
    fn next_line_tag_bit_chains_prefetches_on_first_hit() {
        // NLP config fills straight into the L1 with the tag bit.
        let cfg = HierarchyConfig {
            prefetch_buffer_blocks: 0,
            ..HierarchyConfig::default()
        };
        let mut mem = MemoryHierarchy::new(cfg);
        let mut side = DemandSide::NextLine(NextLineTrigger::new(64));
        mem.begin_cycle(Cycle::ZERO);
        side.access(Cycle::ZERO, Addr::new(0x1000), &mut mem); // miss → prefetch 0x1040
        let t = Cycle::new(1_000);
        mem.begin_cycle(t); // both fills land
                            // First demand touch of the tagged 0x1040 must trigger 0x1080.
        assert_eq!(
            side.access(t, Addr::new(0x1040), &mut mem),
            AccessResult::Ready
        );
        assert!(mem.in_flight(Addr::new(0x1080)), "tag bit chained");
    }

    #[test]
    fn mshr_exhaustion_maps_to_retry() {
        let cfg = HierarchyConfig {
            mshrs: 1,
            ..HierarchyConfig::default()
        };
        let mut mem = MemoryHierarchy::new(cfg);
        let mut side = DemandSide::None;
        mem.begin_cycle(Cycle::ZERO);
        side.access(Cycle::ZERO, Addr::new(0x0), &mut mem);
        assert_eq!(
            side.access(Cycle::ZERO, Addr::new(0x40), &mut mem),
            AccessResult::Retry
        );
    }
}
