//! Shotgun-lite: spatial-footprint prefetching over call targets, layered
//! on the FDIP engine (after Kumar et al.'s *Shotgun*, ASPLOS 2018 — the
//! "Revisited" paper's reference [5]).
//!
//! The insight: instruction misses cluster around function entries. A
//! *region table* records, per call-target region, a bit-vector of the
//! cache lines touched while executing that region ("the footprint").
//! When the FTQ carries a predicted call, the whole recorded footprint of
//! the callee is prefetched at once — reaching *deeper* than the FTQ's own
//! lookahead, which is FDIP's structural limit on redirect-heavy code.
//!
//! Training and triggering both ride the FTQ stream (the predicted
//! correct path): blocks train the footprint of the region on top of a
//! small region stack; call-ending blocks trigger the callee's footprint.

use std::collections::VecDeque;

use fdip_mem::{MemoryHierarchy, PrefetchOutcome};
use fdip_types::{Addr, BlockEnd, BranchClass, Cycle};

use crate::config::{FdipConfig, ShotgunConfig};
use crate::ftq::Ftq;
use crate::prefetch::FdipEngine;
use crate::stats::{FdipStats, ShotgunStats};

/// One region-table entry.
#[derive(Clone, Debug)]
struct Region {
    /// Line index of the region base (the call target's line).
    base_line: u64,
    /// Footprint: bit *i* set ⇒ line `base_line + i` was touched.
    footprint: u64,
}

/// The Shotgun-lite engine: an [`FdipEngine`] plus the region table.
#[derive(Debug)]
pub struct ShotgunEngine {
    fdip: FdipEngine,
    config: ShotgunConfig,
    /// Region table, MRU first (fully-associative LRU).
    regions: Vec<Region>,
    /// Training attribution: which regions the predicted path is inside.
    region_stack: Vec<u64>,
    /// Footprint prefetch queue.
    pending: VecDeque<Addr>,
    /// FTQ scan cursor (independent of the inner FDIP engine's).
    scan_seq: u64,
    block_bytes: u64,
}

impl ShotgunEngine {
    /// Creates the engine.
    pub fn new(config: ShotgunConfig, fdip: FdipConfig, block_bytes: u64) -> Self {
        assert!(config.regions > 0);
        assert!(
            (1..=64).contains(&config.footprint_lines),
            "footprint is a 64-bit vector"
        );
        ShotgunEngine {
            fdip: FdipEngine::new(fdip, block_bytes),
            config,
            regions: Vec::with_capacity(config.regions),
            region_stack: Vec::new(),
            pending: VecDeque::new(),
            scan_seq: 0,
            block_bytes,
        }
    }

    /// Storage cost of the region table in bits (line tag + footprint).
    pub fn storage_bits(&self) -> u64 {
        let tag_bits = 48 - self.block_bytes.trailing_zeros() as u64;
        self.config.regions as u64 * (tag_bits + self.config.footprint_lines as u64)
    }

    /// Forwards stall-path arming to the inner FDIP engine.
    pub fn begin_stall_path(&mut self, fall_through: Addr) {
        self.fdip.begin_stall_path(fall_through);
    }

    /// Forwards stall-path disarming to the inner FDIP engine.
    pub fn end_stall_path(&mut self) {
        self.fdip.end_stall_path();
    }

    /// Returns `true` when a [`per_cycle`](Self::per_cycle) call with an
    /// empty FTQ would do no work: no footprint prefetches are pending and
    /// the inner FDIP engine is quiescent (see
    /// [`FdipEngine::is_quiescent`]).
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.fdip.is_quiescent()
    }

    fn region_position(&self, base_line: u64) -> Option<usize> {
        self.regions.iter().position(|r| r.base_line == base_line)
    }

    /// Fetches (creating/promoting) the region for `base_line`; returns its
    /// index (always 0 after promotion).
    fn touch_region(&mut self, base_line: u64) {
        match self.region_position(base_line) {
            Some(pos) => {
                let r = self.regions.remove(pos);
                self.regions.insert(0, r);
            }
            None => {
                if self.regions.len() == self.config.regions {
                    self.regions.pop();
                }
                self.regions.insert(
                    0,
                    Region {
                        base_line,
                        footprint: 0,
                    },
                );
            }
        }
    }

    /// Records that `line` was touched while inside `region_base`.
    fn train(&mut self, region_base: u64, line: u64) {
        let Some(pos) = self.region_position(region_base) else {
            return;
        };
        let offset = line.wrapping_sub(self.regions[pos].base_line);
        if offset < self.config.footprint_lines as u64 {
            self.regions[pos].footprint |= 1 << offset;
        }
    }

    /// Runs one cycle: scan new FTQ entries (train + trigger), then issue
    /// footprint prefetches, then run the inner FDIP engine.
    pub fn per_cycle(
        &mut self,
        now: Cycle,
        ftq: &Ftq,
        mem: &mut MemoryHierarchy,
        fdip_stats: &mut FdipStats,
        stats: &mut ShotgunStats,
    ) {
        self.scan(ftq, stats);
        self.issue(now, mem, stats);
        self.fdip.per_cycle(now, ftq, mem, fdip_stats);
    }

    fn scan(&mut self, ftq: &Ftq, stats: &mut ShotgunStats) {
        let from_seq = self.scan_seq;
        // Snapshot the new entries first: training/triggering mutates self.
        // Queued seqs are contiguous and ascending, so the not-yet-seen
        // suffix starts at a computed index (no per-entry filtering).
        let start = ftq
            .head()
            .map_or(0, |e| from_seq.saturating_sub(e.seq) as usize);
        let new_entries: Vec<_> = ftq.iter().skip(start).map(|e| (e.seq, e.block)).collect();
        for (seq, block) in new_entries {
            self.scan_seq = seq + 1;
            // Train the current region with the lines of this block.
            if let Some(&region) = self.region_stack.last() {
                let first = block.start.block_index(self.block_bytes);
                let last = block.last_pc().block_index(self.block_bytes);
                for line in first..=last {
                    self.train(region, line);
                }
            }
            // Calls enter a region (trigger); returns leave one.
            if let BlockEnd::TakenBranch { class, target } = block.end {
                match class {
                    BranchClass::Call | BranchClass::IndirectCall => {
                        let base_line = target.block_index(self.block_bytes);
                        self.trigger(base_line, stats);
                        self.region_stack.push(base_line);
                        if self.region_stack.len() > 64 {
                            self.region_stack.remove(0);
                        }
                    }
                    BranchClass::Return => {
                        self.region_stack.pop();
                    }
                    _ => {}
                }
            }
        }
    }

    /// Enqueues the recorded footprint of the region at `base_line`.
    fn trigger(&mut self, base_line: u64, stats: &mut ShotgunStats) {
        self.touch_region(base_line);
        let footprint = self.regions[0].footprint;
        stats.triggers += 1;
        // The entry line itself is always wanted.
        let mut lines = 1u64 | footprint;
        let mut offset = 0u64;
        while lines != 0 && self.pending.len() < (4 * self.config.footprint_lines) as usize {
            if lines & 1 != 0 {
                self.pending
                    .push_back(Addr::new((base_line + offset) * self.block_bytes));
                stats.footprint_lines_enqueued += 1;
            }
            lines >>= 1;
            offset += 1;
        }
    }

    fn issue(&mut self, now: Cycle, mem: &mut MemoryHierarchy, stats: &mut ShotgunStats) {
        let mut issued = 0;
        while issued < self.config.max_issue_per_cycle {
            if !mem.bus_idle(now) {
                break;
            }
            let Some(&line) = self.pending.front() else {
                break;
            };
            if mem.probe_l1(line) || mem.in_flight(line) || mem.probe_prefetch_buffer(line) {
                self.pending.pop_front();
                continue;
            }
            match mem.issue_prefetch(now, line, false) {
                PrefetchOutcome::Issued { .. } => {
                    self.pending.pop_front();
                    stats.issued += 1;
                    issued += 1;
                }
                PrefetchOutcome::InFlight | PrefetchOutcome::InPrefetchBuffer => {
                    self.pending.pop_front();
                }
                PrefetchOutcome::NoMshr => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_mem::HierarchyConfig;
    use fdip_types::FetchBlock;

    fn engine() -> ShotgunEngine {
        ShotgunEngine::new(ShotgunConfig::default(), FdipConfig::default(), 64)
    }

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    fn call_block(start: u64, target: u64) -> FetchBlock {
        FetchBlock::new(
            Addr::new(start),
            2,
            BlockEnd::TakenBranch {
                class: BranchClass::Call,
                target: Addr::new(target),
            },
        )
    }

    fn ret_block(start: u64, target: u64) -> FetchBlock {
        FetchBlock::new(
            Addr::new(start),
            1,
            BlockEnd::TakenBranch {
                class: BranchClass::Return,
                target: Addr::new(target),
            },
        )
    }

    fn seq_block(start: u64, len: u32) -> FetchBlock {
        FetchBlock::new(Addr::new(start), len, BlockEnd::SizeLimit)
    }

    #[test]
    fn first_call_learns_footprint_second_call_prefetches_it() {
        let mut engine = engine();
        let mut mem = mem();
        let mut fdip_stats = FdipStats::default();
        let mut stats = ShotgunStats::default();
        // Transaction 1: call into 0x4000, execute 3 lines, return.
        let mut ftq = Ftq::new(16);
        ftq.push(call_block(0x1000, 0x4000), 0, None);
        ftq.push(seq_block(0x4000, 16), 2, None); // line 0x4000
        ftq.push(seq_block(0x4040, 16), 18, None); // line 0x4040
        ftq.push(seq_block(0x4080, 4), 34, None); // line 0x4080
        ftq.push(ret_block(0x4090, 0x1008), 38, None);
        engine.per_cycle(Cycle::ZERO, &ftq, &mut mem, &mut fdip_stats, &mut stats);
        assert_eq!(stats.triggers, 1);
        // First visit: nothing recorded yet beyond the entry line.
        assert_eq!(stats.footprint_lines_enqueued, 1);

        // Transaction 2: the same call — now the 3-line footprint replays.
        // (Same FTQ so sequence numbers stay monotonic, as in the real
        // front-end: the fetch engine consumed the old entries.)
        while ftq.pop().is_some() {}
        ftq.push(call_block(0x1000, 0x4000), 100, None);
        let t = Cycle::new(50);
        mem.begin_cycle(t);
        engine.per_cycle(t, &ftq, &mut mem, &mut fdip_stats, &mut stats);
        assert_eq!(stats.triggers, 2);
        assert!(
            stats.footprint_lines_enqueued > 3,
            "footprint replay: {stats:?}"
        );
    }

    #[test]
    fn issues_through_the_memory_system() {
        let mut engine = engine();
        let mut mem = mem();
        let mut fdip_stats = FdipStats::default();
        let mut stats = ShotgunStats::default();
        let mut ftq = Ftq::new(4);
        ftq.push(call_block(0x1000, 0x8000), 0, None);
        let mut now = Cycle::ZERO;
        for _ in 0..10 {
            mem.begin_cycle(now);
            engine.per_cycle(now, &ftq, &mut mem, &mut fdip_stats, &mut stats);
            now += 10;
        }
        assert!(stats.issued >= 1);
        assert!(mem.stats().prefetches_issued >= 1);
    }

    #[test]
    fn region_table_is_bounded_lru() {
        let mut engine = ShotgunEngine::new(
            ShotgunConfig {
                regions: 2,
                ..ShotgunConfig::default()
            },
            FdipConfig::default(),
            64,
        );
        let mut stats = ShotgunStats::default();
        engine.trigger(0x100, &mut stats);
        engine.trigger(0x200, &mut stats);
        engine.trigger(0x300, &mut stats); // evicts 0x100
        assert!(engine.region_position(0x100).is_none());
        assert!(engine.region_position(0x200).is_some());
        assert!(engine.region_position(0x300).is_some());
    }

    #[test]
    fn storage_accounting() {
        let engine = ShotgunEngine::new(
            ShotgunConfig {
                regions: 512,
                footprint_lines: 8,
                ..ShotgunConfig::default()
            },
            FdipConfig::default(),
            64,
        );
        // 42-bit line tag + 8-bit footprint per region.
        assert_eq!(engine.storage_bits(), 512 * (42 + 8));
    }
}
