//! Stream buffers wired into the fetch path.

use fdip_mem::{DemandOutcome, MemoryHierarchy, StreamBufferConfig, StreamBufferSet, StreamHit};
use fdip_types::{Addr, Cycle};

use crate::prefetch::{map_outcome, AccessResult};

/// Adapter that probes a [`StreamBufferSet`] in parallel with the L1-I and
/// drives its sequential refills over the shared bus.
#[derive(Debug)]
pub struct StreamAdapter {
    set: StreamBufferSet,
    /// Max refill transfers issued per cycle.
    issue_per_cycle: u32,
}

impl StreamAdapter {
    /// Creates the adapter.
    pub fn new(config: StreamBufferConfig) -> Self {
        StreamAdapter {
            set: StreamBufferSet::new(config),
            issue_per_cycle: 1,
        }
    }

    /// Stream resets so far.
    pub fn resets(&self) -> u64 {
        self.set.resets()
    }

    /// Head hits delivered so far.
    pub fn head_hits(&self) -> u64 {
        self.set.head_hits()
    }

    /// Demand access with stream-buffer interception: a head hit promotes
    /// the block into the L1 (immediately if arrived, else when it lands);
    /// a full miss allocates a new stream.
    pub fn access(&mut self, now: Cycle, addr: Addr, mem: &mut MemoryHierarchy) -> AccessResult {
        // If the L1 (or an in-flight fill) already covers the block, take
        // the normal path — the buffers are only consulted on L1 misses.
        if mem.probe_l1(addr) || mem.probe_prefetch_buffer(addr) || mem.in_flight(addr) {
            return map_outcome(mem.demand_access(now, addr));
        }
        match self.set.probe_at(now, addr) {
            Some(StreamHit::Ready) => {
                mem.install_line(addr);
                map_outcome(mem.demand_access(now, addr))
            }
            Some(StreamHit::Arriving(ready_at)) => {
                // The stream had issued it but it is still on the bus:
                // install on arrival; stall the fetch engine until then.
                mem.install_line(addr);
                AccessResult::Wait(ready_at)
            }
            None => {
                let outcome = mem.demand_access(now, addr);
                if matches!(outcome, DemandOutcome::Miss { .. }) {
                    self.set.allocate(addr);
                }
                map_outcome(outcome)
            }
        }
    }

    /// Issues sequential refills for the hottest stream while the bus is
    /// idle.
    pub fn per_cycle(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        for _ in 0..self.issue_per_cycle {
            if !mem.bus_idle(now) {
                break;
            }
            let Some((buffer, block)) = self.set.next_wanted() else {
                break;
            };
            let ready_at = mem.issue_external_transfer(now, block);
            self.set.record_issue(buffer, block, ready_at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_mem::HierarchyConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn miss_allocates_stream_and_later_hits() {
        let mut mem = mem();
        let mut sa = StreamAdapter::new(StreamBufferConfig::default());
        let a = Addr::new(0x10000);
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        // Cold miss allocates a stream at a+64.
        let r = sa.access(now, a, &mut mem);
        assert!(matches!(r, AccessResult::Wait(_)));
        // Let the stream refill while the bus frees up.
        let mut t = now;
        for _ in 0..2000 {
            t = t.next();
            mem.begin_cycle(t);
            sa.per_cycle(t, &mut mem);
        }
        // The sequential next block is a stream head hit: delivered from
        // the buffer without a new transfer.
        let transfers_before = mem.bus().transfers();
        let r = sa.access(t, Addr::new(0x10040), &mut mem);
        assert_eq!(r, AccessResult::Ready);
        assert!(sa.head_hits() >= 1);
        // Consuming the head schedules at most refill traffic, not a
        // demand transfer for the hit block itself.
        assert_eq!(mem.bus().transfers(), transfers_before);
    }

    #[test]
    fn arriving_head_stalls_until_fill() {
        let mut mem = mem();
        let mut sa = StreamAdapter::new(StreamBufferConfig::default());
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        sa.access(now, Addr::new(0x20000), &mut mem); // allocate
        let t = Cycle::new(200);
        mem.begin_cycle(t);
        sa.per_cycle(t, &mut mem); // issue first refill (arrives later)
        let r = sa.access(t.next(), Addr::new(0x20040), &mut mem);
        match r {
            AccessResult::Wait(ready) => assert!(ready.is_after(t)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn l1_hits_bypass_the_buffers() {
        let mut mem = mem();
        let mut sa = StreamAdapter::new(StreamBufferConfig::default());
        let a = Addr::new(0x30000);
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let r = sa.access(now, a, &mut mem);
        let AccessResult::Wait(ready) = r else {
            panic!("{r:?}")
        };
        mem.begin_cycle(ready);
        assert_eq!(sa.access(ready, a, &mut mem), AccessResult::Ready);
        assert_eq!(sa.resets(), 0);
    }
}
