//! PIF-lite: a temporal instruction-stream prefetcher in the spirit of
//! Ferdman et al.'s *Proactive Instruction Fetch* (MICRO 2011), used by the
//! extension experiments as the storage-hungry comparison point.
//!
//! The engine records the retire-order sequence of instruction blocks in a
//! circular history and indexes the most recent position of each block. On
//! an L1-I miss it looks the block up; a hit starts *replaying* the
//! recorded stream ahead of the miss as prefetches, a miss counts as a
//! stream reset. The history length is the storage knob the budget sweeps
//! scale.

use std::collections::HashMap;

use fdip_mem::{DemandOutcome, MemoryHierarchy};
use fdip_types::{Addr, Cycle};

use crate::config::PifConfig;
use crate::prefetch::{map_outcome, AccessResult};

/// The PIF-lite engine.
#[derive(Debug)]
pub struct PifEngine {
    config: PifConfig,
    /// Circular history of block addresses, in first-touch retire order.
    history: Vec<Addr>,
    /// Global position of the next history slot.
    next_pos: u64,
    /// Most recent global position of each block.
    index: HashMap<Addr, u64>,
    /// Global position of the next block to replay.
    replay_pos: u64,
    /// Blocks left in the current replay burst.
    replay_remaining: usize,
    /// Last block recorded (consecutive-duplicate suppression).
    last_recorded: Option<Addr>,
    resets: u64,
    replays: u64,
}

impl PifEngine {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if the history length is zero.
    pub fn new(config: PifConfig) -> Self {
        assert!(config.history_blocks > 0);
        // Both structures are sized up front so steady-state recording
        // never reallocates: the ring is exact, and the index — which keeps
        // one entry per distinct block ever recorded — gets the same bound,
        // ample for any code footprint the history can usefully cover.
        let prealloc = config.history_blocks.min(1 << 20);
        PifEngine {
            config,
            history: Vec::with_capacity(prealloc),
            next_pos: 0,
            index: HashMap::with_capacity(prealloc),
            replay_pos: 0,
            replay_remaining: 0,
            last_recorded: None,
            resets: 0,
            replays: 0,
        }
    }

    /// Stream lookup failures (replay resets).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Replay bursts started.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Approximate storage cost in bits: 42-bit block addresses in the
    /// history plus an index entry (42-bit tag + 32-bit pointer) for one in
    /// four history slots, mirroring PIF's index provisioning.
    pub fn storage_bits(&self) -> u64 {
        let n = self.config.history_blocks as u64;
        n * 42 + (n / 4) * (42 + 32)
    }

    fn slot(&self, pos: u64) -> Option<Addr> {
        if pos >= self.next_pos {
            return None;
        }
        let cap = self.config.history_blocks as u64;
        if self.next_pos - pos > cap {
            return None; // aged out of the circular history
        }
        Some(self.history[(pos % cap) as usize])
    }

    fn record(&mut self, block: Addr) {
        if self.last_recorded == Some(block) {
            return;
        }
        self.last_recorded = Some(block);
        let cap = self.config.history_blocks;
        let slot = (self.next_pos % cap as u64) as usize;
        if self.history.len() <= slot {
            self.history.push(block);
        } else {
            self.history[slot] = block;
        }
        self.index.insert(block, self.next_pos);
        self.next_pos += 1;
    }

    /// Demand access with PIF recording and replay steering.
    ///
    /// A miss re-anchors the replay pointer at the block's previous
    /// occurrence in the history. A hit on a *prefetched* line (the stream
    /// paying off) extends the replay window, so a correctly-predicted
    /// stream keeps flowing instead of stalling after `lookahead` blocks.
    pub fn access(&mut self, now: Cycle, addr: Addr, mem: &mut MemoryHierarchy) -> AccessResult {
        let block = addr.block_base(mem.config().l1.block_bytes);
        // The *previous* occurrence is the replay anchor; capture it before
        // recording overwrites the index with the current position.
        let previous = self.index.get(&block).copied();
        self.record(block);
        let outcome = mem.demand_access(now, addr);
        match outcome {
            DemandOutcome::Miss { .. } => match previous {
                Some(pos) if self.slot(pos + 1).is_some() => {
                    self.replay_pos = pos + 1;
                    self.replay_remaining = self.config.lookahead;
                    self.replays += 1;
                }
                _ => self.resets += 1,
            },
            DemandOutcome::PrefetchBufferHit => {
                // Stream confirmed: keep the window topped up.
                self.replay_remaining = self.config.lookahead;
            }
            DemandOutcome::L1Hit { info } if info.was_prefetched && info.first_reference => {
                self.replay_remaining = self.config.lookahead;
            }
            _ => {}
        }
        map_outcome(outcome)
    }

    /// Issues replay prefetches while the bus is idle.
    pub fn per_cycle(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        let mut issued = 0;
        while issued < self.config.max_issue_per_cycle && self.replay_remaining > 0 {
            if !mem.bus_idle(now) {
                break;
            }
            let Some(block) = self.slot(self.replay_pos) else {
                self.replay_remaining = 0;
                break;
            };
            self.replay_pos += 1;
            self.replay_remaining -= 1;
            if mem.probe_l1(block) {
                continue;
            }
            let _ = mem.issue_prefetch(now, block, false);
            issued += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_mem::HierarchyConfig;

    fn engine() -> PifEngine {
        PifEngine::new(PifConfig {
            history_blocks: 64,
            lookahead: 4,
            max_issue_per_cycle: 2,
        })
    }

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn first_miss_resets_then_recurrence_replays() {
        let mut pif = engine();
        let mut mem = mem();
        // Touch a stream of blocks: A, B, C (all cold misses).
        let blocks = [0x1_0000u64, 0x2_0000, 0x3_0000];
        let mut t = Cycle::ZERO;
        for &b in &blocks {
            mem.begin_cycle(t);
            pif.access(t, Addr::new(b), &mut mem);
            t += 500; // let each fill land
        }
        assert_eq!(pif.resets(), 3, "cold stream: no history yet");
        // Evict nothing (big L2), but force L1 misses again by flushing…
        // instead, touch conflicting sets: simpler to re-access after
        // filling L1 set with conflicts is fiddly — rely on replay logic:
        // a repeat miss of A must replay B, C.
        // Manufacture the repeat miss by using a tiny L1.
        let cfg = HierarchyConfig {
            l1: fdip_mem::CacheGeometry::from_capacity(1024, 1, 64),
            ..HierarchyConfig::default()
        };
        let mut small = MemoryHierarchy::new(cfg);
        let mut pif = engine();
        let mut t = Cycle::ZERO;
        // Two passes over a stream long enough to thrash the 1KB L1.
        let stream: Vec<u64> = (0..32).map(|i| 0x10_000 + i * 64).collect();
        for pass in 0..2 {
            for &b in &stream {
                small.begin_cycle(t);
                pif.access(t, Addr::new(b), &mut small);
                for _ in 0..200 {
                    t = t.next();
                    small.begin_cycle(t);
                    pif.per_cycle(t, &mut small);
                }
            }
            if pass == 0 {
                assert_eq!(pif.replays(), 0, "first pass is all resets");
            }
        }
        assert!(pif.replays() > 0, "second pass replays the stream");
        assert!(small.stats().useful_prefetches > 0);
    }

    #[test]
    fn consecutive_duplicate_blocks_recorded_once() {
        let mut pif = engine();
        let mut mem = mem();
        let t = Cycle::ZERO;
        mem.begin_cycle(t);
        pif.access(t, Addr::new(0x1000), &mut mem);
        pif.access(t, Addr::new(0x1004), &mut mem); // same block
        assert_eq!(pif.next_pos, 1);
    }

    #[test]
    fn storage_scales_with_history() {
        let small = PifEngine::new(PifConfig {
            history_blocks: 1024,
            ..PifConfig::default()
        });
        let large = PifEngine::new(PifConfig {
            history_blocks: 4096,
            ..PifConfig::default()
        });
        assert_eq!(large.storage_bits(), 4 * small.storage_bits());
    }

    #[test]
    fn aged_out_history_stops_replay() {
        let mut pif = PifEngine::new(PifConfig {
            history_blocks: 4,
            lookahead: 8,
            max_issue_per_cycle: 8,
        });
        // Record 10 blocks into a 4-deep ring: early entries age out.
        for i in 0..10u64 {
            pif.record(Addr::new(0x1000 + i * 64));
        }
        assert_eq!(pif.slot(0), None, "aged out");
        assert!(pif.slot(9).is_some());
    }
}
