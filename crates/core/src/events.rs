//! The discrete-event calendar behind the simulator's event-driven kernel.
//!
//! The decoupled front-end's interesting activity is sparse: once the BPU
//! is blocked, the back-end drained, and every prefetch engine out of
//! work, nothing observable happens until one of a small, fixed set of
//! *events* fires — an outstanding fill completes, the L2 bus frees up, a
//! redirect penalty elapses, or a queued prefetch becomes issuable. The
//! [`EventCalendar`] tracks the next occurrence of each of those event
//! kinds so the simulator can jump straight to the earliest one instead of
//! ticking through dead cycles (see `Simulator::skip_idle_cycles`).
//!
//! # Same-cycle ordering
//!
//! Two events scheduled on the same cycle fire in a **deterministic,
//! documented order**: fill completion before bus grant before BPU resume
//! before prefetch issue — exactly the order the cycle body processes them
//! (`MemoryHierarchy::begin_cycle` applies fills first, the resume check
//! runs before fetch/prefetch, and prefetch issue happens last). The
//! calendar encodes that priority in [`EventKind`]'s discriminant order,
//! so [`EventCalendar::next`] is insertion-order independent — a property
//! the unit tests pin by permuting insertion order.
//!
//! The calendar is a fixed four-slot array: no heap allocation ever, so
//! the hot loop's zero-allocation steady-state contract (see
//! `tests/alloc_free.rs`) is preserved by construction.

use fdip_types::Cycle;

/// The kinds of self-scheduled events the front-end can wait on, in
/// fire-priority order (lower discriminant fires first on a tie).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EventKind {
    /// An outstanding MSHR fill lands (applied by `begin_cycle`).
    FillCompletion = 0,
    /// The L2 bus becomes free (unblocks `require_idle_bus` prefetchers).
    BusGrant = 1,
    /// A redirect penalty elapses and the BPU resumes generation.
    BpuResume = 2,
    /// A queued prefetch becomes issuable again.
    PrefetchIssue = 3,
}

impl EventKind {
    /// All kinds, in fire-priority order.
    pub const ALL: [EventKind; 4] = [
        EventKind::FillCompletion,
        EventKind::BusGrant,
        EventKind::BpuResume,
        EventKind::PrefetchIssue,
    ];
}

/// A fixed-slot calendar of the next occurrence of each [`EventKind`].
///
/// # Examples
///
/// ```
/// use fdip::events::{EventCalendar, EventKind};
/// use fdip_types::Cycle;
///
/// let mut cal = EventCalendar::default();
/// cal.schedule(EventKind::BpuResume, Cycle::new(20));
/// cal.schedule(EventKind::FillCompletion, Cycle::new(12));
/// assert_eq!(cal.next(), Some((Cycle::new(12), EventKind::FillCompletion)));
/// ```
#[derive(Copy, Clone, Debug, Default)]
pub struct EventCalendar {
    /// Next scheduled cycle per kind, indexed by `EventKind as usize`.
    slots: [Option<Cycle>; 4],
}

impl EventCalendar {
    /// Empties the calendar (reused every skip evaluation; never allocates).
    pub fn clear(&mut self) {
        self.slots = [None; 4];
    }

    /// Schedules `kind` at `at`. Scheduling the same kind again keeps the
    /// *earlier* of the two cycles: each slot tracks the next occurrence.
    pub fn schedule(&mut self, kind: EventKind, at: Cycle) {
        let slot = &mut self.slots[kind as usize];
        *slot = Some(match *slot {
            Some(prev) if !at.is_after(prev) => at,
            Some(prev) => prev,
            None => at,
        });
    }

    /// The scheduled cycle for `kind`, if any.
    pub fn scheduled(&self, kind: EventKind) -> Option<Cycle> {
        self.slots[kind as usize]
    }

    /// The earliest scheduled event, with same-cycle ties broken by
    /// [`EventKind`] priority (fill before grant before resume before
    /// issue) — independent of insertion order.
    pub fn next(&self) -> Option<(Cycle, EventKind)> {
        let mut best: Option<(Cycle, EventKind)> = None;
        for kind in EventKind::ALL {
            if let Some(at) = self.slots[kind as usize] {
                // Strict `is_after`: on a tie the earlier-priority kind
                // (already in `best`, since ALL iterates in priority
                // order) wins.
                match best {
                    Some((c, _)) if !c.is_after(at) && c != at => {}
                    Some((c, _)) if c == at => {}
                    _ => best = Some((at, kind)),
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_event_wins() {
        let mut cal = EventCalendar::default();
        cal.schedule(EventKind::PrefetchIssue, Cycle::new(30));
        cal.schedule(EventKind::FillCompletion, Cycle::new(50));
        cal.schedule(EventKind::BpuResume, Cycle::new(10));
        assert_eq!(cal.next(), Some((Cycle::new(10), EventKind::BpuResume)));
    }

    #[test]
    fn same_cycle_ties_fire_in_documented_priority_order() {
        // fill before grant before resume before issue, regardless of the
        // order the events were inserted: permute every insertion order.
        let kinds = EventKind::ALL;
        let mut orders: Vec<Vec<EventKind>> = Vec::new();
        permute(&mut kinds.to_vec(), 0, &mut orders);
        assert_eq!(orders.len(), 24);
        for order in orders {
            let mut cal = EventCalendar::default();
            for kind in &order {
                cal.schedule(*kind, Cycle::new(7));
            }
            assert_eq!(
                cal.next(),
                Some((Cycle::new(7), EventKind::FillCompletion)),
                "insertion order {order:?}"
            );
            // Partial tie at a later cycle: grant beats resume.
            let mut cal = EventCalendar::default();
            cal.schedule(EventKind::BpuResume, Cycle::new(9));
            cal.schedule(EventKind::BusGrant, Cycle::new(9));
            assert_eq!(cal.next(), Some((Cycle::new(9), EventKind::BusGrant)));
        }
    }

    fn permute(items: &mut Vec<EventKind>, k: usize, out: &mut Vec<Vec<EventKind>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }

    #[test]
    fn rescheduling_keeps_the_earlier_cycle() {
        let mut cal = EventCalendar::default();
        cal.schedule(EventKind::FillCompletion, Cycle::new(40));
        cal.schedule(EventKind::FillCompletion, Cycle::new(25));
        cal.schedule(EventKind::FillCompletion, Cycle::new(60));
        assert_eq!(
            cal.scheduled(EventKind::FillCompletion),
            Some(Cycle::new(25))
        );
        assert_eq!(
            cal.next(),
            Some((Cycle::new(25), EventKind::FillCompletion))
        );
    }

    #[test]
    fn clear_empties_every_slot() {
        let mut cal = EventCalendar::default();
        for kind in EventKind::ALL {
            cal.schedule(kind, Cycle::new(5));
        }
        cal.clear();
        assert_eq!(cal.next(), None);
        for kind in EventKind::ALL {
            assert_eq!(cal.scheduled(kind), None);
        }
    }
}
