use fdip_btb::{BtbConfig, PartitionConfig, TagScheme};
use fdip_mem::{HierarchyConfig, StreamBufferConfig};

/// Which BTB organization the branch-prediction unit uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BtbVariant {
    /// Instruction-granular set-associative BTB.
    Conventional(BtbConfig),
    /// Basic-block-oriented BTB (FTB), as in the original 1999 design.
    BasicBlock(BtbConfig),
    /// FDIP-X partitioned multi-offset BTB (extension).
    Partitioned(PartitionConfig),
    /// Unbounded BTB — the "infinite entries" budget point.
    Ideal,
}

impl BtbVariant {
    /// A conventional BTB with `entries` entries, 8-way, full tags.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of 8.
    pub fn conventional(entries: usize) -> Self {
        assert!(entries.is_multiple_of(8));
        BtbVariant::Conventional(BtbConfig::new(entries / 8, 8, TagScheme::Full))
    }

    /// A basic-block BTB with `entries` entries, 8-way, full tags (the
    /// published Table I organizations).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of 8.
    pub fn basic_block(entries: usize) -> Self {
        assert!(entries.is_multiple_of(8));
        BtbVariant::BasicBlock(BtbConfig::new(entries / 8, 8, TagScheme::Full))
    }

    /// The FDIP-X ensemble sized for the same budget as an `entries`-entry
    /// basic-block BTB (the published Table II sizing).
    pub fn partitioned(bb_entries: usize) -> Self {
        BtbVariant::Partitioned(PartitionConfig::from_bb_entries(bb_entries))
    }
}

/// Which direction predictor the BPU uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// PC-indexed 2-bit counters.
    Bimodal {
        /// log2 of the table size.
        log2_entries: u32,
    },
    /// Global-history-xor-PC indexed 2-bit counters.
    Gshare {
        /// log2 of the table size.
        log2_entries: u32,
        /// History length in bits.
        history_bits: u32,
    },
    /// McFarling-style bimodal + gshare + chooser.
    Hybrid {
        /// log2 of each component table.
        log2_entries: u32,
        /// Gshare history length in bits.
        history_bits: u32,
    },
    /// Two-level local-history predictor (Yeh & Patt PAg).
    TwoLevelLocal {
        /// log2 of the per-branch history table.
        log2_branches: u32,
        /// Local history length (pattern table has `2^history_bits`).
        history_bits: u32,
    },
    /// TAGE-style tagged geometric-history predictor (the class modern
    /// FDIP front-ends ship with).
    Tage {
        /// log2 of the bimodal base table.
        log2_base: u32,
        /// log2 of each tagged table.
        log2_tagged: u32,
        /// Number of tagged tables (history lengths 4, 8, 16, …).
        tables: usize,
    },
    /// Oracle: every conditional predicted correctly (ablation).
    Perfect,
}

/// Cache Probe Filtering mode of the FDIP prefetch engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CpfMode {
    /// No probing: every candidate is enqueued and issued.
    #[default]
    None,
    /// *Enqueue filtering*: a candidate enters the PIQ only after an idle
    /// tag port confirms it misses. No port ⇒ the candidate waits.
    Enqueue,
    /// *Remove filtering*: candidates enqueue freely; at issue time an idle
    /// port probe discards those that turn out cached. No port ⇒ issue
    /// unprobed.
    Remove,
    /// Both: probe at enqueue when a port is free, and re-probe at issue.
    Both,
}

/// Configuration of the FDIP prefetch engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FdipConfig {
    /// Prefetch instruction queue depth.
    pub piq_entries: usize,
    /// Cache-probe-filtering mode.
    pub cpf: CpfMode,
    /// Recently-issued-prefetch filter entries (FDIP-X throttling; 0 off).
    pub recent_filter_entries: usize,
    /// Only issue prefetches when the L1–L2 bus is idle.
    pub require_idle_bus: bool,
    /// Max prefetches issued per cycle.
    pub max_issue_per_cycle: u32,
    /// Max FTQ cache-block candidates scanned per cycle.
    pub scan_blocks_per_cycle: u32,
    /// Sequential lines prefetched past a redirect while the BPU stalls
    /// (models the wrong-path/fall-through prefetching the real decoupled
    /// front-end performs until a resteer materializes). 0 disables.
    pub stall_path_lines: u32,
}

impl Default for FdipConfig {
    fn default() -> Self {
        FdipConfig {
            piq_entries: 16,
            cpf: CpfMode::None,
            recent_filter_entries: 10,
            require_idle_bus: true,
            max_issue_per_cycle: 1,
            scan_blocks_per_cycle: 2,
            stall_path_lines: 8,
        }
    }
}

/// Configuration of the PIF-style temporal stream prefetcher (extension
/// comparison baseline).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PifConfig {
    /// Retire-order block history length (blocks).
    pub history_blocks: usize,
    /// Blocks replayed ahead of the stream pointer.
    pub lookahead: usize,
    /// Max prefetches issued per cycle.
    pub max_issue_per_cycle: u32,
}

impl Default for PifConfig {
    fn default() -> Self {
        PifConfig {
            history_blocks: 32 * 1024,
            lookahead: 12,
            max_issue_per_cycle: 2,
        }
    }
}

/// Configuration of the Shotgun-lite spatial-footprint extension.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShotgunConfig {
    /// Region-table entries (fully associative, LRU).
    pub regions: usize,
    /// Footprint width in cache lines per region (1..=64).
    pub footprint_lines: u32,
    /// Max footprint prefetches issued per cycle.
    pub max_issue_per_cycle: u32,
}

impl Default for ShotgunConfig {
    fn default() -> Self {
        ShotgunConfig {
            regions: 512,
            footprint_lines: 8,
            max_issue_per_cycle: 2,
        }
    }
}

/// Which prefetcher drives the L1-I.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum PrefetcherKind {
    /// No prefetching (the baseline every gain is measured against).
    #[default]
    None,
    /// Tagged next-line prefetching.
    NextLine,
    /// Jouppi-style sequential stream buffers.
    StreamBuffers(StreamBufferConfig),
    /// Fetch-directed instruction prefetching — the paper.
    Fdip(FdipConfig),
    /// FDIP plus Shotgun-style spatial footprints over call targets
    /// (extension).
    Shotgun(ShotgunConfig, FdipConfig),
    /// PIF-style temporal streaming (extension).
    Pif(PifConfig),
}

impl PrefetcherKind {
    /// FDIP with its default engine configuration.
    pub fn fdip() -> Self {
        PrefetcherKind::Fdip(FdipConfig::default())
    }

    /// FDIP with a specific CPF mode.
    pub fn fdip_with_cpf(cpf: CpfMode) -> Self {
        PrefetcherKind::Fdip(FdipConfig {
            cpf,
            ..FdipConfig::default()
        })
    }

    /// Shotgun-lite with default parameters over the default FDIP engine.
    pub fn shotgun() -> Self {
        PrefetcherKind::Shotgun(ShotgunConfig::default(), FdipConfig::default())
    }

    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "nlp",
            PrefetcherKind::StreamBuffers(_) => "stream",
            PrefetcherKind::Fdip(c) => match c.cpf {
                CpfMode::None => "fdip",
                CpfMode::Enqueue => "fdip+ecpf",
                CpfMode::Remove => "fdip+rcpf",
                CpfMode::Both => "fdip+cpf",
            },
            PrefetcherKind::Shotgun(..) => "shotgun",
            PrefetcherKind::Pif(_) => "pif",
        }
    }
}

/// The complete machine model of the decoupled front-end.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendConfig {
    /// Instructions the fetch engine can deliver per cycle.
    pub fetch_width: u32,
    /// Instructions the back-end retires per cycle.
    pub retire_width: u32,
    /// Maximum instructions per fetch block (FTQ entry).
    pub fetch_block_insts: u32,
    /// FTQ depth in fetch blocks.
    pub ftq_entries: usize,
    /// Fetched-but-not-retired buffer capacity (fetch stalls when full).
    pub instr_buffer: usize,
    /// Front-end bubble for a decode-time redirect (BTB miss on a direct
    /// branch, misfetched target).
    pub decode_redirect_penalty: u64,
    /// Front-end bubble for an execute-time redirect (direction or
    /// indirect-target misprediction).
    pub exec_redirect_penalty: u64,
    /// BTB organization.
    pub btb: BtbVariant,
    /// Direction predictor.
    pub predictor: PredictorKind,
    /// Return address stack depth.
    pub ras_entries: usize,
    /// Memory hierarchy parameters.
    pub mem: HierarchyConfig,
    /// Prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Boomerang-style extension: predecode every filled line and
    /// pre-install its direct branches into the BTB. Instruction-granular
    /// BTBs only (the FTB is keyed by block starts predecode cannot know).
    pub predecode_btb_fill: bool,
}

impl Default for FrontendConfig {
    /// The reproduction's baseline machine: 4-wide fetch/retire, 8-inst
    /// fetch blocks, 32-entry FTQ, 2K-entry conventional BTB, hybrid
    /// predictor, 32-entry RAS, default memory hierarchy, no prefetcher.
    fn default() -> Self {
        FrontendConfig {
            fetch_width: 4,
            retire_width: 4,
            fetch_block_insts: 8,
            ftq_entries: 32,
            instr_buffer: 64,
            decode_redirect_penalty: 3,
            exec_redirect_penalty: 12,
            btb: BtbVariant::conventional(2048),
            predictor: PredictorKind::Hybrid {
                log2_entries: 15,
                history_bits: 12,
            },
            ras_entries: 32,
            mem: HierarchyConfig::default(),
            prefetcher: PrefetcherKind::None,
            predecode_btb_fill: false,
        }
    }
}

impl FrontendConfig {
    /// Returns the config with a different prefetcher.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Returns the config with a different BTB.
    pub fn with_btb(mut self, btb: BtbVariant) -> Self {
        self.btb = btb;
        self
    }

    /// Returns the config with a different direction predictor.
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Returns the config with Boomerang-style predecode BTB fill toggled.
    pub fn with_predecode_btb_fill(mut self, on: bool) -> Self {
        self.predecode_btb_fill = on;
        self
    }

    /// Returns the config with a different FTQ depth.
    pub fn with_ftq_entries(mut self, ftq_entries: usize) -> Self {
        self.ftq_entries = ftq_entries;
        self
    }

    /// Returns the config with different memory parameters.
    pub fn with_mem(mut self, mem: HierarchyConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Checks internal consistency, reporting the first violated
    /// invariant. This is the non-panicking form request-handling paths
    /// (the `fdip-serve` service) use at their trust boundary.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.fetch_width == 0 {
            return Err("fetch width must be non-zero".into());
        }
        if self.retire_width == 0 {
            return Err("retire width must be non-zero".into());
        }
        if self.fetch_block_insts == 0 {
            return Err("fetch blocks hold >= 1 inst".into());
        }
        if self.ftq_entries == 0 {
            return Err("ftq must have at least one entry".into());
        }
        if self.instr_buffer < self.fetch_width as usize {
            return Err(format!(
                "instr buffer ({}) must hold at least one fetch group ({})",
                self.instr_buffer, self.fetch_width
            ));
        }
        if self.ras_entries == 0 {
            return Err("ras must have at least one entry".into());
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical combinations (zero widths, empty FTQ, fetch
    /// blocks smaller than one instruction).
    pub fn validate(&self) {
        if let Err(what) = self.check() {
            panic!("{what}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        FrontendConfig::default().validate();
    }

    #[test]
    fn builder_style_setters() {
        let c = FrontendConfig::default()
            .with_prefetcher(PrefetcherKind::fdip())
            .with_btb(BtbVariant::Ideal)
            .with_ftq_entries(8);
        assert_eq!(c.prefetcher.name(), "fdip");
        assert_eq!(c.btb, BtbVariant::Ideal);
        assert_eq!(c.ftq_entries, 8);
    }

    #[test]
    fn prefetcher_names() {
        assert_eq!(PrefetcherKind::None.name(), "none");
        assert_eq!(
            PrefetcherKind::fdip_with_cpf(CpfMode::Remove).name(),
            "fdip+rcpf"
        );
        assert_eq!(
            PrefetcherKind::fdip_with_cpf(CpfMode::Enqueue).name(),
            "fdip+ecpf"
        );
        assert_eq!(
            PrefetcherKind::StreamBuffers(StreamBufferConfig::default()).name(),
            "stream"
        );
    }

    #[test]
    fn btb_variant_helpers() {
        match BtbVariant::conventional(2048) {
            BtbVariant::Conventional(c) => {
                assert_eq!(c.entries(), 2048);
                assert_eq!(c.ways, 8);
            }
            _ => unreachable!(),
        }
        match BtbVariant::partitioned(1024) {
            BtbVariant::Partitioned(p) => assert_eq!(p.entries[0], 768),
            _ => unreachable!(),
        }
    }

    #[test]
    fn check_reports_without_panicking() {
        assert!(FrontendConfig::default().check().is_ok());
        let bad = FrontendConfig {
            instr_buffer: 1,
            ..FrontendConfig::default()
        };
        assert!(bad.check().unwrap_err().contains("instr buffer"));
        let bad = FrontendConfig {
            ras_entries: 0,
            ..FrontendConfig::default()
        };
        assert!(bad.check().unwrap_err().contains("ras"));
    }

    #[test]
    #[should_panic(expected = "ftq must have")]
    fn zero_ftq_rejected() {
        FrontendConfig {
            ftq_entries: 0,
            ..FrontendConfig::default()
        }
        .validate();
    }
}
