//! Lockstep multi-config batching: simulate N configurations of a sweep
//! over a **single shared trace walk**.
//!
//! The dominant workload of this repo is sensitivity sweeps — N front-end
//! configurations over the *same* trace. Run solo, each config re-walks
//! and re-predicts the trace from scratch, even though most sweep points
//! differ only in prefetcher/memory parameters and drive an *identical*
//! BPU.
//!
//! # Why the walk is shareable
//!
//! [`Bpu`] state is a pure function of its construction parameters (BTB
//! variant, direction predictor, RAS depth, fetch-block size — the
//! [`walk_key`]) and the ordered sequence of `generate`/`resume` calls it
//! has received; the simulator issues exactly one `resume` per
//! redirect-carrying block before the next `generate`. *Timing* differences
//! between configs shift only **when** those calls happen, never their
//! order or count — so every config with the same walk key produces the
//! same block sequence, and the sequence can be captured once
//! ([`SharedWalk::capture`]) and replayed into each member's front-end
//! state. Configs enabling `predecode_btb_fill` (Boomerang) feed fill
//! timing back into the BTB, breaking the purity argument; they always run
//! a live BPU.
//!
//! [`run_batch`] groups configs by walk key, captures one walk per group
//! with at least two members (a singleton gains nothing from a capture
//! pass), and steps all members in lockstep quanta over the shared walk.
//! Per-config results are **identical** to N independent runs — enforced
//! by the unit tests here, the harness equality tests, and the
//! experiment-level double-run diff in CI.

use fdip_trace::Trace;

use crate::bpu::{Bpu, Generated};
use crate::config::FrontendConfig;
use crate::simulator::Simulator;
use crate::stats::{BranchStats, SimStats};

/// The BPU-construction key: configs with equal keys drive identical BPUs
/// and may share a trace walk (see module docs for the purity argument).
pub fn walk_key(config: &FrontendConfig) -> String {
    format!(
        "{:?}|{:?}|{}|{}",
        config.btb, config.predictor, config.ras_entries, config.fetch_block_insts
    )
}

/// A captured BPU walk of one trace: every generated fetch block in
/// order, plus the branch statistics the walk accumulated.
#[derive(Clone, Debug)]
pub struct SharedWalk {
    /// The generated blocks, in emission order.
    pub blocks: Vec<Generated>,
    /// Whole-trace branch statistics (taken verbatim at finalization by
    /// replay members, which never predict themselves).
    pub branches: BranchStats,
    /// The [`walk_key`] this walk was captured under.
    pub key: String,
}

impl SharedWalk {
    /// Runs `config`'s BPU over the whole trace, draining it with the
    /// same call sequence the simulator would issue: one `resume` per
    /// redirect block, `generate` otherwise, until the trace is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or enables
    /// `predecode_btb_fill` (not walk-shareable; see module docs).
    pub fn capture(config: &FrontendConfig, trace: &Trace) -> SharedWalk {
        config.validate();
        assert!(
            !config.predecode_btb_fill,
            "predecode BTB fill configs cannot share a walk"
        );
        let instrs = trace.instrs();
        let mut bpu = Bpu::new(config);
        let mut branches = BranchStats::default();
        // Blocks hold at least one instruction; typical blocks hold
        // several, so quarter-length is a generous capacity hint.
        let mut blocks = Vec::with_capacity(instrs.len() / 4 + 1);
        loop {
            if bpu.is_stalled() {
                bpu.resume();
            }
            match bpu.generate(instrs, &mut branches) {
                Some(g) => blocks.push(g),
                None => break,
            }
        }
        SharedWalk {
            blocks,
            branches,
            key: walk_key(config),
        }
    }
}

/// Instructions each batch member retires before the scheduler moves to
/// the next — large enough to amortize switching, small enough that all
/// members work the same region of the shared walk (cache locality).
const QUANTUM_INSTRS: u64 = 16_384;

/// Simulates every config over `trace` in one lockstep batch and returns
/// per-config statistics in input order — **identical** to running each
/// config solo through [`Simulator::run_trace`].
///
/// Configs sharing a [`walk_key`] (and not using predecode BTB fill)
/// replay one [`SharedWalk`]; the rest run live BPUs. Duplicate configs
/// are not deduplicated here — the harness's cell cache already handles
/// that level.
///
/// # Panics
///
/// Panics if any configuration is invalid, or on livelock (as
/// [`Simulator::run`]).
pub fn run_batch(configs: &[FrontendConfig], trace: &Trace) -> Vec<SimStats> {
    // One walk per key with at least two shareable members.
    let keys: Vec<Option<String>> = configs
        .iter()
        .map(|c| (!c.predecode_btb_fill).then(|| walk_key(c)))
        .collect();
    let mut walks: Vec<SharedWalk> = Vec::new();
    let mut walk_of: Vec<Option<usize>> = vec![None; configs.len()];
    for (i, key) in keys.iter().enumerate() {
        let Some(key) = key else { continue };
        if keys.iter().filter(|k| k.as_deref() == Some(key)).count() < 2 {
            continue;
        }
        let idx = walks.iter().position(|w| &w.key == key).unwrap_or_else(|| {
            walks.push(SharedWalk::capture(&configs[i], trace));
            walks.len() - 1
        });
        walk_of[i] = Some(idx);
    }

    let mut sims: Vec<Simulator<'_>> = configs
        .iter()
        .zip(&walk_of)
        .map(|(config, walk)| match walk {
            Some(idx) => Simulator::with_walk(config, trace, &walks[*idx]),
            None => Simulator::new(config, trace),
        })
        .collect();

    let limit = 500 + trace.len() as u64 * 1_000;
    loop {
        let mut any_running = false;
        for sim in &mut sims {
            if sim.is_done() {
                continue;
            }
            any_running = true;
            let target = sim.retired() + QUANTUM_INSTRS;
            while !sim.is_done() && sim.retired() < target {
                sim.step();
                assert!(
                    sim.now().raw() <= limit,
                    "batch member exceeded {limit} cycles — livelock?"
                );
            }
        }
        if !any_running {
            break;
        }
    }
    sims.iter_mut().map(|sim| sim.finalize_in_place()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BtbVariant, CpfMode, PrefetcherKind};
    use fdip_trace::gen::{GeneratorConfig, Profile};

    fn trace(profile: Profile, seed: u64, len: usize) -> Trace {
        GeneratorConfig::profile(profile)
            .seed(seed)
            .target_len(len)
            .generate()
    }

    fn sweep_configs() -> Vec<FrontendConfig> {
        vec![
            FrontendConfig::default(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Both)),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::NextLine),
        ]
    }

    #[test]
    fn batch_equals_solo_runs_field_by_field() {
        let trace = trace(Profile::Server, 11, 30_000);
        let configs = sweep_configs();
        let batched = run_batch(&configs, &trace);
        for (config, batched) in configs.iter().zip(&batched) {
            let solo = Simulator::run_trace(config, &trace);
            assert_eq!(&solo, batched, "config {:?}", config.prefetcher.name());
        }
    }

    #[test]
    fn mixed_walk_keys_and_boomerang_fall_back_correctly() {
        // ftb uses a different BPU key (no shared walk with the default
        // key's pair); boomerang must run a live BPU.
        let trace = trace(Profile::Client, 3, 20_000);
        let configs = vec![
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            FrontendConfig::default()
                .with_btb(BtbVariant::basic_block(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip())
                .with_predecode_btb_fill(true),
            FrontendConfig::default(),
        ];
        let batched = run_batch(&configs, &trace);
        assert_eq!(batched.len(), configs.len());
        for (config, batched) in configs.iter().zip(&batched) {
            let solo = Simulator::run_trace(config, &trace);
            assert_eq!(&solo, batched);
        }
    }

    #[test]
    fn single_config_batch_matches_solo() {
        let trace = trace(Profile::MicroLoop, 7, 8_000);
        let configs = vec![FrontendConfig::default()];
        let batched = run_batch(&configs, &trace);
        let solo = Simulator::run_trace(&configs[0], &trace);
        assert_eq!(batched, vec![solo]);
    }

    #[test]
    fn walk_key_distinguishes_bpu_inputs_only() {
        let base = FrontendConfig::default();
        let fdip = base.clone().with_prefetcher(PrefetcherKind::fdip());
        assert_eq!(walk_key(&base), walk_key(&fdip));
        let ftb = base.clone().with_btb(BtbVariant::basic_block(2048));
        assert_ne!(walk_key(&base), walk_key(&ftb));
    }

    #[test]
    fn captured_walk_matches_live_branch_stats() {
        let trace = trace(Profile::Jumpy, 5, 10_000);
        let config = FrontendConfig::default();
        let walk = SharedWalk::capture(&config, &trace);
        let solo = Simulator::run_trace(&config, &trace);
        assert_eq!(walk.branches, solo.branches);
        assert!(!walk.blocks.is_empty());
        let replayed: u64 = walk.blocks.iter().map(|g| g.block.len as u64).sum();
        assert_eq!(replayed, trace.len() as u64);
    }
}
