//! Cooperative cancellation for long simulations.
//!
//! A [`CancelToken`] is shared between the party that owns a deadline (the
//! experiment harness's per-cell watchdog) and the simulation loop, which
//! polls it every few thousand cycles via
//! [`Simulator::run_cancellable`](crate::Simulator::run_cancellable).
//! Cancellation is cooperative — nothing is torn down mid-cycle — so a
//! cancelled run unwinds cleanly through an ordinary `Err` instead of a
//! panic or a killed thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation signal with an optional wall-clock deadline.
///
/// Cloning shares the underlying flag: any clone's [`cancel`](Self::cancel)
/// is observed by every holder.
///
/// # Examples
///
/// ```
/// use fdip::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
///
/// let deadline = CancelToken::with_deadline(Duration::ZERO);
/// assert!(deadline.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally cancels once `budget` wall-clock time has
    /// elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::default(),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Requests cancellation; observed by every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

/// Marker error: the simulation observed its token cancelled and stopped
/// early. Carries no partial statistics — a cancelled cell has no result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("simulation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(expired.is_cancelled());
    }

    #[test]
    fn cancelled_displays() {
        assert_eq!(Cancelled.to_string(), "simulation cancelled");
    }
}
