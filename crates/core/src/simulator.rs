use fdip_mem::{MemoryHierarchy, NextLineTrigger};
use fdip_trace::Trace;
use fdip_types::{Cycle, TraceInstr};

use crate::backend::Backend;
use crate::batch::{walk_key, SharedWalk};
use crate::bpu::{Bpu, Generated};
use crate::config::{FrontendConfig, PrefetcherKind};
use crate::events::{EventCalendar, EventKind};
use crate::fetch::FetchEngine;
use crate::ftq::{Ftq, Redirect};
use crate::predecode::CodeMap;
use crate::prefetch::{
    DemandSide, EnginePause, FdipEngine, PifEngine, ShotgunEngine, StreamAdapter,
};
use crate::stats::SimStats;

/// Storage breakdown of the front-end's prediction/prefetch structures —
/// the currency both papers budget in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StorageReport {
    /// BTB storage in bits (per the paper's entry accounting).
    pub btb_bits: u64,
    /// Direction-predictor table bits (0 for the oracle).
    pub predictor_bits: u64,
    /// Return-address-stack bits.
    pub ras_bits: u64,
    /// Prefetch-buffer tag bits.
    pub prefetch_buffer_bits: u64,
}

impl StorageReport {
    /// Total bits across all reported structures.
    pub fn total_bits(&self) -> u64 {
        self.btb_bits + self.predictor_bits + self.ras_bits + self.prefetch_buffer_bits
    }

    /// Total in kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

/// The FTQ-side prefetch engine slot.
enum FtqSide {
    None,
    Fdip(FdipEngine),
    Shotgun(ShotgunEngine),
}

impl FtqSide {
    fn begin_stall_path(&mut self, fall_through: fdip_types::Addr) {
        match self {
            FtqSide::Fdip(e) => e.begin_stall_path(fall_through),
            FtqSide::Shotgun(e) => e.begin_stall_path(fall_through),
            FtqSide::None => {}
        }
    }

    fn end_stall_path(&mut self) {
        match self {
            FtqSide::Fdip(e) => e.end_stall_path(),
            FtqSide::Shotgun(e) => e.end_stall_path(),
            FtqSide::None => {}
        }
    }

    /// Pause analysis for the event kernel: would the next per-cycle call
    /// do observable work? FDIP has precise analysis
    /// ([`FdipEngine::pause_until`]); Shotgun is handled conservatively
    /// (skippable only when fully quiescent over an empty FTQ, matching
    /// the old fast-forward's coverage).
    fn pause_until(&self, now: Cycle, ftq: &Ftq, mem: &MemoryHierarchy) -> EnginePause {
        match self {
            FtqSide::None => EnginePause::Idle,
            FtqSide::Fdip(e) => e.pause_until(now, ftq, mem),
            FtqSide::Shotgun(e) => {
                if ftq.is_empty() && e.is_quiescent() {
                    EnginePause::Idle
                } else {
                    EnginePause::Active
                }
            }
        }
    }
}

/// Replay cursor over a [`SharedWalk`]: stands in for the live BPU in a
/// lockstep batch, reproducing the exact `generate`/`resume` sequence the
/// walk recorded without re-predicting anything.
struct WalkCursor<'t> {
    walk: &'t SharedWalk,
    /// Next block to replay.
    next: usize,
    /// Mirrors `Bpu::is_stalled`: set when a redirect block is emitted,
    /// cleared by resume.
    stalled: bool,
}

impl WalkCursor<'_> {
    /// Replays the next generated block (`None` while stalled or when the
    /// walk is exhausted), mirroring [`Bpu::generate`]'s contract.
    fn generate(&mut self) -> Option<Generated> {
        if self.stalled || self.next >= self.walk.blocks.len() {
            return None;
        }
        let g = self.walk.blocks[self.next];
        self.next += 1;
        self.stalled = g.redirect.is_some();
        Some(g)
    }

    fn done(&self) -> bool {
        self.next >= self.walk.blocks.len()
    }
}

/// The assembled decoupled front-end: BPU → FTQ → fetch engine → back-end,
/// with the memory hierarchy and the configured prefetcher.
///
/// # Examples
///
/// ```
/// use fdip::{FrontendConfig, Simulator};
/// use fdip_trace::gen::{GeneratorConfig, Profile};
///
/// let trace = GeneratorConfig::profile(Profile::MicroLoop)
///     .seed(3)
///     .target_len(5_000)
///     .generate();
/// let stats = Simulator::run_trace(&FrontendConfig::default(), &trace);
/// assert_eq!(stats.instructions, trace.len() as u64);
/// assert!(stats.ipc() > 0.0);
/// ```
pub struct Simulator<'t> {
    config: FrontendConfig,
    trace: &'t [TraceInstr],
    now: Cycle,
    bpu: Bpu,
    ftq: Ftq,
    fetch: FetchEngine,
    backend: Backend,
    mem: MemoryHierarchy,
    demand: DemandSide,
    ftq_side: FtqSide,
    /// Cycle at which a pending redirect lets the BPU resume. When several
    /// redirects finish before the first resolves, the *earliest* resume
    /// wins (see `redirect_overlaps` in [`SimStats`]).
    resume_at: Option<Cycle>,
    /// Boomerang extension: line → direct branches, for predecode BTB fill.
    code_map: Option<CodeMap>,
    /// Scratch for FTQ entries finishing each cycle (reused, never grows
    /// past the fetch width) — keeps [`step`](Self::step) allocation-free.
    finished_scratch: Vec<crate::ftq::FtqEntry>,
    /// Scratch for freshly filled blocks drained to the predecoder.
    predecode_scratch: Vec<fdip_types::Addr>,
    /// The event calendar backing [`skip_idle_cycles`]
    /// (see [`Self::skip_idle_cycles`]) — preallocated and reused, so the
    /// kernel adds no per-cycle heap traffic.
    calendar: EventCalendar,
    /// Cycle-oracle mode: disables event-driven skipping entirely so the
    /// loop ticks every cycle. The differential suite runs this as the
    /// reference the event kernel must match byte-for-byte.
    oracle: bool,
    /// When simulating as part of a lockstep batch, the shared BPU walk to
    /// replay instead of running the live BPU.
    walk: Option<WalkCursor<'t>>,
    stats: SimStats,
    /// Measurement window start (set by [`Simulator::reset_stats`]).
    measure_from_cycle: Cycle,
    measure_from_retired: u64,
}

impl<'t> Simulator<'t> {
    /// Builds a simulator for `config` over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FrontendConfig::validate`]).
    pub fn new(config: &FrontendConfig, trace: &'t Trace) -> Self {
        config.validate();
        let block_bytes = config.mem.l1.block_bytes;
        let mut mem_config = config.mem;
        let (demand, ftq_side) = match &config.prefetcher {
            PrefetcherKind::None => (DemandSide::None, FtqSide::None),
            PrefetcherKind::NextLine => {
                // Classic tagged NLP prefetches straight into the L1.
                mem_config.prefetch_buffer_blocks = 0;
                (
                    DemandSide::NextLine(NextLineTrigger::new(block_bytes)),
                    FtqSide::None,
                )
            }
            PrefetcherKind::StreamBuffers(sb) => {
                // Stream buffers hold their own fills; no prefetch buffer.
                mem_config.prefetch_buffer_blocks = 0;
                (DemandSide::Stream(StreamAdapter::new(*sb)), FtqSide::None)
            }
            PrefetcherKind::Fdip(fc) => (
                DemandSide::None,
                FtqSide::Fdip(FdipEngine::new(*fc, block_bytes)),
            ),
            PrefetcherKind::Shotgun(sg, fc) => (
                DemandSide::None,
                FtqSide::Shotgun(ShotgunEngine::new(*sg, *fc, block_bytes)),
            ),
            PrefetcherKind::Pif(pc) => (DemandSide::Pif(PifEngine::new(*pc)), FtqSide::None),
        };
        let code_map = config
            .predecode_btb_fill
            .then(|| CodeMap::from_trace(trace.instrs(), block_bytes));
        let mut mem = MemoryHierarchy::new(mem_config);
        // Fill tracking feeds the predecoder; without one, recording fills
        // would only accumulate memory for the whole run.
        mem.set_fill_tracking(code_map.is_some());
        Simulator {
            config: config.clone(),
            trace: trace.instrs(),
            now: Cycle::ZERO,
            bpu: Bpu::new(config),
            ftq: Ftq::new(config.ftq_entries),
            fetch: FetchEngine::new(config.fetch_width, block_bytes),
            backend: Backend::new(config.retire_width, config.instr_buffer),
            mem,
            demand,
            ftq_side,
            resume_at: None,
            code_map,
            finished_scratch: Vec::with_capacity(config.fetch_width as usize),
            predecode_scratch: Vec::with_capacity(mem_config.mshrs),
            calendar: EventCalendar::default(),
            oracle: false,
            walk: None,
            stats: SimStats::default(),
            measure_from_cycle: Cycle::ZERO,
            measure_from_retired: 0,
        }
    }

    /// Builds a simulator that replays `walk` instead of running its own
    /// BPU — the lockstep-batch path (see [`crate::batch`]): the trace is
    /// decoded and predicted once, and every config sharing the walk's
    /// BPU key replays the identical block sequence.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, enables predecode BTB fill
    /// (boomerang feeds prediction state dynamically, so its walk is not
    /// shareable), or has a different BPU key than the walk was captured
    /// with.
    pub fn with_walk(config: &FrontendConfig, trace: &'t Trace, walk: &'t SharedWalk) -> Self {
        assert!(
            !config.predecode_btb_fill,
            "predecode BTB fill configs cannot replay a shared walk"
        );
        assert_eq!(
            walk_key(config),
            walk.key,
            "config BPU key must match the walk's"
        );
        let mut sim = Simulator::new(config, trace);
        sim.walk = Some(WalkCursor {
            walk,
            next: 0,
            stalled: false,
        });
        sim
    }

    /// Convenience: build, run to completion, return the statistics.
    pub fn run_trace(config: &FrontendConfig, trace: &Trace) -> SimStats {
        Simulator::new(config, trace).run()
    }

    /// Reference path for differential testing: runs with the event kernel
    /// disabled, ticking every cycle exactly as the pre-event-kernel loop
    /// did. The event-driven [`run_trace`](Self::run_trace) must produce
    /// byte-identical statistics.
    pub fn run_trace_cycle_oracle(config: &FrontendConfig, trace: &Trace) -> SimStats {
        let mut sim = Simulator::new(config, trace);
        sim.set_cycle_oracle(true);
        sim.run()
    }

    /// Enables/disables cycle-oracle mode (no event-driven skipping).
    pub fn set_cycle_oracle(&mut self, oracle: bool) {
        self.oracle = oracle;
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Statistics so far (finalized by [`run`](Self::run)).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Reports the storage cost of the configured front-end structures.
    pub fn storage_report(&self) -> StorageReport {
        StorageReport {
            btb_bits: self.bpu.btb_storage_bits(),
            predictor_bits: self.bpu.predictor_storage_bits(),
            ras_bits: self.bpu.ras_storage_bits(),
            prefetch_buffer_bits: self.mem.prefetch_buffer_storage_bits(),
        }
    }

    /// Returns `true` once every trace instruction has retired.
    pub fn is_done(&self) -> bool {
        self.backend.retired() >= self.trace.len() as u64
    }

    /// Simulates one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.mem.begin_cycle(now);

        // Boomerang extension: predecode freshly filled lines into the BTB.
        if let Some(code_map) = &self.code_map {
            self.mem
                .drain_recent_fills_into(&mut self.predecode_scratch);
            for &block in &self.predecode_scratch {
                for &(pc, class, target) in code_map.branches_in(block) {
                    if self.bpu.predecode_install(pc, class, target) {
                        self.stats.predecode_installs += 1;
                    }
                }
            }
        }

        // Redirect resolution unblocks the BPU (or the walk cursor that
        // stands in for it).
        if let Some(resume) = self.resume_at {
            if !resume.is_after(now) {
                self.bpu.resume();
                if let Some(cursor) = &mut self.walk {
                    cursor.stalled = false;
                }
                self.resume_at = None;
                self.ftq_side.end_stall_path();
            }
        }

        // Back-end retires.
        self.backend.cycle();

        // Fetch engine consumes the FTQ head.
        let out = self.fetch.cycle(
            now,
            &mut self.ftq,
            &mut self.mem,
            &mut self.demand,
            self.backend.room(),
            &mut self.finished_scratch,
        );
        self.backend.deliver(out.delivered);
        for entry in &self.finished_scratch {
            if let Some(redirect) = entry.redirect {
                let penalty = match redirect {
                    Redirect::Decode => self.config.decode_redirect_penalty,
                    Redirect::Execute => self.config.exec_redirect_penalty,
                };
                let at = now + penalty;
                // Should a second redirect finish while the first penalty
                // is still pending, the earliest resume wins: resuming the
                // BPU late (the old `max`-by-overwrite behavior) would
                // stretch stalls nondeterministically with delivery order.
                self.resume_at = Some(match self.resume_at {
                    None => at,
                    Some(pending) => {
                        self.stats.redirect_overlaps += 1;
                        if at.is_after(pending) {
                            pending
                        } else {
                            at
                        }
                    }
                });
            }
        }
        if out.delivered == 0 && !self.is_done() {
            self.stats.fetch_stall_cycles += 1;
            if out.waiting_on_icache {
                self.stats.icache_stall_cycles += 1;
            }
        }

        // Prefetchers.
        self.demand.per_cycle(now, &mut self.mem);
        match &mut self.ftq_side {
            FtqSide::Fdip(engine) => {
                engine.per_cycle(now, &self.ftq, &mut self.mem, &mut self.stats.fdip);
            }
            FtqSide::Shotgun(engine) => {
                engine.per_cycle(
                    now,
                    &self.ftq,
                    &mut self.mem,
                    &mut self.stats.fdip,
                    &mut self.stats.shotgun,
                );
            }
            FtqSide::None => {}
        }

        // BPU runs ahead (a batch member replays the shared walk instead —
        // same call sequence, no re-prediction).
        if !self.ftq.is_full() {
            let generated = match &mut self.walk {
                Some(cursor) => cursor.generate(),
                None => {
                    if self.bpu.is_stalled() {
                        None
                    } else {
                        self.bpu.generate(self.trace, &mut self.stats.branches)
                    }
                }
            };
            if let Some(g) = generated {
                self.ftq
                    .push(g.block, g.trace_idx, g.redirect)
                    .expect("ftq checked not full");
                if g.redirect.is_some() {
                    // The real front-end keeps fetching the sequential path
                    // until the resteer materializes; the prefetch engine
                    // mirrors that along the fall-through.
                    self.ftq_side.begin_stall_path(g.block.end_addr());
                }
            }
        }

        if self.ftq.is_empty() && !self.is_done() {
            self.stats.ftq_empty_cycles += 1;
        }
        self.stats.ftq_occupancy_sum += self.ftq.len() as u64;
        self.now = now.next();
        if !self.oracle {
            self.skip_idle_cycles();
        }
    }

    /// Is the block feed (live BPU or walk cursor) unable to generate this
    /// cycle — stalled on a redirect or out of trace?
    fn feed_blocked(&self) -> bool {
        match &self.walk {
            Some(cursor) => cursor.stalled || cursor.done(),
            None => self.bpu.is_stalled() || self.bpu.done(self.trace),
        }
    }

    /// The event kernel: when every pipeline structure is provably inert,
    /// jump `now` straight to the earliest calendar event instead of
    /// ticking the dead cycles one at a time. Subsumes the old idle-cycle
    /// fast-forward (BPU stalled over an empty machine, bounded by resume
    /// or fill) as a degenerate case, and additionally skips fill waits
    /// with queued work and bus-blocked prefetch stretches.
    ///
    /// # Legality
    ///
    /// A cycle may be skipped only when *every* observable effect of
    /// running it can be accounted for arithmetically:
    ///
    /// * back-end empty (`buffered() == 0`): retirement is a no-op;
    /// * the block feed is blocked (stalled/exhausted BPU or a full FTQ):
    ///   no entry is pushed;
    /// * the demand-side prefetcher is passive (no background work);
    /// * fetch is inert: waiting on an outstanding fill (it early-returns
    ///   without touching ports or the FTQ), or facing an empty FTQ —
    ///   either way `delivered == 0` and no entry pops;
    /// * the FTQ-side engine reports [`EnginePause::Idle`] (no work, or
    ///   blocked on an MSHR that only a scheduled fill can free) or
    ///   [`EnginePause::Until`] (blocked on the bus, which becomes a
    ///   calendar event).
    ///
    /// The skip target is the earliest of: the next MSHR fill (which
    /// `begin_cycle` must apply — and the predecode tap observe — on its
    /// exact cycle), the fetch engine's fill arrival, the pending BPU
    /// resume, and the bus grant the prefetcher waits on. Machine state is
    /// constant over the skipped range, so each skipped cycle contributes
    /// exactly: `fetch_stall_cycles += 1`, `icache_stall_cycles += 1` iff
    /// fetch waits on a fill, `ftq_empty_cycles += 1` iff the FTQ is
    /// empty, and `ftq_occupancy_sum += len` — accumulated here in one
    /// multiplication each. The differential suite pins byte-identity
    /// against the cycle oracle.
    fn skip_idle_cycles(&mut self) {
        if self.is_done() || self.backend.buffered() != 0 {
            return;
        }
        if !self.feed_blocked() && !self.ftq.is_full() {
            return;
        }
        if !self.demand.is_passive() {
            return;
        }
        let fetch_wait = self.fetch.waiting_until();
        if fetch_wait.is_none() && !self.ftq.is_empty() {
            return;
        }
        let pause = self.ftq_side.pause_until(self.now, &self.ftq, &self.mem);
        if pause == EnginePause::Active {
            return;
        }
        self.calendar.clear();
        if let Some(fill) = self.mem.next_event_cycle() {
            self.calendar.schedule(EventKind::FillCompletion, fill);
        }
        if let Some(wait) = fetch_wait {
            self.calendar.schedule(EventKind::FillCompletion, wait);
        }
        if let Some(resume) = self.resume_at {
            self.calendar.schedule(EventKind::BpuResume, resume);
        }
        if let EnginePause::Until(grant) = pause {
            // The grant and the issue retry it enables land on the same
            // cycle; the calendar's priority order fires the grant first.
            self.calendar.schedule(EventKind::BusGrant, grant);
            self.calendar.schedule(EventKind::PrefetchIssue, grant);
        }
        let Some((target, _)) = self.calendar.next() else {
            return;
        };
        if !target.is_after(self.now) {
            return;
        }
        let skipped = target - self.now;
        self.stats.fetch_stall_cycles += skipped;
        if fetch_wait.is_some() {
            self.stats.icache_stall_cycles += skipped;
        }
        if self.ftq.is_empty() {
            self.stats.ftq_empty_cycles += skipped;
        }
        self.stats.ftq_occupancy_sum += skipped * self.ftq.len() as u64;
        self.now = target;
    }

    /// Clears every statistic while keeping microarchitectural state
    /// (caches, BTB, predictor tables, FTQ contents) — the standard
    /// warmup/measurement split. Subsequent statistics cover only the
    /// cycles and instructions after this call.
    pub fn reset_stats(&mut self) {
        // Walk replay defers branch statistics to finalization (the walk
        // holds the whole-trace totals), which a mid-run measurement
        // window would silently misattribute.
        assert!(
            self.walk.is_none(),
            "warmup/measurement splits are not supported under walk replay"
        );
        self.stats = SimStats::default();
        self.mem.reset_stats();
        self.measure_from_cycle = self.now;
        self.measure_from_retired = self.backend.retired();
    }

    /// Runs `warmup_instructions` with statistics discarded, then the rest
    /// of the trace measured; returns the measured statistics.
    ///
    /// # Panics
    ///
    /// Panics on livelock, as [`run`](Self::run).
    pub fn run_with_warmup(mut self, warmup_instructions: u64) -> SimStats {
        let limit = 500 + self.trace.len() as u64 * 1_000;
        while !self.is_done() && self.backend.retired() < warmup_instructions {
            self.step();
            assert!(self.now.raw() <= limit, "livelock during warmup");
        }
        self.reset_stats();
        while !self.is_done() {
            self.step();
            assert!(self.now.raw() <= limit, "livelock during measurement");
        }
        self.finalize()
    }

    /// Runs to completion and returns the finalized statistics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails to make progress (an internal
    /// invariant violation), after a generous cycle bound.
    pub fn run(mut self) -> SimStats {
        let limit = 500 + self.trace.len() as u64 * 1_000;
        while !self.is_done() {
            self.step();
            assert!(
                self.now.raw() <= limit,
                "simulation exceeded {limit} cycles — livelock?"
            );
        }
        self.finalize()
    }

    /// How many *simulated* cycles [`run_cancellable`](Self::run_cancellable)
    /// advances between token polls (event-kernel skips count). Polling
    /// costs an `Instant::now()` when the token carries a deadline, so it
    /// is amortized over a stride instead of paid every step; a cancelled
    /// run overshoots its budget by at most one stride of simulation.
    pub const CANCEL_POLL_STRIDE: u64 = 4_096;

    /// Runs to completion like [`run`](Self::run), but polls `token` every
    /// [`CANCEL_POLL_STRIDE`](Self::CANCEL_POLL_STRIDE) simulated cycles
    /// and stops early with [`Cancelled`](crate::Cancelled) when it fires.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`](crate::Cancelled) if the token was cancelled
    /// (explicitly or by its deadline) before the trace retired.
    ///
    /// # Panics
    ///
    /// Panics on livelock, as [`run`](Self::run).
    pub fn run_cancellable(
        mut self,
        token: &crate::CancelToken,
    ) -> Result<SimStats, crate::Cancelled> {
        let limit = 500 + self.trace.len() as u64 * 1_000;
        // Poll on simulated-time boundaries, not step counts: the event
        // kernel covers many cycles per step, and a pre-cancelled token
        // must still stop short traces.
        let mut next_poll = Self::CANCEL_POLL_STRIDE;
        while !self.is_done() {
            self.step();
            assert!(
                self.now.raw() <= limit,
                "simulation exceeded {limit} cycles — livelock?"
            );
            if self.now.raw() >= next_poll {
                if token.is_cancelled() {
                    return Err(crate::Cancelled);
                }
                next_poll = self.now.raw() + Self::CANCEL_POLL_STRIDE;
            }
        }
        Ok(self.finalize())
    }

    fn finalize(mut self) -> SimStats {
        self.finalize_in_place()
    }

    /// Instructions retired so far — the lockstep batch runner's progress
    /// measure for its quantum scheduling.
    pub fn retired(&self) -> u64 {
        self.backend.retired()
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Finalizes and takes the statistics without consuming the simulator
    /// (the batch runner finalizes its members in place; the owning
    /// [`run`](Self::run) paths delegate here).
    pub(crate) fn finalize_in_place(&mut self) -> SimStats {
        self.stats.cycles = self.now - self.measure_from_cycle;
        self.stats.instructions = self.backend.retired() - self.measure_from_retired;
        self.stats.mem = self.mem.stats().clone();
        self.stats.bus_busy_cycles = self.mem.bus().busy_cycles();
        self.stats.stream_resets = self.demand.stream_resets();
        self.stats.pif_resets = self.demand.pif_resets();
        if let Some(cursor) = &self.walk {
            // The walk accumulated the whole trace's branch statistics at
            // capture time; a replay member never predicts, so it takes
            // the totals here. Nothing reads `stats.branches` mid-run.
            self.stats.branches = cursor.walk.branches.clone();
        }
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BtbVariant, CpfMode, PredictorKind};
    use fdip_trace::gen::{GeneratorConfig, Profile};
    use fdip_trace::TraceBuilder;
    use fdip_types::Addr;

    fn micro_trace(len: usize) -> Trace {
        GeneratorConfig::profile(Profile::MicroLoop)
            .seed(7)
            .target_len(len)
            .generate()
    }

    #[test]
    fn retires_every_instruction() {
        let trace = micro_trace(8_000);
        let stats = Simulator::run_trace(&FrontendConfig::default(), &trace);
        assert_eq!(stats.instructions, trace.len() as u64);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.2, "ipc {}", stats.ipc());
        assert!(stats.ipc() <= 4.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = micro_trace(5_000);
        let config = FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip());
        let a = Simulator::run_trace(&config, &trace);
        let b = Simulator::run_trace(&config, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn event_kernel_matches_cycle_oracle_smoke() {
        // Fixed-seed tier-1 version of the differential proptest: the
        // event-driven kernel must match the cycle-by-cycle oracle
        // field-for-field across profiles and prefetchers.
        let configs = [
            ("baseline", FrontendConfig::default()),
            (
                "fdip",
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
            (
                "fdip_cpf",
                FrontendConfig::default()
                    .with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Both)),
            ),
            (
                "ftb_fdip",
                FrontendConfig::default()
                    .with_btb(BtbVariant::basic_block(2048))
                    .with_prefetcher(PrefetcherKind::fdip()),
            ),
            (
                "shotgun",
                FrontendConfig::default().with_prefetcher(PrefetcherKind::shotgun()),
            ),
            (
                "nlp",
                FrontendConfig::default().with_prefetcher(PrefetcherKind::NextLine),
            ),
        ];
        for profile in [Profile::Server, Profile::MicroLoop, Profile::Jumpy] {
            let trace = GeneratorConfig::profile(profile)
                .seed(13)
                .target_len(15_000)
                .generate();
            for (name, config) in &configs {
                let event = Simulator::run_trace(config, &trace);
                let oracle = Simulator::run_trace_cycle_oracle(config, &trace);
                assert_eq!(
                    event, oracle,
                    "{profile:?} / {name} diverged from the cycle oracle"
                );
            }
        }
    }

    #[test]
    fn cancellable_run_matches_plain_run() {
        let trace = micro_trace(8_000);
        let config = FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip());
        let plain = Simulator::run_trace(&config, &trace);
        let cancellable = Simulator::new(&config, &trace)
            .run_cancellable(&crate::CancelToken::new())
            .unwrap();
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn pre_cancelled_token_stops_the_run() {
        let trace = micro_trace(8_000);
        let token = crate::CancelToken::new();
        token.cancel();
        let result = Simulator::new(&FrontendConfig::default(), &trace).run_cancellable(&token);
        assert_eq!(result, Err(crate::Cancelled));
    }

    #[test]
    fn expired_deadline_cancels_the_run() {
        let trace = micro_trace(20_000);
        let token = crate::CancelToken::with_deadline(std::time::Duration::ZERO);
        let result = Simulator::new(&FrontendConfig::default(), &trace).run_cancellable(&token);
        assert_eq!(result, Err(crate::Cancelled));
    }

    #[test]
    fn straight_line_ipc_approaches_width() {
        // A long straight run through a small footprint: after warmup,
        // fetch should deliver at near full width.
        let mut b = TraceBuilder::new("straight", Addr::new(0x1000));
        for _ in 0..3000 {
            b.plain(16);
            b.jump(Addr::new(0x1000));
        }
        b.plain(1);
        let trace = b.finish();
        let stats = Simulator::run_trace(&FrontendConfig::default(), &trace);
        assert!(stats.ipc() > 3.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn perfect_predictor_and_ideal_btb_beat_realistic_ones() {
        let trace = GeneratorConfig::profile(Profile::Jumpy)
            .seed(3)
            .target_len(30_000)
            .generate();
        let real = Simulator::run_trace(&FrontendConfig::default(), &trace);
        let ideal_cfg = FrontendConfig::default()
            .with_btb(BtbVariant::Ideal)
            .with_predictor(PredictorKind::Perfect);
        let ideal = Simulator::run_trace(&ideal_cfg, &trace);
        assert!(
            ideal.cycles < real.cycles,
            "ideal {} vs real {}",
            ideal.cycles,
            real.cycles
        );
        // Indirect branches still mispredict under the last-target policy,
        // but the ideal front-end can only do better than the real one.
        assert!(ideal.branches.exec_redirects <= real.branches.exec_redirects);
    }

    #[test]
    fn fdip_reduces_icache_stalls_on_large_footprint() {
        let trace = GeneratorConfig::profile(Profile::Server)
            .seed(5)
            .num_funcs(600)
            .target_len(60_000)
            .generate();
        let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
        let fdip = Simulator::run_trace(
            &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            &trace,
        );
        assert!(base.mem.l1_misses > 0, "workload must miss");
        assert!(
            fdip.mem.l1_misses < base.mem.l1_misses,
            "fdip {} vs base {} misses",
            fdip.mem.l1_misses,
            base.mem.l1_misses
        );
        assert!(
            fdip.cycles < base.cycles,
            "fdip {} vs base {} cycles",
            fdip.cycles,
            base.cycles
        );
    }

    #[test]
    fn all_prefetchers_run_and_preserve_correctness() {
        let trace = micro_trace(6_000);
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::StreamBuffers(Default::default()),
            PrefetcherKind::fdip(),
            PrefetcherKind::fdip_with_cpf(CpfMode::Both),
            PrefetcherKind::Pif(Default::default()),
        ];
        for kind in kinds {
            let name = kind.name();
            let stats =
                Simulator::run_trace(&FrontendConfig::default().with_prefetcher(kind), &trace);
            assert_eq!(
                stats.instructions,
                trace.len() as u64,
                "prefetcher {name} lost instructions"
            );
        }
    }

    #[test]
    fn cpf_improves_prefetch_accuracy() {
        let trace = GeneratorConfig::profile(Profile::Client)
            .seed(9)
            .target_len(40_000)
            .generate();
        let plain = Simulator::run_trace(
            &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            &trace,
        );
        let cpf = Simulator::run_trace(
            &FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Enqueue)),
            &trace,
        );
        // Enqueue filtering must cut issued prefetches (cached blocks are
        // rejected before the PIQ).
        assert!(
            cpf.mem.prefetches_issued <= plain.mem.prefetches_issued,
            "cpf {} vs plain {}",
            cpf.mem.prefetches_issued,
            plain.mem.prefetches_issued
        );
        assert!(cpf.fdip.filtered_cpf_enqueue > 0);
    }

    #[test]
    fn storage_report_reflects_configuration() {
        let trace = micro_trace(2_000);
        let small = Simulator::new(
            &FrontendConfig::default().with_btb(BtbVariant::conventional(1024)),
            &trace,
        )
        .storage_report();
        let large = Simulator::new(
            &FrontendConfig::default().with_btb(BtbVariant::conventional(8192)),
            &trace,
        )
        .storage_report();
        assert!(large.btb_bits > small.btb_bits);
        assert_eq!(large.predictor_bits, small.predictor_bits);
        assert!(small.total_bits() > 0);
        assert!(small.total_kb() > 0.0);
        // The oracle predictor costs nothing.
        let oracle = Simulator::new(
            &FrontendConfig::default().with_predictor(PredictorKind::Perfect),
            &trace,
        )
        .storage_report();
        assert_eq!(oracle.predictor_bits, 0);
    }

    #[test]
    fn warmup_excludes_cold_start_from_measurement() {
        // A tiny-footprint loop: cold L1 misses dominate a short run, so a
        // warmed measurement must show higher IPC.
        let mut b = TraceBuilder::new("w", Addr::new(0x1000));
        for _ in 0..400 {
            b.plain(16);
            b.jump(Addr::new(0x1000));
        }
        b.plain(1);
        let trace = b.finish();
        let cold = Simulator::run_trace(&FrontendConfig::default(), &trace);
        let warm = Simulator::new(&FrontendConfig::default(), &trace).run_with_warmup(1_000);
        // Warmup stops at the first cycle boundary at or past 1000 retired,
        // so up to retire_width extra instructions land in the warmup.
        let measured = warm.instructions;
        assert!(
            (trace.len() as u64 - 1_004..=trace.len() as u64 - 1_000).contains(&measured),
            "measured {measured}"
        );
        assert!(
            warm.ipc() > cold.ipc(),
            "warm {} cold {}",
            warm.ipc(),
            cold.ipc()
        );
        assert_eq!(warm.mem.l1_misses, 0, "all misses happen during warmup");
    }

    #[test]
    fn warmup_of_zero_equals_plain_run() {
        let trace = micro_trace(4_000);
        let plain = Simulator::run_trace(&FrontendConfig::default(), &trace);
        let warm = Simulator::new(&FrontendConfig::default(), &trace).run_with_warmup(0);
        assert_eq!(plain, warm);
    }

    #[test]
    fn predecode_btb_fill_reduces_misfetches() {
        let trace = GeneratorConfig::profile(Profile::Server)
            .seed(4)
            .target_len(40_000)
            .generate();
        let plain = Simulator::run_trace(
            &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            &trace,
        );
        let boom = Simulator::run_trace(
            &FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip())
                .with_predecode_btb_fill(true),
            &trace,
        );
        assert!(boom.predecode_installs > 0);
        assert!(
            boom.branches.decode_redirects < plain.branches.decode_redirects,
            "boom {} vs plain {}",
            boom.branches.decode_redirects,
            plain.branches.decode_redirects
        );
    }

    #[test]
    fn overlapping_redirects_keep_the_earliest_resume() {
        use fdip_types::{BlockEnd, FetchBlock};
        // Two redirect-carrying blocks in one warm cache line: with fetch
        // width 4 both finish in the same cycle, so the second redirect
        // lands while the first penalty is still pending. The earlier
        // resume must win (the decode redirect here), not simply the
        // last-processed one (the execute redirect), and the overlap is
        // counted.
        let trace = micro_trace(2_000);
        let config = FrontendConfig::default();
        assert!(config.decode_redirect_penalty < config.exec_redirect_penalty);
        let mut sim = Simulator::new(&config, &trace);
        let line = Addr::new(0x100);
        sim.mem.begin_cycle(Cycle::ZERO);
        sim.mem.demand_access(Cycle::ZERO, line);
        // Jump past the fill; the line is warm for the fetch cycle.
        sim.now = Cycle::new(500);
        sim.ftq
            .push(
                FetchBlock::new(line, 2, BlockEnd::NotTakenBranch),
                0,
                Some(Redirect::Decode),
            )
            .expect("ftq empty");
        sim.ftq
            .push(
                FetchBlock::new(Addr::new(0x108), 2, BlockEnd::NotTakenBranch),
                2,
                Some(Redirect::Execute),
            )
            .expect("ftq has room");
        let at = sim.now;
        sim.step();
        assert_eq!(
            sim.resume_at,
            Some(at + config.decode_redirect_penalty),
            "earliest resume wins"
        );
        assert_eq!(sim.stats.redirect_overlaps, 1);
    }

    #[test]
    fn bigger_ftq_never_reduces_fdip_lookahead() {
        let trace = GeneratorConfig::profile(Profile::Server)
            .seed(2)
            .num_funcs(400)
            .target_len(40_000)
            .generate();
        let small = Simulator::run_trace(
            &FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip())
                .with_ftq_entries(2),
            &trace,
        );
        let large = Simulator::run_trace(
            &FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip())
                .with_ftq_entries(32),
            &trace,
        );
        assert!(
            large.fdip.issued >= small.fdip.issued,
            "large {} vs small {}",
            large.fdip.issued,
            small.fdip.issued
        );
    }
}
