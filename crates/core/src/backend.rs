//! A retire-side proxy for the out-of-order core behind the front-end.
//!
//! The 1999 evaluation measures *front-end delivery*: the back-end is a
//! fixed-width consumer. This module models it as a bounded buffer of
//! fetched-but-unretired instructions drained `retire_width` per cycle —
//! enough to convert delivery stalls into cycles (and therefore IPC and
//! speedup) without simulating execution.

/// The retire-side consumer.
///
/// # Examples
///
/// ```
/// use fdip::backend::Backend;
///
/// let mut be = Backend::new(4, 16);
/// be.deliver(10);
/// assert_eq!(be.cycle(), 4);
/// assert_eq!(be.cycle(), 4);
/// assert_eq!(be.cycle(), 2);
/// assert_eq!(be.retired(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct Backend {
    retire_width: u32,
    capacity: usize,
    buffered: usize,
    retired: u64,
}

impl Backend {
    /// Creates a back-end retiring `retire_width` instructions per cycle
    /// from a buffer of `capacity` instructions.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(retire_width: u32, capacity: usize) -> Self {
        assert!(retire_width > 0, "retire width must be non-zero");
        assert!(capacity > 0, "buffer capacity must be non-zero");
        Backend {
            retire_width,
            capacity,
            buffered: 0,
            retired: 0,
        }
    }

    /// Free space in the buffer — the fetch engine's delivery budget.
    pub fn room(&self) -> usize {
        self.capacity - self.buffered
    }

    /// Instructions waiting to retire.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Total instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Accepts `n` freshly fetched instructions.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`room`](Self::room) — the fetch engine must
    /// respect its budget.
    pub fn deliver(&mut self, n: u32) {
        assert!(n as usize <= self.room(), "delivery exceeds buffer room");
        self.buffered += n as usize;
    }

    /// Retires up to `retire_width` instructions; returns how many.
    pub fn cycle(&mut self) -> u32 {
        let n = (self.retire_width as usize).min(self.buffered) as u32;
        self.buffered -= n as usize;
        self.retired += u64::from(n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retires_at_width() {
        let mut be = Backend::new(2, 8);
        be.deliver(5);
        assert_eq!(be.cycle(), 2);
        assert_eq!(be.cycle(), 2);
        assert_eq!(be.cycle(), 1);
        assert_eq!(be.cycle(), 0);
        assert_eq!(be.retired(), 5);
    }

    #[test]
    fn room_shrinks_and_recovers() {
        let mut be = Backend::new(4, 8);
        be.deliver(8);
        assert_eq!(be.room(), 0);
        be.cycle();
        assert_eq!(be.room(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer room")]
    fn overdelivery_rejected() {
        let mut be = Backend::new(4, 4);
        be.deliver(5);
    }
}
