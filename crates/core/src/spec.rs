//! Parsing of the human-facing configuration mini-language.
//!
//! The CLI flags (`--prefetcher fdip --btb conventional:2048 …`) and the
//! `fdip-serve` JSON request bodies (`{"prefetcher": "fdip", "btb":
//! "conventional:2048", …}`) describe a [`FrontendConfig`] with the same
//! short string specs. This module is their single implementation; every
//! parser returns a descriptive `Err` instead of panicking, because the
//! server feeds it untrusted network input.
//!
//! # Examples
//!
//! ```
//! use fdip::spec;
//!
//! let btb = spec::parse_btb("conventional:2048").unwrap();
//! assert!(spec::parse_btb("conventional:1001").is_err()); // not a multiple of 8
//! assert!(spec::parse_predictor("oracle9000").is_err());
//! ```

use crate::{BtbVariant, CpfMode, FrontendConfig, PredictorKind, PrefetcherKind};

/// Parses a BTB spec: `conventional:N`, `bb:N`, `fdipx:N`, or `ideal`.
///
/// # Errors
///
/// Returns a description of the problem (unknown kind, malformed entry
/// count, or a count the organization cannot realize).
pub fn parse_btb(raw: &str) -> Result<BtbVariant, String> {
    if raw == "ideal" {
        return Ok(BtbVariant::Ideal);
    }
    let (kind, entries) = raw
        .split_once(':')
        .ok_or_else(|| format!("btb spec {raw:?} should be kind:entries or `ideal`"))?;
    let entries: usize = entries
        .parse()
        .map_err(|_| format!("bad entry count in {raw:?}"))?;
    match kind {
        "conventional" | "bb" => {
            // The 8-way organizations need a whole number of sets; the
            // constructors assert this, so check it here where an Err is
            // wanted instead of a panic.
            if entries == 0 || !entries.is_multiple_of(8) {
                return Err(format!(
                    "btb entry count {entries} must be a non-zero multiple of 8"
                ));
            }
            Ok(if kind == "conventional" {
                BtbVariant::conventional(entries)
            } else {
                BtbVariant::basic_block(entries)
            })
        }
        "fdipx" => {
            if entries == 0 {
                return Err("btb entry count must be non-zero".to_string());
            }
            Ok(BtbVariant::partitioned(entries))
        }
        _ => Err(format!(
            "unknown btb kind {kind:?} (conventional|bb|fdipx|ideal)"
        )),
    }
}

/// Parses a cache-probe-filtering mode: `none`, `enqueue`, `remove`, `both`.
///
/// # Errors
///
/// Returns a description listing the valid modes.
pub fn parse_cpf(raw: &str) -> Result<CpfMode, String> {
    match raw {
        "none" => Ok(CpfMode::None),
        "enqueue" => Ok(CpfMode::Enqueue),
        "remove" => Ok(CpfMode::Remove),
        "both" => Ok(CpfMode::Both),
        _ => Err(format!(
            "unknown cpf mode {raw:?} (none|enqueue|remove|both)"
        )),
    }
}

/// Parses a direction-predictor spec: `bimodal`, `gshare`, `hybrid`,
/// `local`, `tage`, or `perfect` (each at its reference sizing).
///
/// # Errors
///
/// Returns a description listing the valid predictors.
pub fn parse_predictor(raw: &str) -> Result<PredictorKind, String> {
    match raw {
        "bimodal" => Ok(PredictorKind::Bimodal { log2_entries: 15 }),
        "gshare" => Ok(PredictorKind::Gshare {
            log2_entries: 15,
            history_bits: 12,
        }),
        "hybrid" => Ok(PredictorKind::Hybrid {
            log2_entries: 15,
            history_bits: 12,
        }),
        "local" => Ok(PredictorKind::TwoLevelLocal {
            log2_branches: 13,
            history_bits: 12,
        }),
        "tage" => Ok(PredictorKind::Tage {
            log2_base: 14,
            log2_tagged: 12,
            tables: 5,
        }),
        "perfect" => Ok(PredictorKind::Perfect),
        _ => Err(format!(
            "unknown predictor {raw:?} (bimodal|gshare|hybrid|local|tage|perfect)"
        )),
    }
}

/// Parses a prefetcher spec (`none`, `nlp`, `stream`, `fdip`, `shotgun`,
/// `pif`); `cpf` configures the FDIP engine when one is selected.
///
/// # Errors
///
/// Returns a description listing the valid prefetchers.
pub fn parse_prefetcher(raw: &str, cpf: CpfMode) -> Result<PrefetcherKind, String> {
    match raw {
        "none" => Ok(PrefetcherKind::None),
        "nlp" => Ok(PrefetcherKind::NextLine),
        "stream" => Ok(PrefetcherKind::StreamBuffers(Default::default())),
        "fdip" => Ok(PrefetcherKind::fdip_with_cpf(cpf)),
        "shotgun" => Ok(PrefetcherKind::shotgun()),
        "pif" => Ok(PrefetcherKind::Pif(Default::default())),
        _ => Err(format!(
            "unknown prefetcher {raw:?} (none|nlp|stream|fdip|shotgun|pif)"
        )),
    }
}

/// Validates an L1-I capacity in KB and returns it. The two-way 64B-block
/// geometry needs a power-of-two set count, so the capacity must be a
/// power of two of at least 1 KB.
///
/// # Errors
///
/// Returns a description of the constraint.
pub fn check_l1_kb(l1_kb: u64) -> Result<u64, String> {
    if l1_kb == 0 || !l1_kb.is_power_of_two() {
        return Err(format!("l1 capacity {l1_kb}KB must be a power of two"));
    }
    Ok(l1_kb)
}

/// Applies `check_l1_kb` and installs the geometry into `config`.
///
/// # Errors
///
/// Propagates [`check_l1_kb`] errors.
pub fn set_l1_kb(config: &mut FrontendConfig, l1_kb: u64) -> Result<(), String> {
    check_l1_kb(l1_kb)?;
    config.mem.l1 = fdip_mem::CacheGeometry::from_capacity(l1_kb * 1024, 2, 64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_specs_parse() {
        assert!(matches!(parse_btb("ideal"), Ok(BtbVariant::Ideal)));
        assert!(matches!(
            parse_btb("conventional:2048"),
            Ok(BtbVariant::Conventional(_))
        ));
        assert!(matches!(
            parse_btb("bb:1024"),
            Ok(BtbVariant::BasicBlock(_))
        ));
        assert!(matches!(
            parse_btb("fdipx:1024"),
            Ok(BtbVariant::Partitioned(_))
        ));
        assert!(parse_btb("bogus:1").is_err());
        assert!(parse_btb("conventional").is_err());
        assert!(parse_btb("conventional:x").is_err());
    }

    #[test]
    fn off_size_btb_is_an_error_not_a_panic() {
        // These all hit constructor assertions if passed through unchecked.
        assert!(parse_btb("conventional:1001")
            .unwrap_err()
            .contains("multiple of 8"));
        assert!(parse_btb("bb:7").is_err());
        assert!(parse_btb("conventional:0").is_err());
        assert!(parse_btb("fdipx:0").is_err());
    }

    #[test]
    fn prefetcher_and_cpf_parse() {
        for raw in ["none", "nlp", "stream", "fdip", "shotgun", "pif"] {
            assert!(parse_prefetcher(raw, CpfMode::None).is_ok(), "{raw}");
        }
        assert!(parse_prefetcher("bogus", CpfMode::None).is_err());
        for raw in ["none", "enqueue", "remove", "both"] {
            assert!(parse_cpf(raw).is_ok(), "{raw}");
        }
        assert!(parse_cpf("bogus").is_err());
    }

    #[test]
    fn predictor_specs_parse() {
        for raw in ["bimodal", "gshare", "hybrid", "local", "tage", "perfect"] {
            assert!(parse_predictor(raw).is_ok(), "{raw}");
        }
        assert!(parse_predictor("oracle9000").is_err());
    }

    #[test]
    fn l1_capacity_is_validated_not_asserted() {
        let mut c = FrontendConfig::default();
        set_l1_kb(&mut c, 32).unwrap();
        assert_eq!(c.mem.l1.capacity_bytes(), 32 * 1024);
        // Non-power-of-two capacities would panic inside CacheGeometry.
        assert!(set_l1_kb(&mut c, 3).is_err());
        assert!(set_l1_kb(&mut c, 0).is_err());
    }
}
