//! The fetch engine: consumes the FTQ head, demand-accesses the L1-I, and
//! delivers instructions to the back-end buffer.

use fdip_mem::MemoryHierarchy;
use fdip_types::{Addr, BlockEnd, Cycle};

use crate::ftq::{Ftq, FtqEntry};
use crate::prefetch::{AccessResult, DemandSide};

/// Per-cycle result of the fetch engine. Entries that finished this cycle
/// land in the caller-owned scratch buffer passed to
/// [`FetchEngine::cycle`], so the per-cycle result itself is `Copy` and
/// the hot loop allocates nothing.
#[derive(Copy, Clone, Debug, Default)]
pub struct FetchCycle {
    /// Instructions delivered to the back-end this cycle.
    pub delivered: u32,
    /// The engine is waiting on an L1-I fill.
    pub waiting_on_icache: bool,
}

/// The fetch engine.
///
/// Each cycle it delivers up to `fetch_width` instructions from the FTQ
/// head: cache lines are validated through demand accesses (one tag port
/// each), misses stall the engine until the fill arrives, and delivery
/// stops at taken-branch block boundaries (one taken branch per cycle).
#[derive(Clone, Debug)]
pub struct FetchEngine {
    fetch_width: u32,
    block_bytes: u64,
    /// Instructions already delivered from the current head block.
    offset: u32,
    /// Cycle an outstanding L1-I fill arrives.
    wait_until: Option<Cycle>,
    /// Cache line validated present for the current fetch position.
    validated_line: Option<Addr>,
}

impl FetchEngine {
    /// Creates a fetch engine delivering `fetch_width` instructions per
    /// cycle over `block_bytes` cache lines.
    pub fn new(fetch_width: u32, block_bytes: u64) -> Self {
        assert!(fetch_width > 0);
        FetchEngine {
            fetch_width,
            block_bytes,
            offset: 0,
            wait_until: None,
            validated_line: None,
        }
    }

    /// The cycle an outstanding L1-I fill arrives, or `None` when the
    /// engine is not stalled on the cache. Used by the simulator's
    /// idle-cycle fast-forward to prove the engine is quiescent.
    pub fn waiting_until(&self) -> Option<Cycle> {
        self.wait_until
    }

    /// Runs one cycle. `room` bounds delivery (back-end buffer space).
    /// FTQ entries fully delivered this cycle are pushed into `finished`
    /// (cleared first) — redirect penalties start when a block finishes.
    /// The caller owns the buffer and reuses it across cycles, keeping
    /// this path allocation-free in steady state.
    pub fn cycle(
        &mut self,
        now: Cycle,
        ftq: &mut Ftq,
        mem: &mut MemoryHierarchy,
        demand: &mut DemandSide,
        room: usize,
        finished: &mut Vec<FtqEntry>,
    ) -> FetchCycle {
        finished.clear();
        let mut out = FetchCycle::default();
        if let Some(wait) = self.wait_until {
            if wait.is_after(now) {
                out.waiting_on_icache = true;
                return out;
            }
            self.wait_until = None;
        }
        let mut budget = self.fetch_width.min(room as u32);
        while budget > 0 {
            let Some(head) = ftq.head() else { break };
            let block = head.block;
            let addr = block.start.add_insts(self.offset as u64);
            let line = addr.block_base(self.block_bytes);
            if self.validated_line != Some(line) {
                // One L1-I access per line, through a tag port.
                if !mem.ports_mut().try_use() {
                    break;
                }
                match demand.access(now, addr, mem) {
                    AccessResult::Ready => {
                        self.validated_line = Some(line);
                    }
                    AccessResult::Wait(ready_at) => {
                        self.wait_until = Some(ready_at);
                        out.waiting_on_icache = true;
                        break;
                    }
                    AccessResult::Retry => break,
                }
            }
            // Deliver the run of instructions inside this line and block.
            let block_left = block.len - self.offset;
            let line_left = ((line + self.block_bytes) - addr) as u64 / 4;
            let n = budget.min(block_left).min(line_left as u32);
            debug_assert!(n > 0);
            self.offset += n;
            budget -= n;
            out.delivered += n;
            if self.offset == block.len {
                let entry = ftq.pop().expect("head observed above");
                self.offset = 0;
                let taken_boundary = matches!(
                    entry.block.end,
                    BlockEnd::TakenBranch { .. } | BlockEnd::TraceEnd
                );
                finished.push(entry);
                if taken_boundary {
                    // One control transfer per fetch cycle.
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrontendConfig;
    use crate::ftq::Redirect;
    use fdip_mem::MemoryHierarchy;
    use fdip_types::FetchBlock;

    fn setup() -> (Ftq, MemoryHierarchy, DemandSide, FetchEngine) {
        let config = FrontendConfig::default();
        let mem = MemoryHierarchy::new(config.mem);
        let ftq = Ftq::new(8);
        let fe = FetchEngine::new(config.fetch_width, config.mem.l1.block_bytes);
        (ftq, mem, DemandSide::None, fe)
    }

    fn run_until_delivered(
        ftq: &mut Ftq,
        mem: &mut MemoryHierarchy,
        demand: &mut DemandSide,
        fe: &mut FetchEngine,
        want: u32,
        max_cycles: u64,
    ) -> (u32, u64, Vec<FtqEntry>) {
        let mut delivered = 0;
        let mut finished = Vec::new();
        let mut scratch = Vec::new();
        for c in 0..max_cycles {
            let now = Cycle::new(c);
            mem.begin_cycle(now);
            let out = fe.cycle(now, ftq, mem, demand, 64, &mut scratch);
            delivered += out.delivered;
            finished.append(&mut scratch);
            if delivered >= want {
                return (delivered, c + 1, finished);
            }
        }
        (delivered, max_cycles, finished)
    }

    #[test]
    fn delivers_block_after_miss_latency() {
        let (mut ftq, mut mem, mut demand, mut fe) = setup();
        ftq.push(
            FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit),
            0,
            None,
        );
        let (delivered, cycles, finished) =
            run_until_delivered(&mut ftq, &mut mem, &mut demand, &mut fe, 8, 10_000);
        assert_eq!(delivered, 8);
        assert_eq!(finished.len(), 1);
        // Cold miss: ~132 cycles of fill + 2 cycles of delivery.
        assert!(cycles >= 132, "cycles {cycles}");
        assert!(cycles <= 140, "cycles {cycles}");
    }

    #[test]
    fn sequential_blocks_flow_at_fetch_width_once_warm() {
        let (mut ftq, mut mem, mut demand, mut fe) = setup();
        // Warm the line.
        ftq.push(
            FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit),
            0,
            None,
        );
        run_until_delivered(&mut ftq, &mut mem, &mut demand, &mut fe, 8, 10_000);
        // Same line again: full speed, 2 cycles for 8 instructions.
        ftq.push(
            FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit),
            0,
            None,
        );
        let (delivered, cycles, _) =
            run_until_delivered(&mut ftq, &mut mem, &mut demand, &mut fe, 8, 100);
        assert_eq!(delivered, 8);
        assert_eq!(cycles, 2);
    }

    #[test]
    fn taken_branch_ends_the_fetch_cycle() {
        let (mut ftq, mut mem, mut demand, mut fe) = setup();
        // Two tiny blocks, both in warm lines.
        ftq.push(
            FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit),
            0,
            None,
        );
        run_until_delivered(&mut ftq, &mut mem, &mut demand, &mut fe, 8, 10_000);
        ftq.push(
            FetchBlock::new(
                Addr::new(0x1000),
                2,
                BlockEnd::TakenBranch {
                    class: fdip_types::BranchClass::UncondDirect,
                    target: Addr::new(0x1008),
                },
            ),
            0,
            None,
        );
        ftq.push(
            FetchBlock::new(Addr::new(0x1008), 2, BlockEnd::SizeLimit),
            2,
            None,
        );
        let now = Cycle::new(10_000);
        mem.begin_cycle(now);
        let mut finished = Vec::new();
        let out = fe.cycle(now, &mut ftq, &mut mem, &mut demand, 64, &mut finished);
        // Width is 4 but the taken-branch boundary cuts the cycle at 2.
        assert_eq!(out.delivered, 2);
        assert_eq!(finished.len(), 1);
    }

    #[test]
    fn redirect_entries_surface_in_finished() {
        let (mut ftq, mut mem, mut demand, mut fe) = setup();
        ftq.push(
            FetchBlock::new(Addr::new(0x2000), 2, BlockEnd::NotTakenBranch),
            0,
            Some(Redirect::Execute),
        );
        let (_, _, finished) =
            run_until_delivered(&mut ftq, &mut mem, &mut demand, &mut fe, 2, 10_000);
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].redirect, Some(Redirect::Execute));
    }

    #[test]
    fn respects_backend_room() {
        let (mut ftq, mut mem, mut demand, mut fe) = setup();
        ftq.push(
            FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit),
            0,
            None,
        );
        // Warm up.
        run_until_delivered(&mut ftq, &mut mem, &mut demand, &mut fe, 8, 10_000);
        ftq.push(
            FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit),
            0,
            None,
        );
        let now = Cycle::new(20_000);
        mem.begin_cycle(now);
        let mut finished = Vec::new();
        let out = fe.cycle(now, &mut ftq, &mut mem, &mut demand, 3, &mut finished);
        assert_eq!(out.delivered, 3, "room-limited");
    }
}
