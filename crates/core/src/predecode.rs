//! Predecode-driven BTB fill (Boomerang-style, extension).
//!
//! Boomerang (Kumar et al., HPCA 2017) observed that a fetch-directed
//! front-end can fix its own BTB misses: every cache line it prefetches
//! *contains* the direct branches of that line, so a predecoder can
//! extract them and pre-install BTB entries before the fetch stream ever
//! reaches the branch. This module supplies the simulator's stand-in for
//! the predecoder: a [`CodeMap`] from cache line to the direct branches
//! whose target is encoded in the instruction bytes (conditionals, jumps,
//! calls — not indirect branches or returns, whose targets predecode
//! cannot know).
//!
//! The map is built from the trace's static image — legitimate, because
//! the information *is* physically present in the line being filled; the
//! simulator just has no instruction bytes to decode.

use std::collections::HashMap;

use fdip_types::{Addr, BranchClass, TraceInstr};

/// A static map from cache-line base address to the direct branches in
/// that line.
#[derive(Clone, Debug)]
pub struct CodeMap {
    lines: HashMap<u64, Vec<(Addr, BranchClass, Addr)>>,
    block_bytes: u64,
}

impl CodeMap {
    /// Builds the map from a trace's static image.
    ///
    /// Only *direct* branches are recorded (their targets are immediates a
    /// predecoder can extract); each static branch appears once.
    pub fn from_trace(trace: &[TraceInstr], block_bytes: u64) -> CodeMap {
        assert!(block_bytes.is_power_of_two());
        let mut lines: HashMap<u64, Vec<(Addr, BranchClass, Addr)>> = HashMap::new();
        let mut seen: HashMap<Addr, ()> = HashMap::new();
        for instr in trace {
            let Some(branch) = instr.branch else { continue };
            if !branch.class.is_direct() {
                continue;
            }
            if seen.insert(instr.pc, ()).is_some() {
                continue;
            }
            lines
                .entry(instr.pc.block_index(block_bytes))
                .or_default()
                .push((instr.pc, branch.class, branch.target));
        }
        CodeMap { lines, block_bytes }
    }

    /// The direct branches inside the line containing `addr`.
    pub fn branches_in(&self, addr: Addr) -> &[(Addr, BranchClass, Addr)] {
        self.lines
            .get(&addr.block_index(self.block_bytes))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of lines holding at least one direct branch.
    pub fn lines_with_branches(&self) -> usize {
        self.lines.len()
    }

    /// Total static direct branches mapped.
    pub fn static_branches(&self) -> usize {
        self.lines.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_trace::TraceBuilder;

    fn trace() -> Vec<TraceInstr> {
        let mut b = TraceBuilder::new("t", Addr::new(0x1000));
        b.plain(2);
        b.cond(true, Addr::new(0x1100)); // direct @0x1008, line 0x1000
        b.plain(1);
        b.jump(Addr::new(0x2000)); // direct @0x1104, line 0x1100
        b.plain(2);
        b.ijump(Addr::new(0x3000)); // indirect @0x2008: not predecodable
        b.plain(1);
        b.finish().into_instrs()
    }

    #[test]
    fn maps_direct_branches_per_line() {
        let map = CodeMap::from_trace(&trace(), 64);
        let line0 = map.branches_in(Addr::new(0x1000));
        assert_eq!(line0.len(), 1, "{line0:?}");
        assert_eq!(line0[0].0, Addr::new(0x1008));
        let line1 = map.branches_in(Addr::new(0x1100));
        assert_eq!(line1.len(), 1);
        assert_eq!(line1[0].2, Addr::new(0x2000), "target from immediate");
        assert!(
            map.branches_in(Addr::new(0x2000)).is_empty(),
            "only indirect there"
        );
        assert_eq!(map.static_branches(), 2);
    }

    #[test]
    fn indirect_branches_are_excluded() {
        let map = CodeMap::from_trace(&trace(), 64);
        for branches in [
            map.branches_in(Addr::new(0x1000)),
            map.branches_in(Addr::new(0x1100)),
        ] {
            assert!(branches.iter().all(|(_, class, _)| class.is_direct()));
        }
    }

    #[test]
    fn duplicates_collapse_to_one_static_entry() {
        let mut b = TraceBuilder::new("t", Addr::new(0x1000));
        for _ in 0..5 {
            b.plain(1);
            b.jump(Addr::new(0x1000));
        }
        b.plain(1);
        let map = CodeMap::from_trace(&b.finish().into_instrs(), 64);
        assert_eq!(map.static_branches(), 1);
        assert_eq!(map.lines_with_branches(), 1);
    }

    #[test]
    fn unmapped_lines_are_empty() {
        let map = CodeMap::from_trace(&trace(), 64);
        assert!(map.branches_in(Addr::new(0xdead_0000)).is_empty());
    }
}
