//! Shared helpers for the serve integration tests: a self-stopping test
//! server, minimal HTTP/1.1 client plumbing, and a guard that installs a
//! process-global harness fault plan for the duration of a test.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fdip_serve::metrics::Metrics;
use fdip_serve::{ServeConfig, Server, ShutdownHandle};

pub struct TestServer {
    pub addr: SocketAddr,
    pub handle: ShutdownHandle,
    pub metrics: Arc<Metrics>,
    pub thread: JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    pub fn start(mut config: ServeConfig) -> TestServer {
        config.addr = "127.0.0.1:0".to_string();
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().expect("local_addr");
        let handle = server.shutdown_handle();
        let metrics = server.metrics();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            metrics,
            thread,
        }
    }

    pub fn stop(self) -> Arc<Metrics> {
        self.handle.shutdown();
        let result = self.thread.join().expect("server thread panicked");
        assert!(result.is_ok(), "server run() errored: {result:?}");
        self.metrics
    }
}

/// Reads one HTTP/1.1 response (status line, headers, content-length body)
/// off `reader`.
pub fn read_response<R: Read>(reader: &mut BufReader<R>) -> (u16, Vec<(String, String)>, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').expect("header colon");
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().expect("content-length value");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

/// One-shot request on a fresh connection (Connection: close).
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _headers, body) = request_with_headers(addr, method, path, &[], body);
    (status, body)
}

pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n");
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Serializes tests that install a global harness fault plan (the plan is
/// process-wide; concurrent setters would clobber each other).
static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Installs `plan` on the process-global harness for the guard's
/// lifetime. Plans are pinned to specific workload seeds, so tests not
/// named in the plan are unaffected even while it is installed.
pub struct FaultGuard {
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl FaultGuard {
    pub fn install(plan: &str) -> FaultGuard {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fdip_sim::harness::Harness::global()
            .set_fault_plan(Some(fdip_sim::fault::FaultPlan::parse(plan).expect("plan")));
        FaultGuard { _guard: guard }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fdip_sim::harness::Harness::global().set_fault_plan(None);
    }
}

/// A `/v1/run` body for the microloop profile at `seed` (distinct seeds
/// are distinct cache identities, so each is a fresh simulation).
pub fn run_body(seed: u64) -> String {
    format!(r#"{{"workload": {{"profile": "microloop", "seed": {seed}}}, "trace_len": 1500}}"#)
}

/// Fires a `/v1/run` for `seed` on a background thread and returns the
/// join handle (status, body).
pub fn spawn_run(addr: SocketAddr, seed: u64) -> JoinHandle<(u16, String)> {
    std::thread::spawn(move || request(addr, "POST", "/v1/run", &run_body(seed)))
}
