//! End-to-end tests over real TCP: backpressure shedding, queued-request
//! deadlines, graceful drain, and metrics reconciliation.
//!
//! Each test binds its own server on port 0 and runs it on a background
//! thread; the process-global harness is shared across tests, which is
//! exactly the production arrangement.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fdip_serve::metrics::Metrics;
use fdip_serve::{ServeConfig, Server, ShutdownHandle};

struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    metrics: Arc<Metrics>,
    thread: JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(mut config: ServeConfig) -> TestServer {
        config.addr = "127.0.0.1:0".to_string();
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().expect("local_addr");
        let handle = server.shutdown_handle();
        let metrics = server.metrics();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            metrics,
            thread,
        }
    }

    fn stop(self) -> Arc<Metrics> {
        self.handle.shutdown();
        let result = self.thread.join().expect("server thread panicked");
        assert!(result.is_ok(), "server run() errored: {result:?}");
        self.metrics
    }
}

/// Reads one HTTP/1.1 response (status line, headers, content-length body)
/// off `reader`.
fn read_response<R: Read>(reader: &mut BufReader<R>) -> (u16, Vec<(String, String)>, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').expect("header colon");
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().expect("content-length value");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

/// One-shot request on a fresh connection (Connection: close).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    request_with_headers(addr, method, path, &[], body)
}

fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n");
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, _headers, body) = read_response(&mut reader);
    (status, body)
}

/// Opens a keep-alive connection, sends one request, and returns the
/// stream once the response has been read — the serving worker is now
/// parked on this connection waiting for the next request.
fn hold_worker(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"GET /healthz HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n")
        .expect("write");
    let mut reader = BufReader::new(stream);
    let (status, _h, _b) = read_response(&mut reader);
    assert_eq!(status, 200);
    reader.into_inner()
}

#[test]
fn healthz_run_and_metrics_over_tcp() {
    let t = TestServer::start(ServeConfig {
        threads: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let (status, body) = request(t.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    let run_body = r#"{"workload": {"profile": "microloop", "seed": 31}, "trace_len": 1500}"#;
    let (status, body) = request(t.addr, "POST", "/v1/run", run_body);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ipc\""), "{body}");
    assert!(body.contains("\"schema_version\""), "{body}");

    let (status, body) = request(t.addr, "GET", "/v1/experiments/not-an-id", "");
    assert_eq!(status, 404);
    assert!(body.contains("unknown experiment"), "{body}");

    // The scrape itself is recorded only after it renders, so the text
    // reflects the 3 responses observed so far.
    let (status, text) = request(t.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("fdip_serve_requests_total{status=\"200\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("fdip_serve_requests_total{status=\"404\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("fdip_serve_harness_cells_simulated_total"),
        "{text}"
    );
    assert!(
        text.contains("fdip_serve_request_seconds_bucket{le=\"+Inf\"} 3"),
        "{text}"
    );

    let metrics = t.stop();

    // Client-observed responses reconcile with the server's counters:
    // 4 requests made, all completed, none shed.
    assert_eq!(metrics.responses_total(), 4);
    assert_eq!(metrics.responses_for(200), 3);
    assert_eq!(metrics.responses_for(404), 1);
    assert_eq!(
        metrics
            .shed_total
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    // Occupy the only worker with a parked keep-alive connection, then
    // fill the queue's single slot.
    let held = hold_worker(t.addr);
    let queued = TcpStream::connect(t.addr).expect("connect queued");
    std::thread::sleep(Duration::from_millis(300)); // let the accept loop enqueue it

    // The next connection finds the queue full and is shed inline by the
    // accept loop — before any request bytes are even sent.
    let shed = TcpStream::connect(t.addr).expect("connect shed");
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(shed);
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 503, "{body}");
    assert!(
        headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
        "{headers:?}"
    );
    assert!(body.contains("capacity"), "{body}");

    drop(held);
    drop(queued);
    let metrics = t.stop();

    let shed_count = metrics
        .shed_total
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(shed_count, 1);
    assert_eq!(metrics.responses_for(503), 1);
}

#[test]
fn queued_request_past_its_deadline_gets_408() {
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let held = hold_worker(t.addr);

    // This request waits in the queue behind the held connection; its
    // 1ms client deadline expires long before a worker reaches it.
    let queued = TcpStream::connect(t.addr).expect("connect");
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut w = queued.try_clone().unwrap();
    w.write_all(
        b"GET /healthz HTTP/1.1\r\nhost: test\r\nx-fdip-deadline-ms: 1\r\ncontent-length: 0\r\n\r\n",
    )
    .expect("write");
    std::thread::sleep(Duration::from_millis(200));

    // Release the worker; it pops the queued connection and rejects the
    // expired request without doing the work.
    drop(held);
    let mut reader = BufReader::new(queued);
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 408, "{body}");
    assert!(
        headers.iter().any(|(n, _)| n == "retry-after"),
        "{headers:?}"
    );

    // Close the keep-alive connection (both cloned halves) so the worker
    // can exit promptly instead of waiting out its read timeout.
    drop(reader);
    drop(w);
    let metrics = t.stop();
    assert!(
        metrics
            .deadline_expired_total
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn shutdown_drains_queued_work_before_returning() {
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let held = hold_worker(t.addr);

    // Queue a connection with a request already written.
    let queued = TcpStream::connect(t.addr).expect("connect");
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut w = queued.try_clone().unwrap();
    w.write_all(b"GET /healthz HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n")
        .expect("write");
    std::thread::sleep(Duration::from_millis(300)); // let the accept loop enqueue it

    // Shutdown stops the accept loop but queued work still gets served.
    t.handle.shutdown();
    std::thread::sleep(Duration::from_millis(100));
    drop(held);

    let mut reader = BufReader::new(queued);
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    // Drain closes connections so workers can exit.
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"),
        "{headers:?}"
    );

    let result = t.thread.join().expect("server thread panicked");
    assert!(result.is_ok(), "{result:?}");
}
