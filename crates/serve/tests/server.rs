//! End-to-end tests over real TCP: backpressure shedding, queued-request
//! deadlines, graceful drain, and metrics reconciliation.
//!
//! Each test binds its own server on port 0 and runs it on a background
//! thread; the process-global harness is shared across tests, which is
//! exactly the production arrangement.

mod common;

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use common::{
    read_response, request, request_with_headers, run_body, spawn_run, FaultGuard, TestServer,
};
use fdip_serve::ServeConfig;

#[test]
fn healthz_run_and_metrics_over_tcp() {
    let t = TestServer::start(ServeConfig {
        threads: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let (status, body) = request(t.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    let run_body = r#"{"workload": {"profile": "microloop", "seed": 31}, "trace_len": 1500}"#;
    let (status, body) = request(t.addr, "POST", "/v1/run", run_body);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ipc\""), "{body}");
    assert!(body.contains("\"schema_version\""), "{body}");

    let (status, body) = request(t.addr, "GET", "/v1/experiments/not-an-id", "");
    assert_eq!(status, 404);
    assert!(body.contains("unknown experiment"), "{body}");

    // The scrape itself is recorded only after it renders, so the text
    // reflects the 3 responses observed so far.
    let (status, text) = request(t.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("fdip_serve_requests_total{status=\"200\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("fdip_serve_requests_total{status=\"404\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("fdip_serve_harness_cells_simulated_total"),
        "{text}"
    );
    assert!(
        text.contains("fdip_serve_request_seconds_bucket{le=\"+Inf\"} 3"),
        "{text}"
    );

    let metrics = t.stop();

    // Client-observed responses reconcile with the server's counters:
    // 4 requests made, all completed, none shed.
    assert_eq!(metrics.responses_total(), 4);
    assert_eq!(metrics.responses_for(200), 3);
    assert_eq!(metrics.responses_for(404), 1);
    assert_eq!(
        metrics
            .shed_total
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // Seed 900 holds the single compute seat for 1.5s; seed 901 sits in
    // the queue's one slot behind it.
    let _fault = FaultGuard::install("slow@microloop~s900/run:1500");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let inflight = spawn_run(t.addr, 900);
    std::thread::sleep(Duration::from_millis(300)); // dispatched to the worker
    let queued = spawn_run(t.addr, 901);
    std::thread::sleep(Duration::from_millis(300)); // admitted, queue now full

    // A third distinct simulation finds the queue full and is shed at
    // admission — the event loop answers 503 without touching a worker.
    let (status, headers, body) =
        request_with_headers(t.addr, "POST", "/v1/run", &[], &run_body(902));
    assert_eq!(status, 503, "{body}");
    assert!(
        headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
        "{headers:?}"
    );
    assert!(body.contains("capacity"), "{body}");

    // Shedding one request never cancels admitted work.
    let (status, body) = inflight.join().expect("inflight thread");
    assert_eq!(status, 200, "{body}");
    let (status, body) = queued.join().expect("queued thread");
    assert_eq!(status, 200, "{body}");

    let metrics = t.stop();
    assert_eq!(
        metrics
            .shed_total
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(metrics.responses_for(503), 1);
    assert_eq!(metrics.responses_for(200), 2);
}

#[test]
fn queued_request_past_its_deadline_gets_408() {
    let _fault = FaultGuard::install("slow@microloop~s910/run:1200");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let inflight = spawn_run(t.addr, 910);
    std::thread::sleep(Duration::from_millis(300)); // occupies the only seat

    // This simulation waits in the queue behind the slow one; its 100ms
    // client deadline expires long before the seat frees up, and the
    // sweep rejects it from the queue without doing the work.
    let started = std::time::Instant::now();
    let (status, headers, body) = request_with_headers(
        t.addr,
        "POST",
        "/v1/run",
        &[("x-fdip-deadline-ms", "100")],
        &run_body(911),
    );
    assert_eq!(status, 408, "{body}");
    assert!(
        headers.iter().any(|(n, _)| n == "retry-after"),
        "{headers:?}"
    );
    // The rejection must not have waited for the worker seat (the slow
    // job still has ~600ms to run when the deadline hits).
    assert!(
        started.elapsed() < Duration::from_millis(800),
        "expiry waited for the worker: {:?}",
        started.elapsed()
    );

    let (status, body) = inflight.join().expect("inflight thread");
    assert_eq!(status, 200, "{body}");

    let metrics = t.stop();
    assert!(
        metrics
            .deadline_expired_total
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    assert_eq!(metrics.responses_for(408), 1);
}

#[test]
fn shutdown_drains_queued_work_before_returning() {
    let _fault = FaultGuard::install("slow@microloop~s920/run:800");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let inflight = spawn_run(t.addr, 920);
    std::thread::sleep(Duration::from_millis(250)); // occupies the only seat

    // Queue a second simulation on a keep-alive connection (no
    // `connection: close` from the client side).
    let queued = TcpStream::connect(t.addr).expect("connect");
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = run_body(921);
    let mut w = queued.try_clone().unwrap();
    w.write_all(
        format!(
            "POST /v1/run HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("write");
    std::thread::sleep(Duration::from_millis(150)); // parsed and admitted

    // Shutdown stops accepting, but both the in-flight and the queued
    // simulation still complete before run() returns.
    t.handle.shutdown();

    let (status, body) = inflight.join().expect("inflight thread");
    assert_eq!(status, 200, "{body}");

    let mut reader = BufReader::new(queued);
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ipc\""), "{body}");
    // Drain forces connection close even on keep-alive clients so the
    // loop can exit.
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"),
        "{headers:?}"
    );

    let result = t.thread.join().expect("server thread panicked");
    assert!(result.is_ok(), "{result:?}");
    assert_eq!(t.metrics.responses_for(200), 2);
}
