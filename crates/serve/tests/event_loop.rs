//! Event-loop behaviour over real TCP: nonblocking shedding under
//! slow-loris clients, queue wait visible in reported latency, strict
//! deadline-header validation, request coalescing, per-tenant rate
//! limiting, and keep-alive pipelining.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use common::{
    read_response, request, request_with_headers, run_body, spawn_run, FaultGuard, TestServer,
};
use fdip_serve::ServeConfig;

/// Regression for the blocking-shed bug: the old accept loop wrote 503
/// responses synchronously with a 500ms timeout, so clients that never
/// read — or never finished their request — stalled everyone behind
/// them. The event loop must keep answering while six unread shed
/// responses and three half-written requests are outstanding.
#[test]
fn shedding_never_reading_clients_does_not_block_other_requests() {
    let _fault = FaultGuard::install("slow@microloop~s930/run:1500");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let inflight = spawn_run(t.addr, 930);
    std::thread::sleep(Duration::from_millis(300)); // holds the only seat
    let queued = spawn_run(t.addr, 931);
    std::thread::sleep(Duration::from_millis(200)); // queue now full

    // Six clients whose requests will be shed — none of them ever reads
    // its 503.
    let mut unread = Vec::new();
    for seed in 932..938u64 {
        let mut s = TcpStream::connect(t.addr).expect("connect shed");
        let body = run_body(seed);
        s.write_all(
            format!(
                "POST /v1/run HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write shed request");
        unread.push(s);
    }

    // Three slow-loris clients that send half a request line and stop.
    let mut loris = Vec::new();
    for _ in 0..3 {
        let mut s = TcpStream::connect(t.addr).expect("connect loris");
        s.write_all(b"POST /v1/run HTT").expect("write partial");
        loris.push(s);
    }
    std::thread::sleep(Duration::from_millis(200));

    // Despite all of the above, a fresh client gets served immediately.
    let started = Instant::now();
    let (status, body) = request(t.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "healthz stalled behind shed writes: {:?}",
        started.elapsed()
    );
    let (status, text) = request(t.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("fdip_serve_open_connections"), "{text}");

    let (status, body) = inflight.join().expect("inflight thread");
    assert_eq!(status, 200, "{body}");
    let (status, body) = queued.join().expect("queued thread");
    assert_eq!(status, 200, "{body}");

    drop(unread);
    drop(loris);
    let metrics = t.stop();
    assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 6);
    assert_eq!(metrics.responses_for(503), 6);
}

/// Regression for the latency bugfix: the clock used to start when the
/// request was parsed by a worker, so time spent waiting in the queue
/// was invisible. It now starts at accept, so a request that waits
/// ~450ms for the seat reports ~450ms more than its compute time.
#[test]
fn reported_latency_includes_queue_wait() {
    let _fault = FaultGuard::install("slow@microloop~s940/run:700");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let inflight = spawn_run(t.addr, 940);
    std::thread::sleep(Duration::from_millis(250)); // holds the only seat

    // This fast simulation waits ~450ms in the queue before running.
    let started = Instant::now();
    let (status, body) = request(t.addr, "POST", "/v1/run", &run_body(941));
    assert_eq!(status, 200, "{body}");
    let observed = started.elapsed();
    assert!(
        observed >= Duration::from_millis(300),
        "expected a queue wait, got {observed:?}"
    );

    let (status, body) = inflight.join().expect("inflight thread");
    assert_eq!(status, 200, "{body}");

    let metrics = t.stop();
    assert_eq!(metrics.latency_count(), 2);
    // Slow job ≈700ms + queued job ≈450ms wait. If queue wait were
    // excluded (the old bug) the sum would be ≈700ms + a few ms of
    // compute, well under this floor.
    assert!(
        metrics.latency_sum() >= Duration::from_millis(1000),
        "histogram sum omits queue wait: {:?}",
        metrics.latency_sum()
    );
}

/// A malformed `x-fdip-deadline-ms` used to be silently ignored (the
/// request ran with no deadline at all). It is now a structured 400.
#[test]
fn malformed_deadline_header_is_rejected_with_400() {
    let t = TestServer::start(ServeConfig {
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let malformed = ["500ms", "-1", "0", "1e3", "", "18446744073709551616"];
    for raw in malformed {
        let (status, _headers, body) = request_with_headers(
            t.addr,
            "POST",
            "/v1/run",
            &[("x-fdip-deadline-ms", raw)],
            &run_body(950),
        );
        assert_eq!(status, 400, "value {raw:?}: {body}");
        assert!(body.contains("x-fdip-deadline-ms"), "value {raw:?}: {body}");
    }

    // A valid value still works, as does an invalid tenant check.
    let (status, _headers, body) = request_with_headers(
        t.addr,
        "POST",
        "/v1/run",
        &[("x-fdip-deadline-ms", "5000")],
        &run_body(951),
    );
    assert_eq!(status, 200, "{body}");
    let (status, _headers, body) = request_with_headers(
        t.addr,
        "POST",
        "/v1/run",
        &[("x-fdip-tenant", "has space")],
        &run_body(952),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("x-fdip-tenant"), "{body}");

    let metrics = t.stop();
    assert_eq!(metrics.responses_for(400), malformed.len() as u64 + 1);
}

/// Concurrent byte-identical simulations share one compute: followers
/// get the leader's response without holding a queue slot, and the
/// coalesced counter says how many rode along.
#[test]
fn identical_concurrent_runs_coalesce_into_one_simulation() {
    let _fault = FaultGuard::install("slow@microloop~s960/run:800");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let leader = spawn_run(t.addr, 960);
    std::thread::sleep(Duration::from_millis(250)); // in flight
    let follower_a = spawn_run(t.addr, 960);
    let follower_b = spawn_run(t.addr, 960);
    std::thread::sleep(Duration::from_millis(200));

    // The loop answers GETs inline, so we can observe the coalescing
    // while the shared simulation is still running.
    let (status, text) = request(t.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("fdip_serve_coalesced_total 2"), "{text}");

    let (status, leader_body) = leader.join().expect("leader thread");
    assert_eq!(status, 200, "{leader_body}");
    let (status, body_a) = follower_a.join().expect("follower a");
    assert_eq!(status, 200, "{body_a}");
    let (status, body_b) = follower_b.join().expect("follower b");
    assert_eq!(status, 200, "{body_b}");
    // One simulation, one answer, fanned out byte-identically.
    assert_eq!(leader_body, body_a);
    assert_eq!(leader_body, body_b);

    let metrics = t.stop();
    assert_eq!(metrics.coalesced_total.load(Ordering::Relaxed), 2);
    assert_eq!(metrics.responses_for(200), 4); // 3 runs + 1 metrics scrape
}

/// With `--tenant-rps 1` each tenant gets one simulation per second;
/// the second request inside the window is answered 429 without
/// touching the queue, and other tenants are unaffected.
#[test]
fn tenant_rate_limit_answers_429_per_tenant() {
    let t = TestServer::start(ServeConfig {
        threads: 2,
        tenant_rps: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let alice = [("x-fdip-tenant", "alice")];
    let (status, _h, body) =
        request_with_headers(t.addr, "POST", "/v1/run", &alice, &run_body(970));
    assert_eq!(status, 200, "{body}");

    let (status, headers, body) =
        request_with_headers(t.addr, "POST", "/v1/run", &alice, &run_body(971));
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("rate limit"), "{body}");
    assert!(
        headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
        "{headers:?}"
    );

    // Other tenants (and the default bucket) have their own budgets.
    let (status, _h, body) = request_with_headers(
        t.addr,
        "POST",
        "/v1/run",
        &[("x-fdip-tenant", "bob")],
        &run_body(972),
    );
    assert_eq!(status, 200, "{body}");
    let (status, body) = request(t.addr, "POST", "/v1/run", &run_body(973));
    assert_eq!(status, 200, "{body}");

    let (status, text) = request(t.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("fdip_serve_rate_limited_total 1"), "{text}");

    let metrics = t.stop();
    assert_eq!(metrics.rate_limited_total.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.responses_for(429), 1);
}

/// Keep-alive pipelining: two requests written back-to-back on one
/// connection get two in-order responses, and the connection stays open
/// until the client asks to close it.
#[test]
fn keep_alive_pipelined_requests_share_a_connection() {
    let t = TestServer::start(ServeConfig {
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let stream = TcpStream::connect(t.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(
        b"GET /healthz HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n\
          GET /healthz HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n",
    )
    .expect("write pipelined");

    let mut reader = BufReader::new(stream);
    for _ in 0..2 {
        let (status, headers, body) = read_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(
            !headers
                .iter()
                .any(|(n, v)| n == "connection" && v == "close"),
            "{headers:?}"
        );
    }

    // Third request asks to close; the server honours it.
    w.write_all(
        b"GET /healthz HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
    )
    .expect("write final");
    let (status, headers, _body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"),
        "{headers:?}"
    );
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0, "{rest:?}");

    let metrics = t.stop();
    assert_eq!(metrics.responses_for(200), 3);
}

/// A coalesced follower keeps its *own* deadline. The leader runs a slow
/// simulation under the 30s server default; a follower with a 300ms
/// `x-fdip-deadline-ms` coalesces onto it and must get its 408 while the
/// leader is still computing — not wait out the leader's lazier budget.
#[test]
fn coalesced_follower_expires_on_its_own_deadline() {
    let _fault = FaultGuard::install("slow@microloop~s9400/run:1500");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        queue_depth: 4,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let leader = spawn_run(t.addr, 9400);
    std::thread::sleep(Duration::from_millis(300)); // leader in flight

    let started = Instant::now();
    let (status, _headers, body) = request_with_headers(
        t.addr,
        "POST",
        "/v1/run",
        &[("x-fdip-deadline-ms", "300")],
        &run_body(9400),
    );
    let waited = started.elapsed();
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("deadline expired"), "{body}");
    // Answered on its own clock (300ms + sweep granularity), well before
    // the shared simulation finishes at ~1.2s from now.
    assert!(waited < Duration::from_millis(1100), "follower waited {waited:?}");

    let (status, leader_body) = leader.join().expect("leader thread");
    assert_eq!(status, 200, "{leader_body}");

    let metrics = t.stop();
    assert_eq!(metrics.coalesced_total.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.deadline_expired_total.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.responses_for(408), 1);
    assert_eq!(metrics.responses_for(200), 1);
}

/// Forces an RST on close by enabling SO_LINGER with a zero timeout.
#[cfg(target_os = "linux")]
fn set_linger_zero(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    #[repr(C)]
    struct Linger {
        onoff: i32,
        linger: i32,
    }
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const Linger, len: u32) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let lin = Linger { onoff: 1, linger: 0 };
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            &lin,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
}

/// A client that RSTs its socket while its request is in flight must be
/// reaped promptly — a `Waiting` connection has no I/O interest, so the
/// level-triggered HUP would otherwise wake the loop continuously at
/// 100% CPU until the simulation finishes (the review's busy-spin bug).
#[cfg(target_os = "linux")]
#[test]
fn rst_while_waiting_is_reaped_not_spun() {
    let _fault = FaultGuard::install("slow@microloop~s9500/run:1200");
    let t = TestServer::start(ServeConfig {
        threads: 1,
        timeout_ms: 30_000,
        ..ServeConfig::default()
    });

    let mut s = TcpStream::connect(t.addr).expect("connect");
    let body = run_body(9500);
    s.write_all(
        format!(
            "POST /v1/run HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("write request");
    std::thread::sleep(Duration::from_millis(300)); // dispatched, Waiting
    assert_eq!(t.metrics.open_connections.load(Ordering::Relaxed), 1);
    set_linger_zero(&s);
    drop(s); // RST while the simulation still has ~900ms to run

    // The loop notices the reset and reaps the connection long before
    // the job completes, instead of spinning on the pending HUP.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(t.metrics.open_connections.load(Ordering::Relaxed), 0);

    // The server is still healthy; the orphaned job finishes harmlessly.
    let (status, body) = request(t.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    t.stop();
}

/// `GET /v1/experiments` does blocking disk reads, so it rides the
/// worker pool and is subject to admission like the sim routes — here
/// the per-tenant rate limit — while `/healthz` stays on the loop
/// thread, uncounted and unlimited.
#[test]
fn experiment_reads_ride_the_worker_pool() {
    let dir = std::env::temp_dir().join("fdip-serve-test-pooled-experiments");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    let t = TestServer::start(ServeConfig {
        threads: 2,
        tenant_rps: 1,
        timeout_ms: 30_000,
        results_dir: dir,
        ..ServeConfig::default()
    });

    // First read takes the tenant's only token and is answered by the
    // pooled handler (404: known id, no persisted document).
    let (status, body) = request(t.addr, "GET", "/v1/experiments/e01", "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no persisted results"), "{body}");

    // Second read inside the window hits admission: 429, proving the
    // route goes through the scheduler rather than the loop thread.
    let (status, body) = request(t.addr, "GET", "/v1/experiments/e01", "");
    assert_eq!(status, 429, "{body}");

    // Loop-thread routes are not admitted and cannot be rate limited.
    let (status, _body) = request(t.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let metrics = t.stop();
    assert_eq!(metrics.rate_limited_total.load(Ordering::Relaxed), 1);
}
