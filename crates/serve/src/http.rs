//! A deliberately small HTTP/1.1 codec: enough protocol to serve JSON
//! endpoints from `std::net`, hardened for the trust boundary.
//!
//! Two entry points share one head parser:
//!
//! * [`parse_request`] reads one request from any [`BufRead`] (blocking
//!   callers, unit tests);
//! * [`try_parse_request`] parses from an in-memory byte buffer and
//!   reports "need more bytes" instead of blocking — the event loop's
//!   interface, where a connection's accumulated reads are re-parsed on
//!   each readiness notification.
//!
//! Keep-alive and pipelined requests fall out naturally: the caller just
//! parses again from the same stream (or from the leftover bytes after
//! the consumed length). Every dimension an attacker controls is
//! bounded — request-line and header-line length, header count, total
//! head size, and body size — and violations map to the appropriate 4xx
//! status instead of unbounded allocation.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line or single header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Largest accepted request head (request line + all headers), in bytes.
/// This bounds how much a connection may buffer before the head
/// terminator arrives; the per-line and per-count limits are enforced
/// again once the head parses.
pub const MAX_HEAD_BYTES: usize = MAX_LINE_BYTES * (MAX_HEADERS + 2);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when there is no `content-length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed cleanly before a request line started
    /// (normal end of a keep-alive connection) or timed out while idle.
    Idle,
    /// Malformed request syntax; respond 400.
    Bad(&'static str),
    /// A line or the header block exceeded its limit; respond 431.
    HeadersTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`]; respond 413.
    BodyTooLarge,
    /// The underlying transport failed mid-request.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Idle => write!(f, "connection idle or closed"),
            HttpError::Bad(what) => write!(f, "bad request: {what}"),
            HttpError::HeadersTooLarge => write!(f, "request header section too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one line (terminated by `\n`) of at most `MAX_LINE_BYTES`.
///
/// `started` reports whether any bytes of the line were consumed before an
/// error — the caller uses it to tell an idle keep-alive connection from a
/// truncated request.
fn read_line<R: BufRead>(r: &mut R, started: &mut bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && !*started {
                    return Err(HttpError::Idle);
                }
                return Err(HttpError::Bad("unexpected end of request"));
            }
            Ok(_) => {
                *started = true;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::Bad("non-utf8 request header"));
                }
                if line.len() >= MAX_LINE_BYTES {
                    return Err(HttpError::HeadersTooLarge);
                }
                line.push(byte[0]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && line.is_empty()
                    && !*started =>
            {
                return Err(HttpError::Idle);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A parsed request head: everything before the body.
struct Head {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// Parses one request from `r`.
///
/// # Errors
///
/// [`HttpError::Idle`] when the connection closed or timed out before a
/// new request began; other variants describe malformed or oversized
/// requests (see each variant for the status to respond with).
pub fn parse_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let head = parse_head(r)?;
    let mut body = vec![0u8; head.content_length];
    if head.content_length > 0 {
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Bad("body shorter than content-length")
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    Ok(Request {
        method: head.method,
        path: head.path,
        headers: head.headers,
        body,
    })
}

/// Parses the request line and header block (through the blank line) and
/// validates `content-length` / `transfer-encoding`, without touching the
/// body.
fn parse_head<R: BufRead>(r: &mut R) -> Result<Head, HttpError> {
    let mut started = false;
    let request_line = read_line(r, &mut started)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad("unsupported http version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut started)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Bad("header line without a colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .count()
    {
        0 => 0usize,
        1 => {
            let raw = headers
                .iter()
                .find(|(n, _)| n == "content-length")
                .map(|(_, v)| v.as_str())
                .unwrap_or("");
            raw.parse::<usize>()
                .map_err(|_| HttpError::Bad("invalid content-length"))?
        }
        _ => return Err(HttpError::Bad("duplicate content-length")),
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        // Chunked bodies are not needed by any endpoint; rejecting them
        // outright avoids request-smuggling ambiguity with content-length.
        return Err(HttpError::Bad("transfer-encoding not supported"));
    }

    let path = target.split(['?', '#']).next().unwrap_or("").to_string();
    Ok(Head {
        method: method.to_string(),
        path,
        headers,
        content_length,
    })
}

/// Index one past the `\r\n\r\n` (or bare `\n\n`) head terminator, if the
/// buffer holds a complete head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Attempts to parse one complete request from the front of `buf` without
/// blocking.
///
/// Returns `Ok(Some((request, consumed)))` when a full request (head and
/// body) is present — the caller should drain `consumed` bytes and may
/// find a pipelined successor behind them. Returns `Ok(None)` when the
/// bytes so far are a valid *prefix* of a request and more input is
/// needed.
///
/// # Errors
///
/// The same variants as [`parse_request`], raised as soon as the prefix
/// is provably invalid or over a limit — a flooding client is rejected
/// without waiting for its terminator.
pub fn try_parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        return Ok(None);
    };
    let head = parse_head(&mut &buf[..head_len])?;
    let total = head_len.saturating_add(head.content_length);
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )))
}

/// One response under construction. `Clone` supports coalesced fan-out:
/// one computed response is delivered to every attached requester.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("content-type", "application/json".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A response with a plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("content-type", "text/plain; version=0.0.4".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error document: `{"error": <message>}`.
    pub fn error(status: u16, message: &str) -> Response {
        let doc = fdip_types::Json::obj([("error", fdip_types::Json::str(message))]);
        Response::json(status, doc.to_string())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response into a byte vector (the event loop's
    /// write-buffer form of [`write_to`](Response::write_to)).
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        self.write_to(&mut buf, close)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Serializes the response, including `Connection: close` when
    /// `close` is set.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        if close {
            write!(w, "connection: close\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The status code a parse failure maps to, or `None` when the connection
/// should just be dropped (idle close, transport error).
pub fn error_status(err: &HttpError) -> Option<u16> {
    match err {
        HttpError::Idle | HttpError::Io(_) => None,
        HttpError::Bad(_) => Some(400),
        HttpError::HeadersTooLarge => Some(431),
        HttpError::BodyTooLarge => Some(413),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Request, HttpError> {
        parse_request(&mut s.as_bytes())
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_str("GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse_str("POST /v1/run HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"\"}extra").unwrap();
        assert_eq!(req.body, b"{\"\"}");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let stream = "POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi\
                      GET /b HTTP/1.1\r\n\r\n\
                      GET /c HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut r = stream.as_bytes();
        let a = parse_request(&mut r).unwrap();
        assert_eq!((a.path.as_str(), a.body.as_slice()), ("/a", &b"hi"[..]));
        let b = parse_request(&mut r).unwrap();
        assert_eq!(b.path, "/b");
        let c = parse_request(&mut r).unwrap();
        assert_eq!(c.path, "/c");
        assert!(c.wants_close());
        // Stream exhausted: the next parse reports an idle close.
        assert!(matches!(parse_request(&mut r), Err(HttpError::Idle)));
    }

    #[test]
    fn oversized_header_line_is_431() {
        let huge = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "a".repeat(MAX_LINE_BYTES)
        );
        let err = parse_str(&huge).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge));
        assert_eq!(error_status(&err), Some(431));
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut s = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            s.push_str(&format!("x-h{i}: v\r\n"));
        }
        s.push_str("\r\n");
        assert!(matches!(parse_str(&s), Err(HttpError::HeadersTooLarge)));
    }

    #[test]
    fn bad_content_length_is_400() {
        for bad in [
            "POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\nxxxxx",
        ] {
            let err = parse_str(bad).unwrap_err();
            assert!(matches!(err, HttpError::Bad(_)), "{bad:?}");
            assert_eq!(error_status(&err), Some(400));
        }
    }

    #[test]
    fn oversized_body_is_413_without_allocation() {
        let s = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", u64::MAX);
        // u64::MAX overflows usize on 32-bit but parses on 64-bit; either
        // way the declared size exceeds the cap and is rejected before the
        // body buffer is allocated.
        let err = parse_str(&s).unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge | HttpError::Bad("invalid content-length")
        ));
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse_str("POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(
            err,
            HttpError::Bad("body shorter than content-length")
        ));
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            "GET / HTTP/1.1\r\nname space: v\r\n\r\n",
        ] {
            assert!(matches!(parse_str(bad), Err(HttpError::Bad(_))), "{bad:?}");
        }
    }

    #[test]
    fn chunked_transfer_is_rejected() {
        let err = parse_str("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(
            err,
            HttpError::Bad("transfer-encoding not supported")
        ));
    }

    #[test]
    fn empty_stream_is_idle() {
        assert!(matches!(parse_str(""), Err(HttpError::Idle)));
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("retry-after", "1")
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn try_parse_reports_need_more_until_the_request_completes() {
        let full = b"POST /v1/run HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        // Every strict prefix is "need more bytes", never an error.
        for cut in 0..full.len() {
            assert!(
                matches!(try_parse_request(&full[..cut]), Ok(None)),
                "prefix of {cut} bytes"
            );
        }
        let (req, consumed) = try_parse_request(full).unwrap().unwrap();
        assert_eq!(consumed, full.len());
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn try_parse_consumes_only_one_pipelined_request() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (a, consumed) = try_parse_request(two).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        let (b, rest) = try_parse_request(&two[consumed..]).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn try_parse_rejects_malformed_and_oversized_prefixes_early() {
        // A complete but malformed head fails with the same status the
        // blocking parser gives.
        assert!(matches!(
            try_parse_request(b"NOPE\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        // An unbounded header flood is rejected before the terminator.
        let flood = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            try_parse_request(&flood),
            Err(HttpError::HeadersTooLarge)
        ));
        // An oversized declared body is rejected as soon as the head ends.
        let huge = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", u64::MAX);
        assert!(matches!(
            try_parse_request(huge.as_bytes()),
            Err(HttpError::BodyTooLarge | HttpError::Bad("invalid content-length"))
        ));
    }

    #[test]
    fn try_parse_handles_bare_lf_terminators() {
        let (req, consumed) = try_parse_request(b"GET /x HTTP/1.1\n\n").unwrap().unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(consumed, 17);
    }

    #[test]
    fn response_to_bytes_matches_write_to() {
        let resp = Response::json(200, "{}").with_header("retry-after", "1");
        let mut via_writer = Vec::new();
        resp.write_to(&mut via_writer, true).unwrap();
        assert_eq!(resp.to_bytes(true), via_writer);
    }

    #[test]
    fn error_responses_are_json_documents() {
        let mut buf = Vec::new();
        Response::error(404, "no such experiment")
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(r#"{"error":"no such experiment"}"#));
        assert!(!text.contains("connection: close"));
    }
}
