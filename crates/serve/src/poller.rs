//! Readiness polling on raw syscalls: the event loop's view of the OS.
//!
//! `std` exposes no readiness API and the workspace takes no external
//! dependencies, so this module declares the handful of C symbols the
//! loop needs — the same discipline as [`crate::signal`]. On Linux the
//! backend is **epoll** (`epoll_create1`/`epoll_ctl`/`epoll_wait`) with
//! an **eventfd** waker; on other unix platforms it degrades to POSIX
//! `poll(2)` over a registration table with a self-pipe waker. Both are
//! level-triggered: the loop re-arms interest per connection state
//! (read interest while parsing, write interest while a response is
//! buffered), so a socket that stays ready keeps reporting until the
//! state machine consumes it.
//!
//! Tokens are caller-chosen `u64`s carried back verbatim in events; the
//! server uses them as connection ids.

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (or peer-closed — a read will observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable.
    pub read: bool,
    /// Wake on writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// No readiness; errors and hangups still surface.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

pub use imp::{Poller, Waker};

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    // The kernel ABI packs epoll_event on x86-64 (a 32-bit `events`
    // immediately followed by the 64-bit payload); other architectures
    // use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    /// The Linux epoll backend.
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        /// A fresh epoll instance.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failures.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the returned fd is owned by Poller
            // and closed on drop.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        /// Starts watching `fd` with `interest`, tagging events `token`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        /// Changes the interest set of an already-registered `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: as in `register`.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
            Ok(())
        }

        /// Stops watching `fd`. Errors are ignored: the fd may already be
        /// closed, which deregisters implicitly.
        pub fn deregister(&self, fd: RawFd) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `register`; EPOLL_CTL_DEL ignores the event.
            let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Blocks until readiness or `timeout`, appending into `out`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failures other than `EINTR` (which
        /// returns an empty batch so the caller can re-check shutdown).
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let timeout_ms = timeout
                .map(|d| d.as_millis().min(i32::MAX as u128) as i32)
                .unwrap_or(-1);
            // SAFETY: `buf` is valid for 64 entries; the kernel writes at
            // most `maxevents` of them.
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), 64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    // ERR/HUP surface as readable: the next read observes
                    // the error or EOF and the state machine closes.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned and valid until this point.
            unsafe { close(self.epfd) };
        }
    }

    /// An eventfd-based waker: any thread (or a signal handler — `write`
    /// is async-signal-safe) can interrupt a blocked [`Poller::wait`].
    pub struct Waker {
        fd: i32,
        owned: bool,
    }

    impl Waker {
        /// A fresh waker, registered with `poller` under `token`.
        ///
        /// # Errors
        ///
        /// Propagates `eventfd` / registration failures.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            // SAFETY: plain syscall; the fd is owned by the Waker.
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            poller.register(fd, token, Interest::READ)?;
            Ok(Waker { fd, owned: true })
        }

        /// A cheap handle sharing the same fd (for worker threads). The
        /// original must outlive all handles.
        pub fn handle(&self) -> Waker {
            Waker {
                fd: self.fd,
                owned: false,
            }
        }

        /// The raw fd, for [`crate::signal::set_wakeup_fd`].
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Interrupts the poller. Never blocks: an eventfd at
        /// `u64::MAX - 1` simply stays triggered.
        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // SAFETY: fd is a valid nonblocking eventfd; a short or
            // failed write only means a wake is already pending.
            let _ = unsafe { write(self.fd, one.as_ptr(), one.len()) };
        }

        /// Clears pending wakes so level-triggered polling settles.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: fd is a valid nonblocking eventfd; reading resets
            // its counter, EAGAIN means it was already clear.
            let _ = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            if self.owned {
                // SAFETY: the owned fd is valid until this point.
                unsafe { close(self.fd) };
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
#[allow(unsafe_code)]
mod imp {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0x0004; // BSD-family value (macOS included)

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// POSIX `poll(2)` fallback: a registration table rebuilt into a
    /// `pollfd` array per wait. O(n) per wakeup, which is fine at this
    /// server's connection counts; Linux builds use epoll instead.
    pub struct Poller {
        table: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        /// A fresh poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                table: Mutex::new(HashMap::new()),
            })
        }

        /// Starts watching `fd`. See the epoll backend for semantics.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.table
                .lock()
                .expect("poller table")
                .insert(fd, (token, interest));
            Ok(())
        }

        /// Changes the interest set of `fd`.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) {
            self.table.lock().expect("poller table").remove(&fd);
        }

        /// Blocks until readiness or `timeout`, appending into `out`.
        ///
        /// # Errors
        ///
        /// Propagates `poll` failures other than `EINTR`.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = {
                let table = self.table.lock().expect("poller table");
                table
                    .iter()
                    .map(|(&fd, &(_, interest))| PollFd {
                        fd,
                        events: if interest.read { POLLIN } else { 0 }
                            | if interest.write { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect()
            };
            let timeout_ms = timeout
                .map(|d| d.as_millis().min(i32::MAX as u128) as i32)
                .unwrap_or(-1);
            // SAFETY: `fds` is a valid pollfd array of the stated length.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            let table = self.table.lock().expect("poller table");
            for pfd in fds.iter().filter(|p| p.revents != 0) {
                if let Some(&(token, _)) = table.get(&pfd.fd) {
                    out.push(Event {
                        token,
                        readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }

    /// A self-pipe waker (see the epoll backend for the contract).
    pub struct Waker {
        read_fd: i32,
        write_fd: i32,
        owned: bool,
    }

    impl Waker {
        /// A fresh waker registered under `token`.
        ///
        /// # Errors
        ///
        /// Propagates `pipe` failures.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is valid for two descriptors.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: both fds were just created by pipe().
            unsafe {
                fcntl(fds[0], F_SETFL, O_NONBLOCK);
                fcntl(fds[1], F_SETFL, O_NONBLOCK);
            }
            poller.register(fds[0], token, Interest::READ)?;
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
                owned: true,
            })
        }

        /// A cheap handle sharing the same pipe.
        pub fn handle(&self) -> Waker {
            Waker {
                read_fd: self.read_fd,
                write_fd: self.write_fd,
                owned: false,
            }
        }

        /// The fd a signal handler should write to.
        pub fn raw_fd(&self) -> RawFd {
            self.write_fd
        }

        /// Interrupts the poller; never blocks (nonblocking pipe).
        pub fn wake(&self) {
            let one = [1u8];
            // SAFETY: write_fd is a valid nonblocking pipe end.
            let _ = unsafe { write(self.write_fd, one.as_ptr(), 1) };
        }

        /// Clears pending wakes.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            // SAFETY: read_fd is a valid nonblocking pipe end.
            while unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            if self.owned {
                // SAFETY: both owned fds are valid until this point.
                unsafe {
                    close(self.read_fd);
                    close(self.write_fd);
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    /// Stub: the event loop requires a unix readiness API.
    pub struct Poller;

    impl Poller {
        /// Always fails on non-unix platforms.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the fdip-serve event loop requires a unix platform (epoll or poll)",
            ))
        }

        /// Unreachable (construction fails).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn register(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("poller cannot be constructed on this platform")
        }

        /// Unreachable (construction fails).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn modify(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("poller cannot be constructed on this platform")
        }

        /// Unreachable (construction fails).
        pub fn deregister(&self, _fd: i32) {}

        /// Unreachable (construction fails).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<()> {
            unreachable!("poller cannot be constructed on this platform")
        }
    }

    /// Stub waker for the stub poller.
    pub struct Waker;

    impl Waker {
        /// Unreachable (the poller cannot be constructed).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn new(_poller: &Poller, _token: u64) -> io::Result<Waker> {
            unreachable!("poller cannot be constructed on this platform")
        }

        /// Unreachable.
        pub fn handle(&self) -> Waker {
            Waker
        }

        /// Unreachable.
        pub fn raw_fd(&self) -> i32 {
            -1
        }

        /// Unreachable.
        pub fn wake(&self) {}

        /// Unreachable.
        pub fn drain(&self) {}
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn reports_read_readiness_on_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        // Nothing to read yet: a short wait times out empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.readable);

        let mut buf = [0u8; 4];
        (&server_side).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn write_interest_and_modify_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        // An idle socket with write interest is immediately writable.
        poller
            .register(server_side.as_raw_fd(), 3, Interest::WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Dropping interest silences it.
        poller
            .modify(server_side.as_raw_fd(), 3, Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 3));
        poller.deregister(server_side.as_raw_fd());
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_across_threads() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = Waker::new(&poller, 99).unwrap();
        let handle = waker.handle();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        t.join().unwrap();
    }
}
