//! Server instrumentation and its Prometheus text rendering.
//!
//! Counters are plain relaxed atomics bumped on the request path; a
//! `/metrics` scrape takes a point-in-time snapshot and renders the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# HELP`/`# TYPE` preambles, one sample per line. The harness cache
//! counters (trace/cell hits, misses, in-flight shares) are folded in from
//! [`HarnessStats`] so a scrape shows how much simulation work requests
//! are actually causing versus serving from cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use fdip_sim::harness::HarnessStats;

/// The status codes this server can emit (the label set of
/// `requests_total`). Keeping the set closed lets the counters live in a
/// fixed array with no locking or allocation on the request path.
pub const STATUS_CODES: [u16; 11] = [200, 400, 404, 405, 408, 413, 429, 431, 500, 502, 503];

/// Upper bounds (seconds) of the request-latency histogram buckets; a
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS: [f64; 8] = [0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 30.0];

/// All server counters. One instance lives in the server and is shared by
/// the accept loop and every worker.
#[derive(Default)]
pub struct Metrics {
    /// Completed responses, indexed like [`STATUS_CODES`].
    responses: [AtomicU64; STATUS_CODES.len()],
    /// Connections accepted (including ones later shed).
    pub connections_total: AtomicU64,
    /// Connections shed with 503 because the queue was full.
    pub shed_total: AtomicU64,
    /// Requests rejected because their deadline expired before handling.
    pub deadline_expired_total: AtomicU64,
    /// Requests that attached to an identical in-flight request instead
    /// of running their own simulation.
    pub coalesced_total: AtomicU64,
    /// Requests rejected with 429 by a tenant's token bucket.
    pub rate_limited_total: AtomicU64,
    /// Connections currently registered with the event loop.
    pub open_connections: AtomicU64,
    /// Requests currently being handled by a worker.
    pub in_flight: AtomicU64,
    /// Per-tenant queue depths, refreshed by the event loop whenever its
    /// scheduler state changes. A snapshot rather than an atomic because
    /// the tenant set is dynamic; updates happen off the per-request hot
    /// path.
    tenant_depths: Mutex<Vec<(String, u64)>>,
    /// Latency histogram bucket counts, indexed like [`LATENCY_BUCKETS`]
    /// with the final slot counting `+Inf`.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    /// Total observed latency in microseconds.
    latency_sum_us: AtomicU64,
    /// Total observations.
    latency_count: AtomicU64,
}

impl Metrics {
    /// Records a completed response.
    pub fn record_response(&self, status: u16) {
        if let Some(i) = STATUS_CODES.iter().position(|&s| s == status) {
            self.responses[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request's handling latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let i = LATENCY_BUCKETS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[i].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Responses recorded for `status` so far.
    pub fn responses_for(&self, status: u16) -> u64 {
        STATUS_CODES
            .iter()
            .position(|&s| s == status)
            .map(|i| self.responses[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total responses across all status codes.
    pub fn responses_total(&self) -> u64 {
        self.responses
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Latency observations recorded so far.
    pub fn latency_count(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Total observed latency.
    pub fn latency_sum(&self) -> Duration {
        Duration::from_micros(self.latency_sum_us.load(Ordering::Relaxed))
    }

    /// Replaces the per-tenant queue-depth snapshot (sorted by tenant).
    pub fn set_tenant_depths(&self, depths: Vec<(String, u64)>) {
        *self.tenant_depths.lock().expect("tenant depths poisoned") = depths;
    }

    /// Renders the Prometheus text document. `queue_depth` and
    /// `queue_capacity` come from the live queue; `harness` is the shared
    /// harness's counter snapshot; `node_health` is the fleet's per-node
    /// health snapshot (empty without a fleet).
    pub fn render(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        harness: &HarnessStats,
        node_health: &[(String, &'static str)],
    ) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = write!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            );
        };

        let _ = write!(
            out,
            "# HELP fdip_serve_requests_total Responses sent, by HTTP status.\n\
             # TYPE fdip_serve_requests_total counter\n"
        );
        for (i, status) in STATUS_CODES.iter().enumerate() {
            let _ = writeln!(
                out,
                "fdip_serve_requests_total{{status=\"{status}\"}} {}",
                self.responses[i].load(Ordering::Relaxed)
            );
        }

        counter(
            &mut out,
            "fdip_serve_connections_total",
            "Connections accepted.",
            self.connections_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fdip_serve_shed_total",
            "Connections shed with 503 because the request queue was full.",
            self.shed_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fdip_serve_deadline_expired_total",
            "Requests whose deadline expired before a worker reached them.",
            self.deadline_expired_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fdip_serve_coalesced_total",
            "Requests that shared an identical in-flight request's result.",
            self.coalesced_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fdip_serve_rate_limited_total",
            "Requests rejected with 429 by a tenant's rate limit.",
            self.rate_limited_total.load(Ordering::Relaxed),
        );

        let _ = write!(
            out,
            "# HELP fdip_serve_in_flight Requests currently being handled.\n\
             # TYPE fdip_serve_in_flight gauge\n\
             fdip_serve_in_flight {}\n\
             # HELP fdip_serve_open_connections Connections registered with the event loop.\n\
             # TYPE fdip_serve_open_connections gauge\n\
             fdip_serve_open_connections {}\n\
             # HELP fdip_serve_queue_depth Requests waiting in the bounded queue.\n\
             # TYPE fdip_serve_queue_depth gauge\n\
             fdip_serve_queue_depth {queue_depth}\n\
             # HELP fdip_serve_queue_capacity Configured request-queue capacity.\n\
             # TYPE fdip_serve_queue_capacity gauge\n\
             fdip_serve_queue_capacity {queue_capacity}\n",
            self.in_flight.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed)
        );

        let _ = write!(
            out,
            "# HELP fdip_serve_tenant_queue_depth Queued requests per tenant.\n\
             # TYPE fdip_serve_tenant_queue_depth gauge\n"
        );
        for (tenant, depth) in self
            .tenant_depths
            .lock()
            .expect("tenant depths poisoned")
            .iter()
        {
            let _ = writeln!(
                out,
                "fdip_serve_tenant_queue_depth{{tenant=\"{tenant}\"}} {depth}"
            );
        }

        let _ = write!(
            out,
            "# HELP fdip_serve_request_seconds Request handling latency.\n\
             # TYPE fdip_serve_request_seconds histogram\n"
        );
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "fdip_serve_request_seconds_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = write!(
            out,
            "fdip_serve_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n\
             fdip_serve_request_seconds_sum {}\n\
             fdip_serve_request_seconds_count {}\n",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6,
            self.latency_count.load(Ordering::Relaxed)
        );

        for (name, help, value) in [
            (
                "fdip_serve_harness_traces_generated_total",
                "Traces generated by the shared harness (store misses).",
                harness.traces_generated,
            ),
            (
                "fdip_serve_harness_trace_hits_total",
                "Trace requests served from the harness store.",
                harness.trace_hits,
            ),
            (
                "fdip_serve_harness_traces_shared_total",
                "Trace requests coalesced onto an in-flight generation.",
                harness.traces_shared,
            ),
            (
                "fdip_serve_harness_cells_simulated_total",
                "Simulation cells actually run (cell-cache misses).",
                harness.cells_simulated,
            ),
            (
                "fdip_serve_harness_cells_batched_total",
                "Cells simulated inside a lockstep multi-config batch.",
                harness.cells_batched,
            ),
            (
                "fdip_serve_harness_cell_hits_total",
                "Cell requests served from the harness cache.",
                harness.cell_hits,
            ),
            (
                "fdip_serve_harness_cells_shared_total",
                "Cell requests coalesced onto an in-flight simulation.",
                harness.cells_shared,
            ),
            (
                "fdip_serve_harness_cells_failed_total",
                "Cell requests that ended in a terminal error.",
                harness.cells_failed,
            ),
            (
                "fdip_serve_harness_cell_retries_total",
                "Retry attempts after retryable cell failures.",
                harness.cell_retries,
            ),
            (
                "fdip_serve_harness_cell_timeouts_total",
                "Cells cancelled for exceeding their wall-clock budget.",
                harness.cell_timeouts,
            ),
            (
                "fdip_serve_harness_journal_restored_total",
                "Cells preloaded from an attached journal instead of simulated.",
                harness.journal_restored,
            ),
            (
                "fdip_serve_harness_journal_corrupt_lines_total",
                "Journal lines that failed CRC32 verification on replay.",
                harness.journal_corrupt_lines,
            ),
            (
                "fdip_serve_worker_restarts_total",
                "Isolated worker processes respawned into a used pool slot.",
                harness.worker_restarts,
            ),
            (
                "fdip_serve_worker_kills_total",
                "Isolated worker processes SIGKILLed (budget or lost heartbeat).",
                harness.worker_kills,
            ),
            (
                "fdip_serve_worker_crash_loops_total",
                "Crash-loop backoff pauses before respawning a worker.",
                harness.worker_crash_loops,
            ),
            (
                "fdip_serve_node_losses_total",
                "Fleet nodes declared lost (dead socket or missed heartbeats).",
                harness.node_losses,
            ),
            (
                "fdip_serve_cells_redispatched_total",
                "Cells re-dispatched to another fleet node after a failure.",
                harness.cells_redispatched,
            ),
            (
                "fdip_serve_remote_cache_hits_total",
                "Cells served from the shared on-disk result cache.",
                harness.remote_cache_hits,
            ),
            (
                "fdip_serve_node_readmissions_total",
                "Lost fleet nodes readmitted (on probation) after a reprobe.",
                harness.node_readmissions,
            ),
            (
                "fdip_serve_cells_hedged_total",
                "Cells whose slow primary triggered a speculative second copy.",
                harness.cells_hedged,
            ),
            (
                "fdip_serve_hedge_wins_total",
                "Hedged cells where the speculative copy finished first.",
                harness.hedge_wins,
            ),
        ] {
            counter(&mut out, name, help, value);
        }

        let _ = write!(
            out,
            "# HELP fdip_serve_fleet_workers Worker seats across connected fleet nodes.\n\
             # TYPE fdip_serve_fleet_workers gauge\n\
             fdip_serve_fleet_workers {}\n",
            harness.fleet_workers
        );

        // One-hot per-node health: every node emits a sample for each
        // state, exactly one of them 1, so dashboards can sum by state
        // without knowing the node set in advance.
        let _ = write!(
            out,
            "# HELP fdip_serve_fleet_node_health Fleet node health (1 for the node's current state).\n\
             # TYPE fdip_serve_fleet_node_health gauge\n"
        );
        for (node, state) in node_health {
            for candidate in ["healthy", "suspect", "lost", "probation"] {
                let _ = writeln!(
                    out,
                    "fdip_serve_fleet_node_health{{node=\"{node}\",state=\"{candidate}\"}} {}",
                    u64::from(*state == candidate)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_family_and_reconciles() {
        let m = Metrics::default();
        m.record_response(200);
        m.record_response(200);
        m.record_response(503);
        m.record_response(777); // unknown codes are ignored, not panicked on
        m.record_latency(Duration::from_millis(3));
        m.record_latency(Duration::from_secs(60));
        m.connections_total.fetch_add(3, Ordering::Relaxed);
        m.coalesced_total.fetch_add(4, Ordering::Relaxed);
        m.rate_limited_total.fetch_add(5, Ordering::Relaxed);
        m.open_connections.fetch_add(6, Ordering::Relaxed);
        m.set_tenant_depths(vec![("alpha".to_string(), 2), ("default".to_string(), 1)]);

        assert_eq!(m.responses_for(200), 2);
        assert_eq!(m.responses_for(503), 1);
        assert_eq!(m.responses_total(), 3);

        let harness = HarnessStats {
            cells_simulated: 5,
            cells_batched: 11,
            cell_hits: 7,
            cells_failed: 2,
            cell_retries: 4,
            cell_timeouts: 1,
            journal_restored: 3,
            journal_corrupt_lines: 6,
            worker_restarts: 8,
            worker_kills: 9,
            worker_crash_loops: 10,
            fleet_workers: 12,
            node_losses: 13,
            cells_redispatched: 14,
            remote_cache_hits: 15,
            node_readmissions: 16,
            cells_hedged: 17,
            hedge_wins: 18,
            ..HarnessStats::default()
        };
        let nodes = vec![
            ("127.0.0.1:9001".to_string(), "healthy"),
            ("127.0.0.1:9002".to_string(), "lost"),
        ];
        let text = m.render(2, 64, &harness, &nodes);
        assert!(
            text.contains("fdip_serve_requests_total{status=\"200\"} 2"),
            "{text}"
        );
        assert!(text.contains("fdip_serve_requests_total{status=\"503\"} 1"));
        assert!(text.contains("fdip_serve_connections_total 3"));
        assert!(text.contains("fdip_serve_coalesced_total 4"));
        assert!(text.contains("fdip_serve_rate_limited_total 5"));
        assert!(text.contains("fdip_serve_open_connections 6"));
        assert!(text.contains("fdip_serve_tenant_queue_depth{tenant=\"alpha\"} 2"));
        assert!(text.contains("fdip_serve_tenant_queue_depth{tenant=\"default\"} 1"));
        assert!(text.contains("fdip_serve_queue_depth 2"));
        assert!(text.contains("fdip_serve_queue_capacity 64"));
        assert!(text.contains("fdip_serve_request_seconds_count 2"));
        assert!(text.contains("fdip_serve_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fdip_serve_harness_cells_simulated_total 5"));
        assert!(text.contains("fdip_serve_harness_cells_batched_total 11"));
        assert!(text.contains("fdip_serve_harness_cell_hits_total 7"));
        assert!(text.contains("fdip_serve_harness_cells_failed_total 2"));
        assert!(text.contains("fdip_serve_harness_cell_retries_total 4"));
        assert!(text.contains("fdip_serve_harness_cell_timeouts_total 1"));
        assert!(text.contains("fdip_serve_harness_journal_restored_total 3"));
        assert!(text.contains("fdip_serve_harness_journal_corrupt_lines_total 6"));
        assert!(text.contains("fdip_serve_worker_restarts_total 8"));
        assert!(text.contains("fdip_serve_worker_kills_total 9"));
        assert!(text.contains("fdip_serve_worker_crash_loops_total 10"));
        assert!(text.contains("fdip_serve_fleet_workers 12"));
        assert!(text.contains("fdip_serve_node_losses_total 13"));
        assert!(text.contains("fdip_serve_cells_redispatched_total 14"));
        assert!(text.contains("fdip_serve_remote_cache_hits_total 15"));
        assert!(text.contains("fdip_serve_node_readmissions_total 16"));
        assert!(text.contains("fdip_serve_cells_hedged_total 17"));
        assert!(text.contains("fdip_serve_hedge_wins_total 18"));
        // One-hot health: each node's current state is 1, the rest 0.
        assert!(text.contains(
            "fdip_serve_fleet_node_health{node=\"127.0.0.1:9001\",state=\"healthy\"} 1"
        ));
        assert!(text.contains(
            "fdip_serve_fleet_node_health{node=\"127.0.0.1:9001\",state=\"lost\"} 0"
        ));
        assert!(text.contains(
            "fdip_serve_fleet_node_health{node=\"127.0.0.1:9002\",state=\"lost\"} 1"
        ));
        assert!(text.contains(
            "fdip_serve_fleet_node_health{node=\"127.0.0.1:9002\",state=\"healthy\"} 0"
        ));
        assert!(text.contains("fdip_serve_requests_total{status=\"502\"} 0"));
        // Histogram buckets are cumulative: the 3ms observation lands in
        // le=0.005 and every later bucket includes it.
        assert!(text.contains("fdip_serve_request_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("fdip_serve_request_seconds_bucket{le=\"30\"} 1"));
    }
}
