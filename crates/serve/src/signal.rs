//! Minimal SIGINT/SIGTERM notification without a signal-handling crate.
//!
//! `std` offers no signal API, and the workspace takes no external
//! dependencies, so this module registers a C handler through the
//! `signal(2)` symbol `std` already links via libc. The handler only
//! stores to a static `AtomicBool` — one of the few operations that is
//! async-signal-safe — and the server's accept loop polls the flag.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);
static WAKEUP_FD: AtomicI32 = AtomicI32::new(-1);

/// Whether a SIGINT/SIGTERM has arrived since [`install`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::Relaxed)
}

/// Trips the flag as if a signal had arrived (used by tests and by the
/// in-process shutdown handle).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed);
    wake();
}

/// Registers a file descriptor (an eventfd or pipe write end) that the
/// signal handler pokes after tripping the flag, so a blocked event loop
/// notices shutdown immediately instead of on its next poll timeout.
/// Pass -1 to clear. `write(2)` is async-signal-safe, so this is sound
/// from the handler.
pub fn set_wakeup_fd(fd: i32) {
    WAKEUP_FD.store(fd, Ordering::Relaxed);
}

fn wake() {
    imp::wake_fd(WAKEUP_FD.load(Ordering::Relaxed));
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::request_shutdown();
    }

    /// Writes an 8-byte wake token to `fd` (eventfd semantics; a pipe
    /// just sees 8 bytes). No-op for -1. Async-signal-safe.
    pub fn wake_fd(fd: i32) {
        if fd >= 0 {
            let one = 1u64.to_ne_bytes();
            // SAFETY: write(2) on an open fd; failure (full pipe, closed
            // fd) only means the wake is lost and the poll timeout
            // catches the flag instead.
            let _ = unsafe { write(fd, one.as_ptr(), one.len()) };
        }
    }

    /// Registers the handler for SIGINT and SIGTERM.
    pub fn install() {
        // SAFETY: `signal` is the C standard library's registration call
        // (always linked by std on unix); the handler only performs an
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal delivery on this platform; shutdown comes only from
    /// [`super::request_shutdown`].
    pub fn install() {}

    /// No wakeup fds without unix I/O; the poll timeout notices the flag.
    pub fn wake_fd(_fd: i32) {}
}

/// Registers SIGINT/SIGTERM handlers that trip the shutdown flag.
/// Idempotent; call once before the accept loop.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_flips_on_request() {
        install();
        // The flag is process-global, so only drive it via the in-process
        // path here (raising a real signal would kill the test harness).
        request_shutdown();
        assert!(shutdown_requested());
    }
}
