//! The accept loop, worker pool, and connection lifecycle.
//!
//! ```text
//!             ┌─────────────┐   try_push    ┌──────────────┐   pop
//!  accept ───▶│ accept loop │──────────────▶│ BoundedQueue │────────▶ workers
//!             └─────────────┘   full: 503   └──────────────┘          │
//!                   ▲  polls shutdown flag                            ▼
//!                   └──────────── SIGTERM / ctrl-c / handle      Service::route
//! ```
//!
//! Backpressure is connection-granular: a full queue sheds new
//! connections with `503 Service Unavailable` + `Retry-After` written
//! inline by the accept loop, so memory stays bounded no matter the offered
//! load. Each request additionally carries a deadline — the smaller of the
//! server's `timeout_ms` and the client's `x-fdip-deadline-ms` header —
//! measured from the moment the connection was accepted; requests that
//! expire before a worker reaches them are answered `408`/`429` without
//! doing the work. Shutdown (signal or [`ShutdownHandle`]) stops the
//! accept loop, closes the queue, and lets workers drain what was already
//! accepted before [`Server::run`] returns.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{self, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::service::Service;
use crate::{signal, ServeConfig};

/// One accepted connection waiting for (or being served by) a worker.
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Cooperative stop switch for an in-process server (tests, the loadgen
/// harness). The process-level SIGINT/SIGTERM path trips the same logic.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the server to stop accepting, drain, and return from `run`.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }
}

/// A bound listener plus everything needed to serve it.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    queue: Arc<BoundedQueue<Conn>>,
    shutdown: Arc<AtomicBool>,
    threads: usize,
}

impl Server {
    /// Binds `config.addr` and prepares the worker pool (workers start in
    /// [`run`](Server::run)).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        if let Some(addrs) = &config.fleet {
            // Fleet dispatch: cells run on remote `fdip workerd` daemons.
            // Same budget discipline as local isolation; a lost node is a
            // retryable re-dispatch, not a failed request.
            fdip_sim::harness::Harness::global().set_retry_policy(fdip_sim::fault::RetryPolicy {
                cell_budget: Some(std::time::Duration::from_millis(config.timeout_ms)),
                ..fdip_sim::fault::RetryPolicy::default()
            });
            let list: Vec<String> = addrs
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let fleet = fdip_sim::harness::Harness::global()
                .enable_fleet(fdip_sim::fleet::FleetConfig::new(list))?;
            eprintln!(
                "fleet: {} node(s), {} worker seat(s)",
                fleet.nodes().len(),
                fleet.workers()
            );
        } else if config.isolate_workers > 0 {
            // Route cell computes through supervised worker processes: a
            // cell that aborts or hangs costs one disposable worker and a
            // structured 502, never this process. The request timeout
            // doubles as the hard per-cell budget, enforced with SIGKILL.
            fdip_sim::harness::Harness::global().set_retry_policy(fdip_sim::fault::RetryPolicy {
                cell_budget: Some(std::time::Duration::from_millis(config.timeout_ms)),
                ..fdip_sim::fault::RetryPolicy::default()
            });
            fdip_sim::harness::Harness::global().enable_isolation(
                fdip_sim::supervisor::SupervisorConfig {
                    workers: config.isolate_workers,
                    ..fdip_sim::supervisor::SupervisorConfig::default()
                },
            );
        }
        if let Some(dir) = &config.cache_dir {
            // Warm restarts: finished cells persisted by a previous run (or
            // a batch CLI sharing the directory) are read back instead of
            // re-simulated; corrupt entries are skipped, counted, and
            // repaired on the next store.
            let summary = fdip_sim::harness::Harness::global().attach_cache(dir)?;
            eprintln!(
                "cell cache {}: {} entr{} restored, {} corrupt",
                dir.display(),
                summary.entries,
                if summary.entries == 1 { "y" } else { "ies" },
                summary.corrupt
            );
        }
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            config.threads
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let service = Arc::new(Service::new(config, Arc::new(Metrics::default())));
        Ok(Server {
            listener,
            service,
            queue,
            shutdown: Arc::new(AtomicBool::new(false)),
            threads,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// The shared metrics sink (for observation in tests and the loadgen).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(self.service.metrics())
    }

    /// Serves until a signal arrives or the [`ShutdownHandle`] fires, then
    /// drains in-flight work and returns.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors are handled
    /// inline.
    pub fn run(&self) -> io::Result<()> {
        signal::install();
        let metrics = self.service.metrics();
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(self.threads);
            for _ in 0..self.threads {
                let queue = Arc::clone(&self.queue);
                let service = Arc::clone(&self.service);
                workers.push(scope.spawn(move || worker_loop(&queue, &service)));
            }

            loop {
                if self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                        let conn = Conn {
                            stream,
                            accepted_at: Instant::now(),
                        };
                        match self.queue.try_push(conn) {
                            Ok(()) => {}
                            Err(PushError::Full(conn)) | Err(PushError::Closed(conn)) => {
                                shed(conn, metrics);
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // The poll interval is the floor on accept latency
                        // (cache-hit requests complete in well under 1ms),
                        // so keep it tight.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.queue.close();
                        return Err(e);
                    }
                }
            }

            // Graceful drain: no new work is admitted, queued connections
            // are still served, workers exit once the queue is dry.
            self.queue.close();
            Ok(())
        })
    }
}

/// Writes the 503 + `Retry-After` shed response directly from the accept
/// loop; the queue never grows past its bound.
fn shed(conn: Conn, metrics: &Metrics) {
    metrics.shed_total.fetch_add(1, Ordering::Relaxed);
    let mut stream = conn.stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let resp = Response::error(503, "server at capacity, try again shortly")
        .with_header("retry-after", "1");
    let _ = resp.write_to(&mut stream, true);
    metrics.record_response(503);
}

/// One worker: pop connections and serve each until it closes.
fn worker_loop(queue: &BoundedQueue<Conn>, service: &Service) {
    while let Some(conn) = queue.pop() {
        serve_connection(conn, queue, service);
    }
}

/// The per-request deadline: the server timeout, tightened by the
/// client's `x-fdip-deadline-ms` header when present and well-formed.
/// Returns the budget plus whether the client supplied it (which picks
/// the expiry status: 408 for a client deadline, 429 for the server's).
fn deadline_budget(req: &Request, config: &ServeConfig) -> (Duration, bool) {
    let server = Duration::from_millis(config.timeout_ms);
    match req
        .header("x-fdip-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(client_ms) => {
            let client = Duration::from_millis(client_ms);
            (client.min(server), client <= server)
        }
        None => (server, false),
    }
}

fn serve_connection(conn: Conn, queue: &BoundedQueue<Conn>, service: &Service) {
    let Conn {
        stream,
        accepted_at,
    } = conn;
    let metrics = Arc::clone(service.metrics());
    // Bound how long a parked keep-alive connection can pin this worker:
    // reads time out at the server timeout and surface as an idle close.
    let io_timeout = Duration::from_millis(service.config().timeout_ms.clamp(100, 60_000));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut first_request = true;

    loop {
        let req = match http::parse_request(&mut reader) {
            Ok(req) => req,
            Err(err) => {
                if let Some(status) = http::error_status(&err) {
                    let resp = Response::error(status, &err.to_string());
                    let _ = resp.write_to(&mut writer, true);
                    metrics.record_response(status);
                }
                return;
            }
        };
        let started = Instant::now();
        // During a drain the response is still served, but the connection
        // is closed afterwards so workers can finish and exit.
        let close = req.wants_close() || queue.is_closed();

        // Deadline check on the *first* request of the connection: its
        // clock started at accept, so time spent queued behind a full
        // worker pool counts against the budget and expired work is never
        // started. Later keep-alive requests reach an already-dedicated
        // worker and have no queue wait to bound.
        let (budget, client_set) = deadline_budget(&req, service.config());
        let resp = if first_request && accepted_at.elapsed() > budget {
            metrics
                .deadline_expired_total
                .fetch_add(1, Ordering::Relaxed);
            let status = if client_set { 408 } else { 429 };
            Response::error(
                status,
                "deadline expired before the request could be handled",
            )
            .with_header("retry-after", "1")
        } else {
            metrics.in_flight.fetch_add(1, Ordering::Relaxed);
            let depth = queue.len();
            // Backstop: a handler panic must kill neither the worker nor
            // the connection contract (the client still gets a response).
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| service.route(&req, depth)));
            metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
            result.unwrap_or_else(|_| Response::error(500, "internal error handling the request"))
        };

        let status = resp.status;
        let write_ok = resp.write_to(&mut writer, close).is_ok();
        metrics.record_response(status);
        metrics.record_latency(started.elapsed());
        if close || !write_ok {
            let _ = writer.flush();
            return;
        }
        first_request = false;
    }
}
