//! The event loop, compute worker pool, and connection lifecycle.
//!
//! ```text
//!            readiness (poller)              per-tenant fair queues
//!  accept ──▶ read / parse ──▶ admit ───▶ ┌──────────────────────┐
//!              │      ▲        │ 429/503  │ sched: rate limit,   │  dispatch
//!              │      │        ▼          │ coalesce, rr rotate  │──────────▶ workers
//!   GETs answered inline     write buffer └──────────────────────┘  (≤ threads)   │
//!              │                  ▲                                               ▼
//!              ▼                  │ completions + waker                 Service::route
//!           write ◀───────────────┴───────────────────────────────────────────────┘
//! ```
//!
//! One loop thread owns the listener and every connection; sockets are
//! nonblocking and all protocol I/O is readiness-driven through
//! [`Poller`]. Simulation requests are admitted into the [`Scheduler`]
//! (rate limit → coalesce → capacity shed), dispatched round-robin
//! across tenants into a [`BoundedQueue`] feeding the worker pool, and
//! their responses flow back through a completion list plus an eventfd
//! waker. `/healthz` and `/metrics` are answered on the loop thread
//! itself, so they stay live under full compute saturation;
//! `GET /v1/experiments` reads persisted documents from disk, so it
//! rides the worker pool like the sim routes.
//!
//! Backpressure is O(1) per excess request: beyond `queue_depth` queued
//! leaders a request is shed with `503` + `Retry-After` *into the
//! connection's write buffer* — a stalled client slows only its own
//! socket, never the accept path (the PR 2 shed bug). Beyond `max_conns`
//! open sockets, accepts are answered with a best-effort inline 503 and
//! closed; `max_conns` itself is clamped under the fd soft limit at
//! bind, and actual descriptor exhaustion parks the listener until a
//! connection closes instead of killing the server. Every request
//! carries a deadline — the smaller of the
//! server's `timeout_ms` and a well-formed `x-fdip-deadline-ms` header
//! (malformed is a 400) — measured from accept for a connection's first
//! request; requests that expire queued are answered `408`/`429`
//! without doing the work. Shutdown (signal or [`ShutdownHandle`]) stops
//! accepting, answers everything admitted, then returns from
//! [`Server::run`].

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::conn::{Conn, ConnState, ReadOutcome, WriteOutcome};
use crate::http::{self, Request, Response};
use crate::metrics::Metrics;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::queue::{BoundedQueue, PushError};
use crate::sched::{Admission, Job, Requester, Scheduler};
use crate::service::{self, Service};
use crate::{signal, ServeConfig};

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the loop waker (worker completions, signals).
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_CONN_BASE: u64 = 2;

/// How long the loop sleeps with nothing ready; bounds how late timers
/// (sweeps, deadline expiry, shutdown noticed without a waker) can fire.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);

/// How often stalled/idle connections and expired queued jobs are swept.
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);

/// Cooperative stop switch for an in-process server (tests, the loadgen
/// harness). The process-level SIGINT/SIGTERM path trips the same logic.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the server to stop accepting, drain, and return from `run`.
    /// The loop notices within one poll timeout.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }
}

/// A bound listener plus everything needed to serve it.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    threads: usize,
}

impl Server {
    /// Binds `config.addr` and prepares the worker pool (workers start in
    /// [`run`](Server::run)).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(mut config: ServeConfig) -> io::Result<Server> {
        if let Some(limit) = fd_soft_limit() {
            // Keep the connection cap comfortably under the fd soft
            // limit (headroom for the listener, poller, waker, worker
            // pipes, cache files, and stdio), so overload is shed by the
            // max_conns guard instead of surfacing as EMFILE.
            let ceiling = limit.saturating_sub(64).max(16);
            if config.max_conns as u64 > ceiling {
                eprintln!(
                    "serve: clamping max_conns {} to {ceiling} (fd soft limit {limit})",
                    config.max_conns
                );
                // The cast is lossless: ceiling < the old usize value.
                config.max_conns = ceiling as usize;
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        if let Some(addrs) = &config.fleet {
            // Fleet dispatch: cells run on remote `fdip workerd` daemons.
            // Same budget discipline as local isolation; a lost node is a
            // retryable re-dispatch, not a failed request.
            fdip_sim::harness::Harness::global().set_retry_policy(fdip_sim::fault::RetryPolicy {
                cell_budget: Some(std::time::Duration::from_millis(config.timeout_ms)),
                ..fdip_sim::fault::RetryPolicy::default()
            });
            let list: Vec<String> = addrs
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let mut fleet_config = fdip_sim::fleet::FleetConfig::new(list);
            if let Some(ms) = config.fleet_heartbeat_ms {
                fleet_config.heartbeat_timeout = std::time::Duration::from_millis(ms);
            }
            if let Some(policy) = config.fleet_hedge {
                fleet_config.hedge = policy;
            }
            let fleet = fdip_sim::harness::Harness::global().enable_fleet(fleet_config)?;
            eprintln!(
                "fleet: {} node(s), {} worker seat(s)",
                fleet.nodes().len(),
                fleet.workers()
            );
        } else if config.isolate_workers > 0 {
            // Route cell computes through supervised worker processes: a
            // cell that aborts or hangs costs one disposable worker and a
            // structured 502, never this process. The request timeout
            // doubles as the hard per-cell budget, enforced with SIGKILL.
            fdip_sim::harness::Harness::global().set_retry_policy(fdip_sim::fault::RetryPolicy {
                cell_budget: Some(std::time::Duration::from_millis(config.timeout_ms)),
                ..fdip_sim::fault::RetryPolicy::default()
            });
            fdip_sim::harness::Harness::global().enable_isolation(
                fdip_sim::supervisor::SupervisorConfig {
                    workers: config.isolate_workers,
                    ..fdip_sim::supervisor::SupervisorConfig::default()
                },
            );
        }
        if let Some(dir) = &config.cache_dir {
            // Warm restarts: finished cells persisted by a previous run (or
            // a batch CLI sharing the directory) are read back instead of
            // re-simulated; corrupt entries are skipped, counted, and
            // repaired on the next store.
            let summary = fdip_sim::harness::Harness::global().attach_cache(dir)?;
            eprintln!(
                "cell cache {}: {} entr{} restored, {} corrupt",
                dir.display(),
                summary.entries,
                if summary.entries == 1 { "y" } else { "ies" },
                summary.corrupt
            );
        }
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            config.threads
        };
        let service = Arc::new(Service::new(config, Arc::new(Metrics::default())));
        Ok(Server {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            threads: threads.max(1),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// The shared metrics sink (for observation in tests and the loadgen).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(self.service.metrics())
    }

    /// Serves until a signal arrives or the [`ShutdownHandle`] fires, then
    /// drains admitted work and returns.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener/poller errors; per-connection errors are
    /// handled inline.
    pub fn run(&self) -> io::Result<()> {
        signal::install();
        let poller = Poller::new()?;
        let waker = Waker::new(&poller, TOKEN_WAKER)?;
        // A signal mid-poll pokes the waker so drain starts immediately
        // instead of on the next poll timeout.
        signal::set_wakeup_fd(waker.raw_fd());
        poller.register(fd_of(&self.listener), TOKEN_LISTENER, Interest::READ)?;

        let config = self.service.config().clone();
        let dispatch: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(self.threads));
        let completions: Arc<Mutex<Vec<(Job, Response)>>> = Arc::new(Mutex::new(Vec::new()));
        let result = std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let queue = Arc::clone(&dispatch);
                let service = Arc::clone(&self.service);
                let completions = Arc::clone(&completions);
                let waker = waker.handle();
                scope.spawn(move || worker_loop(&queue, &service, &completions, &waker));
            }
            let mut el = EventLoop {
                listener: &self.listener,
                shutdown: &self.shutdown,
                service: Arc::clone(&self.service),
                metrics: Arc::clone(self.service.metrics()),
                poller: &poller,
                waker: &waker,
                conns: HashMap::new(),
                sched: Scheduler::new(config.queue_depth, config.tenant_rps),
                dispatch: Arc::clone(&dispatch),
                completions: Arc::clone(&completions),
                config,
                threads: self.threads,
                draining: false,
                accept_paused: false,
                sched_dirty: false,
                next_token: TOKEN_CONN_BASE,
                events: Vec::new(),
            };
            let out = el.run_loop();
            // Workers block in `pop`; closing the queue releases them so
            // the scope can join. (Queued jobs are gone by now on the
            // clean path — the loop drains before returning Ok.)
            dispatch.close();
            out
        });
        signal::set_wakeup_fd(-1);
        result
    }
}

/// The raw fd of a socket, for poller registration.
#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

/// Non-unix placeholder; [`Poller::new`] fails before any fd is used.
#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    -1
}

/// True when `accept` failed because the process (`EMFILE`) or system
/// (`ENFILE`) descriptor table is full — transient by definition, since
/// closing any connection frees a slot. Fatal treatment here is the bug
/// the review caught: ~1000 idle remote sockets could crash the server.
fn fd_exhausted(e: &io::Error) -> bool {
    // ENFILE = 23 and EMFILE = 24 on Linux and the BSDs alike.
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// The process's soft limit on open file descriptors, used to clamp
/// `max_conns` at bind time so the connection cap sheds *before* the fd
/// table runs dry.
#[cfg(unix)]
#[allow(unsafe_code)]
fn fd_soft_limit() -> Option<u64> {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    }
    // RLIMIT_NOFILE is 7 on Linux and 8 on the BSDs (macOS included).
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: plain syscall writing into a properly sized, owned struct.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == 0 {
        Some(lim.cur)
    } else {
        None
    }
}

/// Non-unix placeholder: no limit knowable, no clamp applied.
#[cfg(not(unix))]
fn fd_soft_limit() -> Option<u64> {
    None
}

/// One compute worker: pop jobs, run the handler (panic-safe), hand the
/// response back to the loop, and poke its waker.
fn worker_loop(
    queue: &BoundedQueue<Job>,
    service: &Service,
    completions: &Mutex<Vec<(Job, Response)>>,
    waker: &Waker,
) {
    while let Some(job) = queue.pop() {
        // Queue depth 0 here: only GET /metrics (answered on the loop,
        // which knows the live depth) reads the gauge argument.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| service.route(&job.req, 0)));
        let resp =
            result.unwrap_or_else(|_| Response::error(500, "internal error handling the request"));
        completions
            .lock()
            .expect("completion list poisoned")
            .push((job, resp));
        waker.wake();
    }
}

/// All loop-thread state. Owned by [`Server::run`] for the lifetime of
/// one serve session.
struct EventLoop<'a> {
    listener: &'a TcpListener,
    shutdown: &'a AtomicBool,
    service: Arc<Service>,
    metrics: Arc<Metrics>,
    poller: &'a Poller,
    waker: &'a Waker,
    conns: HashMap<u64, Conn>,
    sched: Scheduler,
    dispatch: Arc<BoundedQueue<Job>>,
    completions: Arc<Mutex<Vec<(Job, Response)>>>,
    config: ServeConfig,
    threads: usize,
    draining: bool,
    accept_paused: bool,
    sched_dirty: bool,
    next_token: u64,
    events: Vec<Event>,
}

impl EventLoop<'_> {
    fn run_loop(&mut self) -> io::Result<()> {
        let mut next_sweep = Instant::now() + SWEEP_INTERVAL;
        loop {
            if !self.draining
                && (self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested())
            {
                self.begin_drain();
            }
            if self.draining {
                self.close_idle_readers();
                if self.conns.is_empty() && self.sched.is_idle() {
                    return Ok(());
                }
            }

            let mut events = std::mem::take(&mut self.events);
            self.poller.wait(&mut events, Some(POLL_TIMEOUT))?;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready()?,
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.on_conn_event(token),
                }
            }
            self.events = events;

            self.process_completions();
            self.dispatch_ready();

            let now = Instant::now();
            if now >= next_sweep {
                self.sweep(now);
                next_sweep = now + SWEEP_INTERVAL;
            }
            if self.sched_dirty {
                self.metrics.set_tenant_depths(self.sched.tenant_depths());
                self.sched_dirty = false;
            }
        }
    }

    /// Stops accepting; admitted work keeps flowing until answered.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.poller.deregister(fd_of(self.listener));
    }

    /// During a drain, connections with no request in flight are closed
    /// (nobody will be admitted again), which is what lets the loop reach
    /// the empty state and return.
    fn close_idle_readers(&mut self) {
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    /// Accepts everything pending on the listener.
    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.metrics
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    if self.conns.len() >= self.config.max_conns {
                        self.shed_accept(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(fd_of(&stream), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream, Instant::now()));
                    self.metrics
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A connection that died between SYN and accept is the
                // peer's failure, not the listener's.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset
                    ) => {}
                Err(e) if fd_exhausted(&e) => {
                    // EMFILE/ENFILE: the process (or system) descriptor
                    // table is full, so every further accept would fail
                    // the same way. Park the listener — level-triggered
                    // polling would otherwise spin on it, and returning
                    // the error would let a client holding idle sockets
                    // kill the whole server. Accepts resume when a
                    // connection closes (or on the next sweep).
                    self.pause_accepts();
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Parks the listener (deregisters it from the poller) so descriptor
    /// exhaustion cannot spin or crash the loop. Serving of already-open
    /// connections continues untouched.
    fn pause_accepts(&mut self) {
        if !self.accept_paused {
            self.accept_paused = true;
            self.poller.deregister(fd_of(self.listener));
            eprintln!(
                "serve: out of file descriptors ({} conns open), pausing accepts",
                self.conns.len()
            );
        }
    }

    /// Re-arms a parked listener once there is descriptor headroom. A
    /// drain never resumes: the listener stays down for good.
    fn resume_accepts(&mut self) {
        if self.accept_paused && !self.draining {
            self.accept_paused = false;
            let _ = self
                .poller
                .register(fd_of(self.listener), TOKEN_LISTENER, Interest::READ);
        }
    }

    /// Over the connection cap: answer 503 with one best-effort
    /// nonblocking write and close. Never blocks the loop — an unwritable
    /// client just gets a reset.
    fn shed_accept(&mut self, stream: TcpStream) {
        self.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_response(503);
        let _ = stream.set_nonblocking(true);
        let bytes = Response::error(503, "server at connection capacity, try again shortly")
            .with_header("retry-after", "1")
            .to_bytes(true);
        let mut s = stream;
        let _ = s.write(&bytes);
    }

    /// Routes one readiness event to a connection. A `Waiting`
    /// connection is registered with `Interest::NONE`, so the only
    /// events that can reach it are the always-reported level-triggered
    /// `ERR`/`HUP` — a peer that reset or fully closed while its request
    /// is queued or in flight. That condition must be *consumed* (by
    /// reaping the connection), not skipped: `drive` breaking on
    /// `Waiting` would leave it pending and make every `poller.wait`
    /// return instantly, spinning the loop at 100% CPU until the job
    /// finishes — a cheap DoS for clients that abort in-flight requests.
    fn on_conn_event(&mut self, token: u64) {
        match self.conns.get(&token).map(|c| c.state) {
            Some(ConnState::Waiting) => self.reap_if_hung_up(token),
            Some(_) => self.drive(token),
            None => {}
        }
    }

    /// Probes a `Waiting` connection that reported an event and closes
    /// it if the peer is gone. Safe to drop mid-request: the scheduler
    /// tolerates delivery to a missing connection, and the shared
    /// computation proceeds for any live coalesced followers.
    fn reap_if_hung_up(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let mut probe = [0u8; 1];
        match conn.stream().peek(&mut probe) {
            // Still alive: a spurious or already-cleared condition.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted => {}
            // EOF, a pending socket error (RST), or bytes sent before
            // the close that raised this event — with `Interest::NONE`
            // an event here implies ERR/HUP, so the peer can no longer
            // receive the response either way.
            _ => self.close_conn(token),
        }
    }

    /// Advances one connection's state machine as far as readiness
    /// allows: read → parse → admit/answer → write → (keep-alive) repeat.
    fn drive(&mut self, token: u64) {
        loop {
            let Some(state) = self.conns.get(&token).map(|c| c.state) else {
                return;
            };
            let now = Instant::now();
            match state {
                ConnState::Reading => {
                    let outcome = self
                        .conns
                        .get_mut(&token)
                        .expect("conn present")
                        .on_readable(now);
                    match outcome {
                        ReadOutcome::NeedMore => break,
                        ReadOutcome::Closed => return self.close_conn(token),
                        ReadOutcome::Error(err) => match http::error_status(&err) {
                            // Protocol errors poison the byte stream, so
                            // the connection always closes after the 4xx.
                            Some(status) => {
                                self.answer(
                                    token,
                                    &Response::error(status, &err.to_string()),
                                    true,
                                    false,
                                );
                            }
                            None => return self.close_conn(token),
                        },
                        ReadOutcome::Request(req) => self.handle_request(token, req),
                    }
                }
                ConnState::Writing => {
                    let outcome = self
                        .conns
                        .get_mut(&token)
                        .expect("conn present")
                        .on_writable(now);
                    match outcome {
                        WriteOutcome::Pending => break,
                        WriteOutcome::Closed => return self.close_conn(token),
                        WriteOutcome::Flushed => {
                            let conn = self.conns.get_mut(&token).expect("conn present");
                            if conn.close_after_write {
                                return self.close_conn(token);
                            }
                            if let Some(started) = conn.finish_write(now) {
                                self.metrics.record_latency(started.elapsed());
                            }
                            // Loop again: pipelined bytes already buffered
                            // parse without waiting for readiness.
                        }
                    }
                }
                ConnState::Waiting => break,
            }
        }
        self.sync_interest(token);
    }

    /// Registers the poller interest implied by the connection's state.
    fn sync_interest(&mut self, token: u64) {
        if let Some(conn) = self.conns.get(&token) {
            let interest = match conn.state {
                ConnState::Reading => Interest::READ,
                ConnState::Writing => Interest::WRITE,
                ConnState::Waiting => Interest::NONE,
            };
            let _ = self.poller.modify(fd_of(conn.stream()), token, interest);
        }
    }

    /// Validates headers, enforces the deadline, and either answers
    /// inline (GETs, errors) or admits the request to the scheduler.
    fn handle_request(&mut self, token: u64, req: Request) {
        let now = Instant::now();
        let Some(req_started) = self.conns.get(&token).map(|c| c.req_started) else {
            return;
        };
        let close_hint = req.wants_close() || self.draining;

        // Strict header validation applies to every route uniformly: a
        // malformed deadline or tenant is a 400, never silently ignored.
        let tenant = match service::tenant_of(&req) {
            Ok(t) => t,
            Err(e) => return self.answer(token, &e.into(), close_hint, true),
        };
        let client_deadline = match service::parse_deadline_ms(&req) {
            Ok(d) => d,
            Err(e) => return self.answer(token, &e.into(), close_hint, true),
        };
        let server_budget = Duration::from_millis(self.config.timeout_ms);
        let (budget, client_set) = match client_deadline {
            Some(client) => (client.min(server_budget), client <= server_budget),
            None => (server_budget, false),
        };
        // The clock started at accept (first request) or previous flush:
        // time already spent reading counts against the budget.
        let deadline = req_started + budget;
        if now >= deadline {
            self.metrics
                .deadline_expired_total
                .fetch_add(1, Ordering::Relaxed);
            return self.answer(token, &expiry_response(client_set), close_hint, true);
        }

        if !service::is_pooled_route(&req) {
            // Only routes whose handlers never block (liveness probes,
            // in-memory metrics, protocol errors) run on the loop
            // thread; anything touching disk or simulation takes a
            // worker seat via the scheduler below.
            let depth = self.sched.pending();
            let result =
                std::panic::catch_unwind(AssertUnwindSafe(|| self.service.route(&req, depth)));
            let resp = result
                .unwrap_or_else(|_| Response::error(500, "internal error handling the request"));
            return self.answer(token, &resp, close_hint, true);
        }

        let key = service::sim_coalesce_key(&req);
        let leader = Requester {
            conn: token,
            started: req_started,
            deadline,
            client_deadline: client_set,
        };
        match self.sched.admit(&tenant, req, leader, deadline, key, now) {
            admitted @ (Admission::Enqueued | Admission::Coalesced(_)) => {
                if matches!(admitted, Admission::Coalesced(_)) {
                    self.metrics.coalesced_total.fetch_add(1, Ordering::Relaxed);
                }
                let conn = self.conns.get_mut(&token).expect("conn present");
                conn.state = ConnState::Waiting;
                conn.close_when_answered = close_hint;
                self.sched_dirty = true;
            }
            Admission::RateLimited => {
                self.metrics
                    .rate_limited_total
                    .fetch_add(1, Ordering::Relaxed);
                self.answer(
                    token,
                    &Response::error(429, "tenant rate limit exceeded, slow down")
                        .with_header("retry-after", "1"),
                    close_hint,
                    true,
                );
            }
            Admission::Shed => {
                self.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                self.answer(
                    token,
                    &Response::error(503, "server at capacity, try again shortly")
                        .with_header("retry-after", "1"),
                    close_hint,
                    true,
                );
            }
        }
    }

    /// Queues `resp` on the connection and counts it. The caller's drive
    /// loop (or an explicit [`drive`](Self::drive)) flushes it.
    fn answer(&mut self, token: u64, resp: &Response, close: bool, count_latency: bool) {
        if let Some(conn) = self.conns.get_mut(&token) {
            self.metrics.record_response(resp.status);
            conn.queue_response(resp, close, count_latency);
        }
    }

    /// Moves scheduler work onto free worker seats, answering queued jobs
    /// whose deadline already passed instead of running them.
    fn dispatch_ready(&mut self) {
        let now = Instant::now();
        while self.sched.in_flight() < self.threads && self.sched.pending() > 0 {
            let Some(job) = self.sched.next_job() else {
                break;
            };
            self.sched_dirty = true;
            if job.deadline <= now {
                let followers = self.sched.complete(&job);
                self.expire(job.leader, &followers);
                continue;
            }
            self.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
            match self.dispatch.try_push(job) {
                Ok(()) => {}
                Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                    // Unreachable by construction (outstanding ≤ threads =
                    // queue capacity; the queue closes only after the loop
                    // exits) — but a lost job must still be answered.
                    self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                    let followers = self.sched.complete(&job);
                    let resp = Response::error(500, "internal dispatch failure");
                    self.deliver(job.leader, &resp);
                    for f in followers {
                        self.deliver(f, &resp);
                    }
                }
            }
        }
    }

    /// Hands finished jobs' responses to their leader and followers.
    fn process_completions(&mut self) {
        let done: Vec<(Job, Response)> = {
            let mut list = self.completions.lock().expect("completion list poisoned");
            std::mem::take(&mut *list)
        };
        for (job, resp) in done {
            self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
            let followers = self.sched.complete(&job);
            self.deliver(job.leader, &resp);
            for f in followers {
                self.deliver(f, &resp);
            }
        }
    }

    /// Queues a computed response on a waiting connection and pushes its
    /// bytes as far as the socket allows right now.
    fn deliver(&mut self, to: Requester, resp: &Response) {
        let Some(conn) = self.conns.get(&to.conn) else {
            // The connection died while waiting; the work (possibly shared
            // with live followers) is simply unclaimed.
            return;
        };
        let close = conn.close_when_answered || self.draining;
        self.answer(to.conn, resp, close, true);
        self.drive(to.conn);
    }

    /// Answers a leader and its followers whose deadline expired while
    /// queued: 408 for a client-set deadline, 429 for the server default.
    fn expire(&mut self, leader: Requester, followers: &[Requester]) {
        for r in std::iter::once(&leader).chain(followers) {
            self.expire_one(*r);
        }
    }

    /// Answers one requester whose own deadline expired.
    fn expire_one(&mut self, r: Requester) {
        self.metrics
            .deadline_expired_total
            .fetch_add(1, Ordering::Relaxed);
        self.deliver(r, &expiry_response(r.client_deadline));
    }

    /// Periodic maintenance: stalled/idle connection closes, queued-job
    /// deadline expiry, rate-bucket pruning.
    fn sweep(&mut self, now: Instant) {
        let io_timeout = Duration::from_millis(self.config.timeout_ms.clamp(100, 60_000));
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| match c.state {
                // Idle keep-alive and mid-request stalls both close at the
                // I/O timeout; a waiting request's lifetime is governed by
                // its deadline, not socket activity.
                ConnState::Reading | ConnState::Writing => {
                    now.saturating_duration_since(c.last_activity) > io_timeout
                }
                ConnState::Waiting => false,
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            self.close_conn(token);
        }

        let expired = self.sched.take_expired(now);
        if !expired.is_empty() {
            self.sched_dirty = true;
        }
        for (job, followers) in expired {
            self.expire(job.leader, &followers);
        }
        // Followers carry their own deadlines (often tighter than the
        // leader they coalesced onto): expire them individually, even
        // while the shared job is still queued or in flight.
        for follower in self.sched.take_expired_followers(now) {
            self.expire_one(follower);
        }
        self.sched.prune_buckets(now, Duration::from_secs(120));

        // Backstop for a pause caused by non-connection descriptors
        // (cache files, worker pipes) being freed: retry accepting even
        // if no connection closed in the meantime.
        if self.conns.len() < self.config.max_conns {
            self.resume_accepts();
        }
    }

    /// Deregisters and drops one connection, flushing its pending latency
    /// sample (histograms must reconcile with status counts even when the
    /// client vanished before the response drained).
    fn close_conn(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            if let Some(started) = conn.take_latency() {
                self.metrics.record_latency(started.elapsed());
            }
            self.poller.deregister(fd_of(conn.stream()));
            self.metrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            // The close frees a descriptor: if accepts were parked on
            // EMFILE/ENFILE, there is room again now.
            if self.conns.len() < self.config.max_conns {
                self.resume_accepts();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_exhaustion_is_transient_not_fatal() {
        assert!(fd_exhausted(&io::Error::from_raw_os_error(23))); // ENFILE
        assert!(fd_exhausted(&io::Error::from_raw_os_error(24))); // EMFILE
        assert!(!fd_exhausted(&io::Error::from_raw_os_error(9))); // EBADF
        assert!(!fd_exhausted(&io::Error::new(io::ErrorKind::Other, "x")));
    }

    #[cfg(unix)]
    #[test]
    fn bind_clamps_max_conns_under_the_fd_soft_limit() {
        let Some(limit) = fd_soft_limit() else {
            return;
        };
        if limit == u64::MAX {
            return; // unlimited: nothing to clamp against
        }
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: usize::MAX,
            ..ServeConfig::default()
        })
        .expect("bind");
        let clamped = server.service.config().max_conns as u64;
        assert!(clamped < limit, "{clamped} vs limit {limit}");
    }
}

/// The response for a request whose deadline passed before compute.
fn expiry_response(client_set: bool) -> Response {
    let status = if client_set { 408 } else { 429 };
    Response::error(
        status,
        "deadline expired before the request could be handled",
    )
    .with_header("retry-after", "1")
}
