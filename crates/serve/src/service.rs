//! Request routing and the JSON endpoint handlers.
//!
//! Everything here sits behind the trust boundary: request bodies are
//! attacker-shaped, so every parse returns an [`ApiError`] (rendered as a
//! JSON error document with the right status) and no handler path may
//! panic or index blindly. Simulation is sourced exclusively through the
//! process-global [`Harness`], so concurrent and repeated requests share
//! traces and finished cells instead of recomputing them.

use std::sync::Arc;
use std::time::Duration;

use fdip::{spec, FrontendConfig};
use fdip_sim::experiments::{self, RESULTS_SCHEMA_VERSION};
use fdip_sim::harness::Harness;
use fdip_sim::workload::{WorkloadSource, WorkloadSpec};
use fdip_trace::gen::Profile;
use fdip_types::{Json, ToJson};

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::sched::{valid_tenant, CoalesceKey};
use crate::ServeConfig;

/// The tenant bucket for requests without an `x-fdip-tenant` header.
pub const DEFAULT_TENANT: &str = "default";

/// True for the routes whose handlers run simulations — the ones that go
/// through the scheduler instead of being answered on the event loop.
pub fn is_sim_route(req: &Request) -> bool {
    req.method == "POST" && (req.path == "/v1/run" || req.path == "/v1/compare")
}

/// True for the routes the event loop hands to the worker pool rather
/// than answering inline: the simulation POSTs plus
/// `GET /v1/experiments/{id}`, whose handler does blocking filesystem
/// reads of arbitrarily large persisted documents — disk latency
/// belongs on a worker seat, never on the loop thread that keeps
/// `/healthz` and `/metrics` live.
pub fn is_pooled_route(req: &Request) -> bool {
    is_sim_route(req) || (req.method == "GET" && req.path.starts_with("/v1/experiments/"))
}

/// The coalescing identity of a simulation request: exact path and body
/// bytes. Headers are deliberately excluded — deadline and tenant shape
/// *admission*, not the computed document, so byte-identical bodies may
/// share one simulation.
pub fn sim_coalesce_key(req: &Request) -> Option<CoalesceKey> {
    is_sim_route(req).then(|| CoalesceKey {
        path: req.path.clone(),
        body: req.body.clone(),
    })
}

/// The request's tenant: a validated `x-fdip-tenant` header, or
/// [`DEFAULT_TENANT`].
///
/// # Errors
///
/// 400 when the header is present but not a valid tenant name (empty,
/// over 64 bytes, or outside `[A-Za-z0-9._-]`).
pub fn tenant_of(req: &Request) -> Result<String, ApiError> {
    match req.header("x-fdip-tenant") {
        None => Ok(DEFAULT_TENANT.to_string()),
        Some(raw) if valid_tenant(raw) => Ok(raw.to_string()),
        Some(raw) => Err(ApiError::bad(format!(
            "invalid x-fdip-tenant {raw:?}: 1..=64 chars of [A-Za-z0-9._-]"
        ))),
    }
}

/// The client's requested deadline budget from `x-fdip-deadline-ms`.
///
/// Strict by design (this is the malformed-deadline bugfix): the header
/// must be a positive decimal integer of milliseconds. `"500ms"`,
/// negatives, zero, and overflow are all 400s — previously they were
/// silently ignored and the request ran with the server default, so a
/// client asking for a tight deadline could wait 30s instead.
///
/// # Errors
///
/// 400 with a structured message naming the header and the accepted form.
pub fn parse_deadline_ms(req: &Request) -> Result<Option<Duration>, ApiError> {
    match req.header("x-fdip-deadline-ms") {
        None => Ok(None),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Some(Duration::from_millis(ms))),
            _ => Err(ApiError::bad(format!(
                "invalid x-fdip-deadline-ms {raw:?}: must be a positive integer of milliseconds"
            ))),
        },
    }
}

/// An endpoint failure: status code plus a human-readable message that
/// becomes the `{"error": …}` body.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Problem description.
    pub message: String,
}

impl ApiError {
    fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }

    fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            message: message.into(),
        }
    }
}

impl From<ApiError> for Response {
    fn from(err: ApiError) -> Response {
        Response::error(err.status, &err.message)
    }
}

type ApiResult<T> = Result<T, ApiError>;

/// The route table plus everything handlers need. One instance is shared
/// by all worker threads.
pub struct Service {
    config: ServeConfig,
    metrics: Arc<Metrics>,
    harness: &'static Harness,
}

impl Service {
    /// A service over the process-global harness.
    pub fn new(config: ServeConfig, metrics: Arc<Metrics>) -> Service {
        Service {
            config,
            metrics,
            harness: Harness::global(),
        }
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Routes one request. `queue_depth` is the live queue occupancy, for
    /// the `/metrics` gauges.
    pub fn route(&self, req: &Request, queue_depth: usize) -> Response {
        const ROUTES: [&str; 4] = ["/healthz", "/metrics", "/v1/run", "/v1/compare"];
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
            ("GET", "/metrics") => Response::text(
                200,
                self.metrics.render(
                    queue_depth,
                    self.config.queue_depth,
                    &self.harness.stats(),
                    &self.harness.fleet_node_health(),
                ),
            ),
            ("POST", "/v1/run") => self.run(req).unwrap_or_else(Response::from),
            ("POST", "/v1/compare") => self.compare(req).unwrap_or_else(Response::from),
            ("GET", path) if path.starts_with("/v1/experiments/") => {
                let id = &path["/v1/experiments/".len()..];
                self.experiment(id).unwrap_or_else(Response::from)
            }
            (_, path) if ROUTES.contains(&path) || path.starts_with("/v1/experiments/") => {
                Response::error(405, "method not allowed for this path")
            }
            _ => Response::error(404, "no such endpoint"),
        }
    }

    /// `POST /v1/run` — simulate one `(workload, config)` cell.
    fn run(&self, req: &Request) -> ApiResult<Response> {
        let doc = parse_body(req)?;
        reject_unknown_keys(&doc, &["workload", "trace_len", "config"], "request")?;
        let spec = parse_workload(doc.get("workload"))?;
        let trace_len = parse_trace_len(doc.get("trace_len"), self.config.max_trace_len)?;
        let config = match doc.get("config") {
            Some(c) => parse_config(c)?,
            None => FrontendConfig::default(),
        };

        let configs = vec![("run".to_string(), config)];
        let results = self
            .harness
            .run_matrix(std::slice::from_ref(&spec), trace_len, &configs);
        // `get`, never `cell`: a missing cell must surface as a JSON 500,
        // not a panic that kills the worker.
        let cell = results
            .get(&spec.name, "run")
            .ok_or_else(|| ApiError::internal("simulation produced no result cell"))?;
        if let Some(err) = &cell.error {
            return Ok(cell_failure_response(&spec.name, "run", err));
        }
        let body = Json::obj([
            ("schema_version", Json::uint(RESULTS_SCHEMA_VERSION)),
            ("workload", Json::str(&spec.name)),
            ("trace_len", Json::uint(trace_len as u64)),
            ("ipc", Json::num(cell.stats.ipc())),
            ("l1i_mpki", Json::num(cell.stats.l1i_mpki())),
            ("cell", cell.to_json()),
            ("harness", self.harness.stats().to_json()),
        ]);
        Ok(Response::json(200, body.to_string()))
    }

    /// `POST /v1/compare` — a config list against the no-prefetch baseline.
    fn compare(&self, req: &Request) -> ApiResult<Response> {
        let doc = parse_body(req)?;
        reject_unknown_keys(&doc, &["workload", "trace_len", "configs"], "request")?;
        let spec = parse_workload(doc.get("workload"))?;
        let trace_len = parse_trace_len(doc.get("trace_len"), self.config.max_trace_len)?;
        let raw_configs = doc
            .get("configs")
            .and_then(Json::as_array)
            .ok_or_else(|| ApiError::bad("\"configs\" must be an array of config objects"))?;
        if raw_configs.is_empty() || raw_configs.len() > self.config.max_configs {
            return Err(ApiError::bad(format!(
                "\"configs\" must hold 1..={} entries",
                self.config.max_configs
            )));
        }

        // One batched matrix: the baseline and every candidate share the
        // workload's trace, and identical candidates collapse in the
        // content-keyed cell cache.
        let mut configs = vec![("baseline".to_string(), FrontendConfig::default())];
        for (i, raw) in raw_configs.iter().enumerate() {
            let label = match raw.get("label") {
                Some(l) => l
                    .as_str()
                    .ok_or_else(|| ApiError::bad("config \"label\" must be a string"))?
                    .to_string(),
                None => format!("config-{i}"),
            };
            if configs.iter().any(|(l, _)| *l == label) {
                return Err(ApiError::bad(format!(
                    "duplicate or reserved config label {label:?}"
                )));
            }
            configs.push((label, parse_config(raw)?));
        }

        let results = self
            .harness
            .run_matrix(std::slice::from_ref(&spec), trace_len, &configs);
        let baseline = results
            .get(&spec.name, "baseline")
            .ok_or_else(|| ApiError::internal("baseline cell missing from results"))?;
        // Without a baseline nothing downstream is computable: the whole
        // request degrades to a structured 502. A failed *candidate*, by
        // contrast, only poisons its own row below.
        if let Some(err) = &baseline.error {
            return Ok(cell_failure_response(&spec.name, "baseline", err));
        }
        let mut rows = Vec::new();
        for (label, _) in configs.iter().skip(1) {
            let cell = results
                .get(&spec.name, label)
                .ok_or_else(|| ApiError::internal("config cell missing from results"))?;
            if let Some(err) = &cell.error {
                rows.push(Json::obj([
                    ("label", Json::str(label)),
                    ("error", err.to_json()),
                ]));
                continue;
            }
            rows.push(Json::obj([
                ("label", Json::str(label)),
                // `try_speedup_over` reports an incomparable or degenerate
                // pair as null rather than panicking mid-request.
                (
                    "speedup",
                    cell.stats.try_speedup_over(&baseline.stats).to_json(),
                ),
                (
                    "miss_coverage",
                    Json::num(cell.stats.miss_coverage_vs(&baseline.stats)),
                ),
                ("ipc", Json::num(cell.stats.ipc())),
                ("l1i_mpki", Json::num(cell.stats.l1i_mpki())),
                ("bus_utilization", Json::num(cell.stats.bus_utilization())),
            ]));
        }
        let body = Json::obj([
            ("schema_version", Json::uint(RESULTS_SCHEMA_VERSION)),
            ("workload", Json::str(&spec.name)),
            ("trace_len", Json::uint(trace_len as u64)),
            (
                "baseline",
                Json::obj([
                    ("ipc", Json::num(baseline.stats.ipc())),
                    ("l1i_mpki", Json::num(baseline.stats.l1i_mpki())),
                ]),
            ),
            ("results", Json::Arr(rows)),
            ("harness", self.harness.stats().to_json()),
        ]);
        Ok(Response::json(200, body.to_string()))
    }

    /// `GET /v1/experiments/{id}` — a persisted `results/` document.
    fn experiment(&self, id: &str) -> ApiResult<Response> {
        // Resolving through the registry (never the filesystem) makes path
        // traversal structurally impossible: only known ids reach `join`.
        if experiments::find(id).is_none() {
            return Err(ApiError::not_found(format!(
                "unknown experiment {id:?} (one of: {})",
                experiments::all()
                    .iter()
                    .map(|e| e.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        let path = self.config.results_dir.join(format!("{id}.json"));
        let content = std::fs::read_to_string(&path).map_err(|_| {
            ApiError::not_found(format!(
                "experiment {id} has no persisted results; run its exp_ binary first"
            ))
        })?;
        let doc = Json::parse(&content).map_err(|e| {
            ApiError::internal(format!(
                "persisted document for {id} is not valid json: {e}"
            ))
        })?;
        match doc.get("schema_version").and_then(Json::as_u64) {
            Some(RESULTS_SCHEMA_VERSION) => Ok(Response::json(200, content)),
            Some(v) => Err(ApiError::internal(format!(
                "persisted document has schema_version {v}, this server understands {RESULTS_SCHEMA_VERSION}"
            ))),
            None => Err(ApiError::internal(
                "persisted document is missing schema_version",
            )),
        }
    }
}

/// A structured 502 for a simulation cell that failed inside the harness
/// (injected fault, panic, or wall-clock timeout). The `cell_error` object
/// carries the typed [`fdip_sim::fault::CellError`] so clients can branch
/// on `kind` and decide whether a retry is worthwhile.
fn cell_failure_response(
    workload: &str,
    config: &str,
    err: &fdip_sim::fault::CellError,
) -> Response {
    let body = Json::obj([
        ("error", Json::str(format!("simulation cell failed: {err}"))),
        ("workload", Json::str(workload)),
        ("config", Json::str(config)),
        ("cell_error", err.to_json()),
    ]);
    Response::json(502, body.to_string())
}

/// Parses the request body as a JSON object.
fn parse_body(req: &Request) -> ApiResult<Json> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| ApiError::bad("request body is not utf-8"))?;
    if text.trim().is_empty() {
        return Err(ApiError::bad("request body must be a json object"));
    }
    let doc = Json::parse(text).map_err(|e| ApiError::bad(format!("invalid json body: {e}")))?;
    if doc.as_object().is_none() {
        return Err(ApiError::bad("request body must be a json object"));
    }
    Ok(doc)
}

/// Rejects keys outside `allowed` so typos fail loudly instead of being
/// silently ignored (the JSON analogue of `Args::reject_unknown`).
fn reject_unknown_keys(doc: &Json, allowed: &[&str], what: &str) -> ApiResult<()> {
    for (key, _) in doc.as_object().into_iter().flatten() {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad(format!(
                "unknown {what} key {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Parses a workload document into a [`WorkloadSpec`]. Exactly one of
/// three source keys selects the trace pipeline:
///
/// * `{"profile": "...", "seed": N}` — the synthetic CFG generator;
/// * `{"program": "..."}` — an assembled `fdip-isa` library program;
/// * `{"scenario": "...", "seed": N}` — a multi-phase scenario.
///
/// The spec's name encodes source *and* seed where the seed matters: the
/// harness trace store is keyed by `(name, trace_len)`, so every distinct
/// generator input must map to a distinct name for cache sharing to stay
/// sound. (Program execution ignores the seed, so programs reject it
/// rather than silently fork cache identities.)
fn parse_workload(raw: Option<&Json>) -> ApiResult<WorkloadSpec> {
    let raw = raw.ok_or_else(|| ApiError::bad("\"workload\" is required"))?;
    reject_unknown_keys(raw, &["profile", "program", "scenario", "seed"], "workload")?;
    let sources: Vec<&str> = ["profile", "program", "scenario"]
        .into_iter()
        .filter(|k| raw.get(k).is_some())
        .collect();
    let key = match sources.as_slice() {
        [one] => *one,
        _ => {
            return Err(ApiError::bad(
                "workload needs exactly one of \"profile\", \"program\", \"scenario\"",
            ))
        }
    };
    let name = raw
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad(format!("workload {key:?} must be a string")))?;
    let seed = match raw.get("seed") {
        None => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| ApiError::bad("workload \"seed\" must be an unsigned integer"))?,
    };
    match key {
        "profile" => {
            let profile = Profile::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| {
                    ApiError::bad(format!(
                        "unknown profile {name:?} (client|server|microloop|jumpy)"
                    ))
                })?;
            Ok(WorkloadSpec {
                name: format!("{}~s{}", profile.name(), seed),
                source: WorkloadSource::Profile(profile),
                seed,
            })
        }
        "program" => {
            if raw.get("seed").is_some() {
                return Err(ApiError::bad(
                    "workload \"seed\" does not apply to programs (execution is deterministic)",
                ));
            }
            WorkloadSpec::program(name).ok_or_else(|| {
                ApiError::bad(format!(
                    "unknown program {name:?} ({})",
                    fdip_isa::library::names().join("|")
                ))
            })
        }
        _ => WorkloadSpec::scenario(name, seed).ok_or_else(|| {
            ApiError::bad(format!(
                "unknown scenario {name:?} ({})",
                fdip_isa::scenario::names().join("|")
            ))
        }),
    }
}

/// Validates `trace_len` against the server's configured ceiling.
fn parse_trace_len(raw: Option<&Json>, max: usize) -> ApiResult<usize> {
    const DEFAULT: usize = 60_000;
    const MIN: usize = 1_000;
    let len = match raw {
        None => DEFAULT as u64,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ApiError::bad("\"trace_len\" must be an unsigned integer"))?,
    };
    if (len as usize) < MIN || len as usize > max {
        return Err(ApiError::bad(format!(
            "\"trace_len\" must be in {MIN}..={max}"
        )));
    }
    Ok(len as usize)
}

/// Parses a config object in the CLI's spec mini-language (string fields
/// use the same `kind:size` specs as the `fdip run` flags).
fn parse_config(raw: &Json) -> ApiResult<FrontendConfig> {
    reject_unknown_keys(
        raw,
        &[
            "label",
            "prefetcher",
            "cpf",
            "btb",
            "predictor",
            "ftq",
            "l1_kb",
            "l2_latency",
            "mem_latency",
        ],
        "config",
    )?;
    let str_field = |key: &str| -> ApiResult<Option<&str>> {
        match raw.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| ApiError::bad(format!("config {key:?} must be a string"))),
        }
    };
    let uint_field = |key: &str| -> ApiResult<Option<u64>> {
        match raw.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                ApiError::bad(format!("config {key:?} must be an unsigned integer"))
            }),
        }
    };

    let cpf = match str_field("cpf")? {
        Some(raw) => spec::parse_cpf(raw).map_err(ApiError::bad)?,
        None => fdip::CpfMode::None,
    };
    let mut config = FrontendConfig::default();
    if let Some(raw) = str_field("prefetcher")? {
        config.prefetcher = spec::parse_prefetcher(raw, cpf).map_err(ApiError::bad)?;
    }
    if let Some(raw) = str_field("btb")? {
        config.btb = spec::parse_btb(raw).map_err(ApiError::bad)?;
    }
    if let Some(raw) = str_field("predictor")? {
        config.predictor = spec::parse_predictor(raw).map_err(ApiError::bad)?;
    }
    if let Some(ftq) = uint_field("ftq")? {
        config.ftq_entries = ftq as usize;
    }
    if let Some(l1_kb) = uint_field("l1_kb")? {
        spec::set_l1_kb(&mut config, l1_kb).map_err(ApiError::bad)?;
    }
    if let Some(l2) = uint_field("l2_latency")? {
        config.mem.l2_latency = l2;
    }
    if let Some(mem) = uint_field("mem_latency")? {
        config.mem.mem_latency = mem;
    }
    config.check().map_err(ApiError::bad)?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    fn service() -> Service {
        service_in("shared")
    }

    /// A service whose results dir is private to `tag` (tests that write
    /// documents must not race each other).
    fn service_in(tag: &str) -> Service {
        let dir = std::env::temp_dir().join(format!("fdip-serve-service-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let config = ServeConfig {
            results_dir: dir,
            ..ServeConfig::default()
        };
        Service::new(config, Arc::new(Metrics::default()))
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn body_str(resp: &Response) -> String {
        let mut buf = Vec::new();
        resp.write_to(&mut buf, false).unwrap();
        let text = String::from_utf8(buf).unwrap();
        text.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let s = service();
        assert_eq!(s.route(&get("/healthz"), 0).status, 200);
        assert_eq!(s.route(&get("/nope"), 0).status, 404);
        assert_eq!(s.route(&post("/healthz", ""), 0).status, 405);
        assert_eq!(s.route(&get("/v1/run"), 0).status, 405);
    }

    #[test]
    fn metrics_render_through_the_route() {
        let s = service();
        let resp = s.route(&get("/metrics"), 3);
        assert_eq!(resp.status, 200);
        let body = body_str(&resp);
        assert!(body.contains("fdip_serve_queue_depth 3"), "{body}");
        assert!(body.contains("fdip_serve_harness_cells_simulated_total"));
    }

    #[test]
    fn run_simulates_and_reports() {
        let s = service();
        let resp = s.route(
            &post(
                "/v1/run",
                r#"{"workload": {"profile": "microloop", "seed": 9},
                   "trace_len": 1000,
                   "config": {"prefetcher": "fdip", "cpf": "remove"}}"#,
            ),
            0,
        );
        assert_eq!(resp.status, 200, "{}", body_str(&resp));
        let doc = Json::parse(&body_str(&resp)).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("microloop~s9")
        );
        assert_eq!(doc.get("trace_len").and_then(Json::as_u64), Some(1000));
        assert!(doc.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
        let cell = doc.get("cell").unwrap();
        assert!(cell.get("stats").unwrap().get("instructions").is_some());
    }

    #[test]
    fn run_simulates_program_and_scenario_workloads() {
        let s = service();
        let resp = s.route(
            &post(
                "/v1/run",
                r#"{"workload": {"program": "fib"}, "trace_len": 1000}"#,
            ),
            0,
        );
        assert_eq!(resp.status, 200, "{}", body_str(&resp));
        let doc = Json::parse(&body_str(&resp)).unwrap();
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("fib"));
        assert!(doc.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);

        let resp = s.route(
            &post(
                "/v1/run",
                r#"{"workload": {"scenario": "irq-vm", "seed": 5}, "trace_len": 1000}"#,
            ),
            0,
        );
        assert_eq!(resp.status, 200, "{}", body_str(&resp));
        let doc = Json::parse(&body_str(&resp)).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("irq-vm~s5")
        );
    }

    #[test]
    fn run_rejects_bad_bodies_with_400() {
        let s = service();
        for (body, needle) in [
            ("", "must be a json object"),
            ("[1,2]", "must be a json object"),
            ("{\"workload\"", "invalid json"),
            (r#"{"trace_len": 1000}"#, "is required"),
            (r#"{"workload": {"profile": "warp9"}}"#, "unknown profile"),
            (
                r#"{"workload": {"profile": "microloop"}, "trace_len": 10}"#,
                "trace_len",
            ),
            (
                r#"{"workload": {"profile": "microloop"}, "frobnicate": 1}"#,
                "unknown request key",
            ),
            (
                r#"{"workload": {"profile": "microloop", "nope": 2}}"#,
                "unknown workload key",
            ),
            (
                r#"{"workload": {"profile": "microloop"}, "config": {"btb": "conventional:1001"}}"#,
                "multiple of 8",
            ),
            (
                r#"{"workload": {"profile": "microloop"}, "config": {"ftq": 0}}"#,
                "ftq",
            ),
            (r#"{"workload": {"program": "warp9"}}"#, "unknown program"),
            (r#"{"workload": {"scenario": "warp9"}}"#, "unknown scenario"),
            (
                r#"{"workload": {"profile": "microloop", "program": "bubble"}}"#,
                "exactly one of",
            ),
            (r#"{"workload": {"seed": 4}}"#, "exactly one of"),
            (
                r#"{"workload": {"program": "bubble", "seed": 4}}"#,
                "does not apply to programs",
            ),
        ] {
            let resp = s.route(&post("/v1/run", body), 0);
            assert_eq!(resp.status, 400, "{body}");
            let text = body_str(&resp);
            assert!(text.contains(needle), "{body} -> {text}");
        }
    }

    #[test]
    fn compare_reports_speedups_against_baseline() {
        let s = service();
        let resp = s.route(
            &post(
                "/v1/compare",
                r#"{"workload": {"profile": "microloop", "seed": 3},
                   "trace_len": 1000,
                   "configs": [{"label": "fdip", "prefetcher": "fdip"},
                               {"label": "nlp", "prefetcher": "nlp"}]}"#,
            ),
            0,
        );
        assert_eq!(resp.status, 200, "{}", body_str(&resp));
        let doc = Json::parse(&body_str(&resp)).unwrap();
        let rows = doc.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("label").and_then(Json::as_str), Some("fdip"));
        assert!(rows[0].get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(doc.get("baseline").unwrap().get("ipc").is_some());
    }

    #[test]
    fn compare_rejects_reserved_and_duplicate_labels() {
        let s = service();
        for configs in [
            r#"[{"label": "baseline"}]"#,
            r#"[{"label": "x"}, {"label": "x"}]"#,
            r#"[]"#,
        ] {
            let body = format!(
                r#"{{"workload": {{"profile": "microloop"}}, "trace_len": 1000, "configs": {configs}}}"#
            );
            assert_eq!(
                s.route(&post("/v1/compare", &body), 0).status,
                400,
                "{configs}"
            );
        }
    }

    #[test]
    fn experiments_endpoint_validates_through_the_registry() {
        let s = service_in("registry");
        // Unknown id: 404 listing valid ids, and no filesystem access at
        // all for traversal-shaped input.
        for id in ["zz", "../../etc/passwd", "x2/../x3", ""] {
            let resp = s.route(&get(&format!("/v1/experiments/{id}")), 0);
            assert_eq!(resp.status, 404, "{id}");
            assert!(body_str(&resp).contains("unknown experiment"), "{id}");
        }
        // Known id without a persisted document: 404 with a hint.
        let no_doc = s.route(&get("/v1/experiments/e01"), 0);
        assert_eq!(no_doc.status, 404);
        assert!(body_str(&no_doc).contains("no persisted results"));
    }

    #[test]
    fn experiments_endpoint_serves_schema_checked_documents() {
        let s = service_in("documents");
        let dir = s.config().results_dir.clone();
        std::fs::write(
            dir.join("e01.json"),
            r#"{"schema_version": 1, "id": "e01", "tables": []}"#,
        )
        .unwrap();
        let ok = s.route(&get("/v1/experiments/e01"), 0);
        assert_eq!(ok.status, 200);
        assert!(
            body_str(&ok).contains("\"id\": \"e01\"") || body_str(&ok).contains("\"id\":\"e01\"")
        );

        std::fs::write(dir.join("e02.json"), r#"{"schema_version": 99}"#).unwrap();
        let bad_version = s.route(&get("/v1/experiments/e02"), 0);
        assert_eq!(bad_version.status, 500);
        assert!(body_str(&bad_version).contains("schema_version 99"));

        std::fs::write(dir.join("e03.json"), "not json at all").unwrap();
        let bad_json = s.route(&get("/v1/experiments/e03"), 0);
        assert_eq!(bad_json.status, 500);
    }

    #[test]
    fn failed_cells_become_structured_502s() {
        use fdip_sim::fault::FaultPlan;
        let s = service();
        let harness = Harness::global();
        // Coordinates pin the plan to seeds no other test uses, so the
        // plan cannot fire for tests sharing the global harness.
        harness.set_fault_plan(Some(
            FaultPlan::parse("panic@microloop~s404/run,panic@microloop~s405/baseline").unwrap(),
        ));
        let run = s.route(
            &post(
                "/v1/run",
                r#"{"workload": {"profile": "microloop", "seed": 404}, "trace_len": 1000}"#,
            ),
            0,
        );
        let compare = s.route(
            &post(
                "/v1/compare",
                r#"{"workload": {"profile": "microloop", "seed": 405},
                   "trace_len": 1000,
                   "configs": [{"label": "fdip", "prefetcher": "fdip"}]}"#,
            ),
            0,
        );
        harness.set_fault_plan(None);

        assert_eq!(run.status, 502, "{}", body_str(&run));
        let doc = Json::parse(&body_str(&run)).unwrap();
        assert_eq!(
            doc.get("cell_error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("panic")
        );
        assert_eq!(doc.get("config").and_then(Json::as_str), Some("run"));

        assert_eq!(compare.status, 502, "{}", body_str(&compare));
        let doc = Json::parse(&body_str(&compare)).unwrap();
        assert_eq!(doc.get("config").and_then(Json::as_str), Some("baseline"));
    }

    #[test]
    fn compare_marks_failed_candidates_without_failing_the_request() {
        use fdip_sim::fault::FaultPlan;
        let s = service();
        let harness = Harness::global();
        harness.set_fault_plan(Some(FaultPlan::parse("panic@microloop~s406/bad").unwrap()));
        let resp = s.route(
            &post(
                "/v1/compare",
                r#"{"workload": {"profile": "microloop", "seed": 406},
                   "trace_len": 1000,
                   "configs": [{"label": "bad", "prefetcher": "fdip"},
                               {"label": "ok", "prefetcher": "nlp"}]}"#,
            ),
            0,
        );
        harness.set_fault_plan(None);
        assert_eq!(resp.status, 200, "{}", body_str(&resp));
        let doc = Json::parse(&body_str(&resp)).unwrap();
        let rows = doc.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("panic")
        );
        assert!(rows[0].get("speedup").is_none());
        assert!(rows[1].get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn deadline_header_parses_strictly() {
        let with = |value: &str| Request {
            method: "POST".to_string(),
            path: "/v1/run".to_string(),
            headers: vec![("x-fdip-deadline-ms".to_string(), value.to_string())],
            body: Vec::new(),
        };
        assert_eq!(parse_deadline_ms(&post("/v1/run", "")).unwrap(), None);
        assert_eq!(
            parse_deadline_ms(&with("250")).unwrap(),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            parse_deadline_ms(&with(" 250 ")).unwrap(),
            Some(Duration::from_millis(250))
        );
        // The bugfix: every malformed shape is a 400, never silence.
        for bad in ["500ms", "-1", "0", "1e3", "", "18446744073709551616"] {
            let err = parse_deadline_ms(&with(bad)).unwrap_err();
            assert_eq!(err.status, 400, "{bad:?}");
            assert!(err.message.contains("x-fdip-deadline-ms"), "{bad:?}");
        }
    }

    #[test]
    fn tenant_header_validates_or_defaults() {
        let with = |value: &str| Request {
            method: "POST".to_string(),
            path: "/v1/run".to_string(),
            headers: vec![("x-fdip-tenant".to_string(), value.to_string())],
            body: Vec::new(),
        };
        assert_eq!(tenant_of(&post("/v1/run", "")).unwrap(), DEFAULT_TENANT);
        assert_eq!(tenant_of(&with("team-a")).unwrap(), "team-a");
        for bad in ["", "has space", "quote\""] {
            assert_eq!(tenant_of(&with(bad)).unwrap_err().status, 400, "{bad:?}");
        }
    }

    #[test]
    fn pooled_routes_cover_sims_and_experiment_reads() {
        // Experiment reads touch the filesystem, so they must leave the
        // loop thread — but they are not sim routes and never coalesce.
        assert!(is_pooled_route(&post("/v1/run", "{}")));
        assert!(is_pooled_route(&post("/v1/compare", "{}")));
        assert!(is_pooled_route(&get("/v1/experiments/e01")));
        assert!(!is_sim_route(&get("/v1/experiments/e01")));
        assert!(sim_coalesce_key(&get("/v1/experiments/e01")).is_none());
        assert!(!is_pooled_route(&get("/healthz")));
        assert!(!is_pooled_route(&get("/metrics")));
        assert!(!is_pooled_route(&post("/v1/experiments/e01", "")));
    }

    #[test]
    fn coalesce_keys_cover_sim_routes_only() {
        let a = post("/v1/run", r#"{"workload": {"profile": "microloop"}}"#);
        let b = post("/v1/run", r#"{"workload": {"profile": "microloop"}}"#);
        let c = post("/v1/run", r#"{"workload": {"profile": "jumpy"}}"#);
        assert!(is_sim_route(&a));
        assert_eq!(sim_coalesce_key(&a), sim_coalesce_key(&b));
        assert_ne!(sim_coalesce_key(&a), sim_coalesce_key(&c));
        assert!(sim_coalesce_key(&get("/metrics")).is_none());
        assert!(!is_sim_route(&get("/healthz")));
    }

    #[test]
    fn identical_requests_hit_the_cell_cache() {
        let s = service();
        let body = r#"{"workload": {"profile": "microloop", "seed": 77},
                       "trace_len": 1200}"#;
        let first = s.route(&post("/v1/run", body), 0);
        assert_eq!(first.status, 200);
        let before = Harness::global().stats();
        let second = s.route(&post("/v1/run", body), 0);
        assert_eq!(second.status, 200);
        let after = Harness::global().stats();
        // The repeat simulated nothing new.
        assert_eq!(after.cells_simulated, before.cells_simulated);
        assert_eq!(after.traces_generated, before.traces_generated);
        assert!(after.cell_hits > before.cell_hits);
    }
}
