//! A bounded MPMC queue on `Mutex` + `Condvar`: the hand-off between the
//! event loop and the compute workers.
//!
//! The loop [`try_push`](BoundedQueue::try_push)es dispatched jobs —
//! never more than one per free worker seat, so the push cannot hit the
//! bound in normal operation (admission-level shedding happens earlier,
//! in the scheduler) — and worker threads block in
//! [`pop`](BoundedQueue::pop). [`close`](BoundedQueue::close) starts a
//! graceful drain: pushes stop being accepted, pops keep returning queued
//! items until the queue is empty, then return `None` so workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for shedding.
    Full(T),
    /// The queue is closed (server shutting down).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. See the module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    takers: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            takers: Condvar::new(),
        }
    }

    /// Enqueues `item` if there is room, never blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError`] when the queue is full
    /// or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue mutex");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        self.takers.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained, in which case `None` tells the worker to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.takers.wait(inner).expect("queue mutex");
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex").closed = true;
        self.takers.notify_all();
    }

    /// Whether [`close`](Self::close) has been called (the server is
    /// draining).
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue mutex").closed
    }

    /// Items currently queued (a point-in-time snapshot for metrics).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_beyond_capacity_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err(PushError::Closed(12)));
        // Queued work still drains in order…
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        // …then pops return None.
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let taker = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(taker.join().unwrap(), Some(7));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for w in workers {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert!(!q.is_empty());
    }
}
