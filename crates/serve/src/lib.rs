//! `fdip-serve`: the reproduction's simulation service, on `std::net`
//! alone.
//!
//! The workspace's no-external-dependency policy extends to the server:
//! HTTP parsing ([`http`]), the readiness poller ([`poller`]), the
//! connection state machine ([`conn`]), the admission scheduler
//! ([`sched`]), the bounded dispatch queue ([`queue`]), Prometheus
//! metrics ([`metrics`]), and signal handling ([`signal`]) are all
//! hand-rolled on `std` (raw syscalls where the platform demands them).
//! What makes the service worth running is the shared
//! [`Harness`](fdip_sim::harness::Harness): every request is answered
//! through the process-global trace store and content-keyed cell cache,
//! so a warm server answers repeated and overlapping experiment queries
//! orders of magnitude faster than cold simulation, and concurrent
//! identical requests coalesce — at the harness *and*, since the event
//! loop, at the HTTP layer, where byte-identical in-flight `/v1/run`
//! requests share a single simulation and response.
//!
//! # Architecture
//!
//! One event-loop thread owns the listener and every connection
//! (nonblocking sockets, readiness from [`poller::Poller`]); a small
//! worker pool runs simulations. The paper's framing applies to the
//! serving layer itself: like FDIP decoupling branch prediction from
//! fetch, the loop decouples protocol I/O from simulation so a slow
//! client never stalls compute and a slow simulation never stalls I/O.
//! Requests flow `accept → read/parse → admit (rate limit, coalesce,
//! shed) → per-tenant fair queue → worker → write`, with `/healthz` and
//! `/metrics` answered inline by the loop so they stay responsive under
//! full compute saturation (`GET /v1/experiments` reads from disk and
//! therefore rides the worker pool like the simulation routes).
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus text: request counters, queue/in-flight gauges, latency histogram, harness cache counters |
//! | `POST /v1/run` | simulate one `(workload, config)` cell |
//! | `POST /v1/compare` | a config list vs the no-prefetch baseline: speedups + miss coverage |
//! | `GET /v1/experiments/{id}` | a persisted, schema-versioned `results/` document |
//!
//! # Overload, fairness, and deadlines
//!
//! Parsed simulation requests enter per-tenant FIFO queues
//! ([`sched::Scheduler`], tenant = `x-fdip-tenant` header) dispatched
//! round-robin, each tenant optionally rate-limited (`--tenant-rps`,
//! 429 beyond budget). When the global queue bound fills the request is
//! shed with `503` + `Retry-After` — written through the connection's
//! buffered nonblocking writer, so a stalled client can never block the
//! accept path. Offered load beyond capacity costs O(1) memory (the
//! connection count itself is bounded by `max_conns`). Every request
//! carries a deadline — `min(server timeout, client's x-fdip-deadline-ms
//! header)` measured from accept — and requests that expire while queued
//! are answered `408` (client-set deadline) or `429` (server default)
//! without starting the simulation; a coalesced follower expires on its
//! *own* deadline, independent of the leader it shares a simulation
//! with. A malformed deadline header is a `400`, never silently ignored.
//!
//! # Example
//!
//! ```no_run
//! use fdip_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:8080".to_string(),
//!     ..ServeConfig::default()
//! })?;
//! server.run()?; // blocks until SIGTERM / ctrl-c, then drains
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod http;
pub mod metrics;
pub mod poller;
pub mod queue;
pub mod sched;
pub mod service;
pub mod signal;

mod server;

pub use server::{Server, ShutdownHandle};

use std::path::PathBuf;

/// Server configuration, mirrored by the `fdip serve` CLI flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; 0 means `available_parallelism`.
    pub threads: usize,
    /// Bounded request-queue capacity; requests beyond it are shed
    /// with 503.
    pub queue_depth: usize,
    /// Most concurrently open connections; accepts beyond it are closed
    /// after an inline 503 (memory bound independent of `queue_depth`).
    pub max_conns: usize,
    /// Per-tenant rate limit in requests/second with a one-second burst;
    /// 0 disables limiting. Requests over budget are answered 429.
    pub tenant_rps: u64,
    /// Server-side deadline per request, in milliseconds. Also bounds how
    /// long an idle keep-alive connection may pin a worker.
    pub timeout_ms: u64,
    /// Directory holding persisted experiment documents for
    /// `GET /v1/experiments/{id}`.
    pub results_dir: PathBuf,
    /// Largest `trace_len` a request may ask for (memory bound).
    pub max_trace_len: usize,
    /// Most configs accepted by one `/v1/compare` request.
    pub max_configs: usize,
    /// Worker processes for isolated cell execution (`--isolate N`);
    /// 0 runs cells in-process as before. With isolation on, a cell that
    /// aborts or hangs costs one worker process and returns a structured
    /// 502 — the server and its other connections stay up.
    pub isolate_workers: usize,
    /// Comma-separated `fdip workerd` addresses for fleet cell dispatch
    /// (`--fleet`); `None` keeps cells on this machine. With a fleet,
    /// a killed or partitioned node costs a re-dispatch, never a failed
    /// request, and takes precedence over `isolate_workers`.
    pub fleet: Option<String>,
    /// Fleet liveness override (`--fleet-heartbeat-ms`): how long a
    /// silent node stays routable before it is reclassified for
    /// re-dispatch. `None` defers to `$FDIP_FLEET_HEARTBEAT_MS` or the
    /// built-in default. Ignored without `fleet`.
    pub fleet_heartbeat_ms: Option<u64>,
    /// Hedged-dispatch policy override (`--hedge-after-ms`): cells still
    /// in flight after the delay are speculatively re-dispatched to a
    /// second healthy node, first identical result winning. `None` defers
    /// to `$FDIP_FLEET_HEDGE_AFTER_MS` or off. Ignored without `fleet`.
    pub fleet_hedge: Option<fdip_sim::fleet::HedgePolicy>,
    /// Directory for the shared on-disk result cache (`--cache`); `None`
    /// disables persistence. With a cache attached, a restarted server is
    /// warm from its first request: finished cells are read back (CRC32-
    /// verified) instead of re-simulated.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: 0,
            queue_depth: 64,
            max_conns: 1024,
            tenant_rps: 0,
            timeout_ms: 30_000,
            results_dir: PathBuf::from("results"),
            max_trace_len: 2_000_000,
            max_configs: 16,
            isolate_workers: 0,
            fleet: None,
            fleet_heartbeat_ms: None,
            fleet_hedge: None,
            cache_dir: None,
        }
    }
}
