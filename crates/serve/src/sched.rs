//! Admission control for simulation requests: per-tenant fair queuing,
//! token-bucket rate limiting, and identical-request coalescing.
//!
//! The event loop owns one [`Scheduler`] and feeds it every parsed
//! `POST /v1/run` / `POST /v1/compare` request. Admission applies three
//! policies in order:
//!
//! 1. **Rate limiting** — each tenant (the `x-fdip-tenant` header, or
//!    `default`) owns a token bucket refilled at `tenant_rps` tokens per
//!    second with a one-second burst. An empty bucket means `429`;
//!    identical-request coalescing cannot bypass a tenant's budget
//!    because the bucket is charged first.
//! 2. **Coalescing** — a request byte-identical to one already queued or
//!    in flight attaches to it as a *follower*: no queue slot, no
//!    simulation, one shared response fanned out on completion. Sound
//!    because the response is a pure function of the request bytes (the
//!    same content-keyed identity the harness cell cache uses). What is
//!    shared is the *computation*, never the deadline: each follower
//!    keeps its own and is expired individually by
//!    [`Scheduler::take_expired_followers`], so a tight
//!    `x-fdip-deadline-ms` cannot be stretched by coalescing onto a
//!    leader with a lazier budget.
//! 3. **Capacity** — at most `capacity` leader requests may wait across
//!    all tenants; beyond that the request is shed (`503`). Followers
//!    are bounded by the server's connection cap, not the queue.
//!
//! Dispatch is round-robin across tenants with pending work, so one
//! tenant flooding the queue cannot starve another: each dispatch takes
//! the front request of the next tenant in rotation.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use crate::http::Request;

/// The identity two requests must share to coalesce: exact target and
/// body bytes. Exactness (rather than a hash) makes collisions — and
/// thus wrong shared answers — structurally impossible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoalesceKey {
    /// Request path.
    pub path: String,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

/// One party waiting for a response: a connection plus the instant its
/// request clock started (accept time for a connection's first request),
/// which is where client-observed latency is measured from.
#[derive(Debug, Clone, Copy)]
pub struct Requester {
    /// Connection token.
    pub conn: u64,
    /// Request clock origin (includes queue wait by construction).
    pub started: Instant,
    /// This requester's own absolute deadline. Coalescing shares the
    /// computation, never the deadline: a follower expires on its own
    /// clock even while the leader's job keeps running.
    pub deadline: Instant,
    /// Whether this requester supplied its own `x-fdip-deadline-ms`
    /// (picks 408 over 429 when the deadline expires).
    pub client_deadline: bool,
}

/// One admitted simulation request waiting for (or holding) a compute
/// seat.
#[derive(Debug)]
pub struct Job {
    /// Unique id, used to resolve completions.
    pub id: u64,
    /// The tenant that owns the queue slot.
    pub tenant: String,
    /// The parsed request to route.
    pub req: Request,
    /// The leader requester.
    pub leader: Requester,
    /// Absolute deadline; expiring in the queue answers 408/429.
    pub deadline: Instant,
    /// Coalescing identity (`None` for uncoalescable requests).
    pub key: Option<CoalesceKey>,
}

/// The admission verdict for one request.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued as a new leader job.
    Enqueued,
    /// Attached as a follower to the job with this id.
    Coalesced(u64),
    /// The tenant's token bucket is empty: respond 429.
    RateLimited,
    /// The queue is at capacity: respond 503.
    Shed,
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// See the module docs.
pub struct Scheduler {
    capacity: usize,
    tenant_rps: u64,
    queues: HashMap<String, VecDeque<Job>>,
    rotation: VecDeque<String>,
    pending: usize,
    in_flight: usize,
    pending_keys: HashMap<CoalesceKey, u64>,
    inflight_keys: HashMap<CoalesceKey, u64>,
    followers: HashMap<u64, Vec<Requester>>,
    buckets: HashMap<String, Bucket>,
    next_id: u64,
}

impl Scheduler {
    /// A scheduler bounding pending leaders at `capacity` (min 1) and
    /// each tenant at `tenant_rps` requests/second (0 = unlimited).
    pub fn new(capacity: usize, tenant_rps: u64) -> Scheduler {
        Scheduler {
            capacity: capacity.max(1),
            tenant_rps,
            queues: HashMap::new(),
            rotation: VecDeque::new(),
            pending: 0,
            in_flight: 0,
            pending_keys: HashMap::new(),
            inflight_keys: HashMap::new(),
            followers: HashMap::new(),
            buckets: HashMap::new(),
            next_id: 0,
        }
    }

    /// Admits one request for `tenant`: charges the rate bucket, then
    /// tries to coalesce, then takes a queue slot.
    pub fn admit(
        &mut self,
        tenant: &str,
        req: Request,
        leader: Requester,
        deadline: Instant,
        key: Option<CoalesceKey>,
        now: Instant,
    ) -> Admission {
        if !self.charge_bucket(tenant, now) {
            return Admission::RateLimited;
        }
        if let Some(k) = &key {
            let target = self
                .pending_keys
                .get(k)
                .or_else(|| self.inflight_keys.get(k))
                .copied();
            if let Some(job_id) = target {
                self.followers.entry(job_id).or_default().push(leader);
                return Admission::Coalesced(job_id);
            }
        }
        if self.pending >= self.capacity {
            return Admission::Shed;
        }
        let id = self.next_id;
        self.next_id += 1;
        if let Some(k) = &key {
            self.pending_keys.insert(k.clone(), id);
        }
        let job = Job {
            id,
            tenant: tenant.to_string(),
            req,
            leader,
            deadline,
            key,
        };
        let queue = self.queues.entry(tenant.to_string()).or_default();
        if queue.is_empty() {
            self.rotation.push_back(tenant.to_string());
        }
        queue.push_back(job);
        self.pending += 1;
        Admission::Enqueued
    }

    /// True if `tenant` has a token (and spends it). Buckets refill at
    /// `tenant_rps`/second up to a one-second burst.
    fn charge_bucket(&mut self, tenant: &str, now: Instant) -> bool {
        if self.tenant_rps == 0 {
            return true;
        }
        let rate = self.tenant_rps as f64;
        let bucket = self.buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: rate,
            refilled: now,
        });
        let dt = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * rate).min(rate);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The next job in tenant rotation, or `None` when nothing is
    /// pending. The job's coalescing key moves to the in-flight index so
    /// late identical requests still attach.
    pub fn next_job(&mut self) -> Option<Job> {
        let tenant = self.rotation.pop_front()?;
        let queue = self.queues.get_mut(&tenant).expect("rotation tenant");
        let job = queue.pop_front().expect("rotation implies pending work");
        if queue.is_empty() {
            self.queues.remove(&tenant);
        } else {
            self.rotation.push_back(tenant);
        }
        self.pending -= 1;
        self.in_flight += 1;
        if let Some(k) = &job.key {
            self.pending_keys.remove(k);
            self.inflight_keys.insert(k.clone(), job.id);
        }
        Some(job)
    }

    /// Resolves a dispatched job: clears its in-flight coalescing entry
    /// and returns the followers to fan the response out to.
    pub fn complete(&mut self, job: &Job) -> Vec<Requester> {
        self.in_flight -= 1;
        if let Some(k) = &job.key {
            self.inflight_keys.remove(k);
        }
        self.followers.remove(&job.id).unwrap_or_default()
    }

    /// Removes and returns every queued job whose deadline has passed,
    /// paired with its followers (they expire with their leader).
    pub fn take_expired(&mut self, now: Instant) -> Vec<(Job, Vec<Requester>)> {
        let mut expired = Vec::new();
        for queue in self.queues.values_mut() {
            let mut keep = VecDeque::with_capacity(queue.len());
            while let Some(job) = queue.pop_front() {
                if job.deadline <= now {
                    expired.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            *queue = keep;
        }
        if !expired.is_empty() {
            self.pending -= expired.len();
            self.queues.retain(|_, q| !q.is_empty());
            self.rotation.retain(|t| self.queues.contains_key(t));
        }
        expired
            .into_iter()
            .map(|job| {
                if let Some(k) = &job.key {
                    self.pending_keys.remove(k);
                }
                let followers = self.followers.remove(&job.id).unwrap_or_default();
                (job, followers)
            })
            .collect()
    }

    /// Removes and returns every follower whose own deadline has
    /// passed, including followers of in-flight jobs (which
    /// [`take_expired`](Scheduler::take_expired) never sees). The
    /// leader and its job are untouched: a follower that asked for a
    /// tighter deadline than the leader it coalesced onto expires
    /// alone, preserving the every-request-carries-a-deadline contract.
    pub fn take_expired_followers(&mut self, now: Instant) -> Vec<Requester> {
        let mut expired = Vec::new();
        for list in self.followers.values_mut() {
            list.retain(|r| {
                if r.deadline <= now {
                    expired.push(*r);
                    false
                } else {
                    true
                }
            });
        }
        self.followers.retain(|_, l| !l.is_empty());
        expired
    }

    /// Leaders currently queued (excludes in-flight).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Jobs dispatched to compute and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when no work is queued or in flight (drain is complete).
    pub fn is_idle(&self) -> bool {
        self.pending == 0 && self.in_flight == 0
    }

    /// Queue depth per tenant, sorted by tenant name (the
    /// `fdip_serve_tenant_queue_depth` gauge family).
    pub fn tenant_depths(&self) -> Vec<(String, u64)> {
        let mut depths: Vec<(String, u64)> = self
            .queues
            .iter()
            .map(|(t, q)| (t.clone(), q.len() as u64))
            .collect();
        depths.sort();
        depths
    }

    /// Drops rate buckets idle past `idle` so tenant cardinality cannot
    /// grow without bound.
    pub fn prune_buckets(&mut self, now: Instant, idle: Duration) {
        self.buckets
            .retain(|_, b| now.saturating_duration_since(b.refilled) < idle);
    }
}

/// Validates an `x-fdip-tenant` header value: 1..=64 chars drawn from
/// `[A-Za-z0-9._-]`. Keeps the Prometheus label set injection-free and
/// its cardinality sane.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn requester(conn: u64, now: Instant) -> Requester {
        Requester {
            conn,
            started: now,
            deadline: now + Duration::from_secs(60),
            client_deadline: false,
        }
    }

    fn key(path: &str, body: &[u8]) -> Option<CoalesceKey> {
        Some(CoalesceKey {
            path: path.to_string(),
            body: body.to_vec(),
        })
    }

    fn admit_simple(s: &mut Scheduler, tenant: &str, conn: u64, body: &[u8]) -> Admission {
        let now = Instant::now();
        let deadline = now + Duration::from_secs(60);
        s.admit(
            tenant,
            req("/v1/run", body),
            requester(conn, now),
            deadline,
            key("/v1/run", body),
            now,
        )
    }

    #[test]
    fn round_robin_across_tenants_prevents_starvation() {
        let mut s = Scheduler::new(16, 0);
        for i in 0..4u64 {
            admit_simple(&mut s, "hog", i, format!("hog-{i}").as_bytes());
        }
        for i in 0..2u64 {
            admit_simple(&mut s, "mouse", 100 + i, format!("mouse-{i}").as_bytes());
        }
        let order: Vec<String> = std::iter::from_fn(|| s.next_job().map(|j| j.tenant)).collect();
        assert_eq!(order, ["hog", "mouse", "hog", "mouse", "hog", "hog"]);
        assert!(s.pending() == 0 && s.in_flight() == 6);
    }

    #[test]
    fn capacity_sheds_leaders_but_not_followers() {
        let mut s = Scheduler::new(2, 0);
        assert_eq!(admit_simple(&mut s, "t", 1, b"a"), Admission::Enqueued);
        assert_eq!(admit_simple(&mut s, "t", 2, b"b"), Admission::Enqueued);
        assert_eq!(admit_simple(&mut s, "t", 3, b"c"), Admission::Shed);
        // An identical request coalesces even at capacity.
        assert!(matches!(
            admit_simple(&mut s, "t", 4, b"a"),
            Admission::Coalesced(_)
        ));
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn coalescing_attaches_to_queued_and_inflight_jobs() {
        let mut s = Scheduler::new(8, 0);
        assert_eq!(admit_simple(&mut s, "t", 1, b"x"), Admission::Enqueued);
        // Attach while queued.
        assert!(matches!(
            admit_simple(&mut s, "u", 2, b"x"),
            Admission::Coalesced(_)
        ));
        let job = s.next_job().unwrap();
        // Attach while in flight.
        assert!(matches!(
            admit_simple(&mut s, "v", 3, b"x"),
            Admission::Coalesced(_)
        ));
        let followers = s.complete(&job);
        let conns: Vec<u64> = followers.iter().map(|f| f.conn).collect();
        assert_eq!(conns, [2, 3]);
        // After completion the key is free again: no stale attachment.
        assert_eq!(admit_simple(&mut s, "t", 4, b"x"), Admission::Enqueued);
        assert!(s.is_idle() || s.pending() == 1);
    }

    #[test]
    fn rate_limit_charges_before_coalescing() {
        let mut s = Scheduler::new(8, 2);
        assert_eq!(admit_simple(&mut s, "t", 1, b"x"), Admission::Enqueued);
        // Second token: coalesces fine.
        assert!(matches!(
            admit_simple(&mut s, "t", 2, b"x"),
            Admission::Coalesced(_)
        ));
        // Bucket empty: even an identical request is limited.
        assert_eq!(admit_simple(&mut s, "t", 3, b"x"), Admission::RateLimited);
        // A different tenant has its own bucket.
        assert!(matches!(
            admit_simple(&mut s, "u", 4, b"x"),
            Admission::Coalesced(_)
        ));
    }

    #[test]
    fn rate_bucket_refills_over_time() {
        let mut s = Scheduler::new(32, 10);
        let t0 = Instant::now();
        let mk = |i: u64| {
            (
                req("/v1/run", format!("{i}").as_bytes()),
                requester(i, t0),
                t0 + Duration::from_secs(60),
            )
        };
        for i in 0..10 {
            let (r, who, dl) = mk(i);
            assert_eq!(s.admit("t", r, who, dl, None, t0), Admission::Enqueued);
        }
        let (r, who, dl) = mk(10);
        assert_eq!(s.admit("t", r, who, dl, None, t0), Admission::RateLimited);
        // 200ms later two tokens have refilled.
        let later = t0 + Duration::from_millis(200);
        let (r, who, dl) = mk(11);
        assert_eq!(s.admit("t", r, who, dl, None, later), Admission::Enqueued);
        let (r, who, dl) = mk(12);
        assert_eq!(s.admit("t", r, who, dl, None, later), Admission::Enqueued);
        let (r, who, dl) = mk(13);
        assert_eq!(
            s.admit("t", r, who, dl, None, later),
            Admission::RateLimited
        );
    }

    #[test]
    fn expiry_takes_followers_with_the_leader() {
        let mut s = Scheduler::new(8, 0);
        let now = Instant::now();
        let soon = now + Duration::from_millis(10);
        s.admit(
            "t",
            req("/v1/run", b"x"),
            requester(1, now),
            soon,
            key("/v1/run", b"x"),
            now,
        );
        assert!(matches!(
            admit_simple(&mut s, "t", 2, b"x"),
            Admission::Coalesced(_)
        ));
        let expired = s.take_expired(now + Duration::from_millis(20));
        assert_eq!(expired.len(), 1);
        let (job, followers) = &expired[0];
        assert_eq!(job.leader.conn, 1);
        assert_eq!(followers.len(), 1);
        assert_eq!(followers[0].conn, 2);
        assert_eq!(s.pending(), 0);
        // The key is released: a fresh identical request enqueues.
        assert_eq!(admit_simple(&mut s, "t", 3, b"x"), Admission::Enqueued);
    }

    #[test]
    fn followers_expire_on_their_own_deadline() {
        let mut s = Scheduler::new(8, 0);
        let now = Instant::now();
        let long = now + Duration::from_secs(60);
        let tight = now + Duration::from_millis(10);
        let with_deadline = |conn: u64, deadline: Instant| Requester {
            conn,
            started: now,
            deadline,
            client_deadline: true,
        };
        s.admit(
            "t",
            req("/v1/run", b"x"),
            requester(1, now),
            long,
            key("/v1/run", b"x"),
            now,
        );
        // A tight-deadline follower attaches to the queued leader…
        assert!(matches!(
            s.admit(
                "t",
                req("/v1/run", b"x"),
                with_deadline(2, tight),
                tight,
                key("/v1/run", b"x"),
                now,
            ),
            Admission::Coalesced(_)
        ));
        // …and another to the same job once it is in flight.
        let job = s.next_job().unwrap();
        assert!(matches!(
            s.admit(
                "t",
                req("/v1/run", b"x"),
                with_deadline(3, tight),
                tight,
                key("/v1/run", b"x"),
                now,
            ),
            Admission::Coalesced(_)
        ));
        let later = now + Duration::from_millis(20);
        let expired = s.take_expired_followers(later);
        let conns: Vec<u64> = expired.iter().map(|r| r.conn).collect();
        assert_eq!(conns, [2, 3]);
        assert!(expired.iter().all(|r| r.client_deadline));
        // The leader (deadline far out) is untouched by either sweep and
        // completes with no followers left to fan out to.
        assert!(s.take_expired(later).is_empty());
        assert!(s.take_expired_followers(later).is_empty());
        assert!(s.complete(&job).is_empty());
    }

    #[test]
    fn tenant_depths_snapshot_and_bucket_pruning() {
        let mut s = Scheduler::new(16, 5);
        admit_simple(&mut s, "b", 1, b"1");
        admit_simple(&mut s, "a", 2, b"2");
        admit_simple(&mut s, "a", 3, b"3");
        assert_eq!(
            s.tenant_depths(),
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        assert_eq!(s.buckets.len(), 2);
        s.prune_buckets(
            Instant::now() + Duration::from_secs(120),
            Duration::from_secs(60),
        );
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn tenant_name_validation() {
        assert!(valid_tenant("default"));
        assert!(valid_tenant("team-a.prod_7"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant("quote\"brk"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }
}
