//! Per-connection state machine for the event loop.
//!
//! Each accepted socket is nonblocking and owned by one [`Conn`], which
//! cycles through three states:
//!
//! ```text
//!            bytes readable            request dispatched
//! Reading ────────────────▶ (parse) ─────────────────────▶ Waiting
//!    ▲                                                        │
//!    │ response flushed                     response queued   │
//!    └──────────────────────── Writing ◀──────────────────────┘
//! ```
//!
//! Inline-answerable requests (GETs, parse errors, sheds) skip `Waiting`
//! and go straight to `Writing`. The loop registers read interest in
//! `Reading`, write interest in `Writing`, and none in `Waiting` — a
//! connection waiting on compute costs zero wakeups.
//!
//! All reads and writes are buffered and partial-progress safe, which is
//! what fixes the PR 2 shed bug: a 503 to a stalled client sits in this
//! connection's write buffer instead of blocking the accept path.
//!
//! The request clock (`req_started`) is the latency bugfix: it starts at
//! *accept* for a connection's first request and at previous-response
//! flush for keep-alive successors, so recorded latency includes queue
//! wait and read time rather than starting at parse completion.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{self, HttpError, Request, Response};

/// Bytes read per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Most bytes consumed from one connection per readiness event, so a
/// fast writer cannot monopolize the loop; level-triggered polling
/// redelivers the event for the remainder.
const READ_BUDGET: usize = 256 * 1024;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// A request is dispatched to compute; no I/O interest.
    Waiting,
    /// Draining the response write buffer.
    Writing,
}

/// What progress a readiness-driven read made.
#[derive(Debug)]
pub enum ReadOutcome {
    /// No complete request yet; keep read interest.
    NeedMore,
    /// One complete request parsed and drained from the buffer.
    Request(Request),
    /// Peer closed (or the transport failed); drop the connection.
    Closed,
    /// The buffered bytes are not a valid request.
    Error(HttpError),
}

/// What progress a readiness-driven write made.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The response is fully flushed.
    Flushed,
    /// The kernel buffer filled; keep write interest.
    Pending,
    /// The peer is gone; drop the connection.
    Closed,
}

/// One nonblocking connection and its buffers. See the module docs for
/// the state cycle.
pub struct Conn {
    stream: TcpStream,
    /// Current position in the state cycle.
    pub state: ConnState,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// When the socket was accepted.
    pub accepted_at: Instant,
    /// The active request's clock origin: accept time for the first
    /// request, previous flush time after that. Latency is measured
    /// from here so it includes queue wait.
    pub req_started: Instant,
    /// Close instead of resetting to `Reading` once the write drains.
    pub close_after_write: bool,
    /// Close once the currently dispatched request's response drains
    /// (the request asked `Connection: close`, or it was admitted during
    /// a drain). Consulted when the completion is delivered.
    pub close_when_answered: bool,
    /// The peer half-closed its send side; serve what is buffered, then
    /// close.
    peer_eof: bool,
    /// Last instant this connection made I/O progress (idle sweeping).
    pub last_activity: Instant,
    latency_from: Option<Instant>,
}

impl Conn {
    /// Wraps a freshly accepted socket; the caller has already put it in
    /// nonblocking mode.
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            state: ConnState::Reading,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            accepted_at: now,
            req_started: now,
            close_after_write: false,
            close_when_answered: false,
            peer_eof: false,
            last_activity: now,
            latency_from: None,
        }
    }

    /// The underlying socket (for fd registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads whatever the socket has (up to a fairness budget) and tries
    /// to parse one request. Only meaningful in [`ConnState::Reading`].
    pub fn on_readable(&mut self, now: Instant) -> ReadOutcome {
        debug_assert_eq!(self.state, ConnState::Reading);
        let mut consumed = 0usize;
        let mut chunk = [0u8; READ_CHUNK];
        while consumed < READ_BUDGET {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Clean EOF — but the peer may have half-closed after
                    // sending complete requests (it still reads), so any
                    // buffered full request is still served before the
                    // connection drops.
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = now;
                    consumed += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Closed,
            }
        }
        self.parse_buffered()
    }

    /// Tries to parse one request from already-buffered bytes. Called
    /// after reads, and again after each response flush to pick up
    /// pipelined requests that arrived in an earlier read (the socket
    /// will not signal readable for bytes we already hold).
    pub fn parse_buffered(&mut self) -> ReadOutcome {
        match http::try_parse_request(&self.read_buf) {
            Ok(Some((req, consumed))) => {
                self.read_buf.drain(..consumed);
                ReadOutcome::Request(req)
            }
            Ok(None) if self.peer_eof => ReadOutcome::Closed,
            Ok(None) => ReadOutcome::NeedMore,
            Err(e) => ReadOutcome::Error(e),
        }
    }

    /// True when partial request bytes are buffered (a mid-request stall
    /// is swept on the I/O timeout; an idle keep-alive gap is tolerated).
    pub fn mid_request(&self) -> bool {
        !self.read_buf.is_empty()
    }

    /// Serializes `resp` into the write buffer and enters `Writing`.
    /// `count_latency` marks responses that answer a request (as opposed
    /// to connection-level notices) so the flush records a latency sample
    /// measured from [`req_started`](Conn::req_started).
    pub fn queue_response(&mut self, resp: &Response, close: bool, count_latency: bool) {
        self.write_buf = resp.to_bytes(close);
        self.write_pos = 0;
        self.close_after_write = close;
        self.latency_from = count_latency.then_some(self.req_started);
        self.state = ConnState::Writing;
    }

    /// Drains the write buffer as far as the socket allows. Only
    /// meaningful in [`ConnState::Writing`].
    pub fn on_writable(&mut self, now: Instant) -> WriteOutcome {
        debug_assert_eq!(self.state, ConnState::Writing);
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return WriteOutcome::Closed,
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return WriteOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteOutcome::Closed,
            }
        }
        WriteOutcome::Flushed
    }

    /// Completes a flushed response: takes the latency clock for the
    /// caller to record, releases the (possibly large) write buffer, and
    /// resets to `Reading` with a fresh request clock.
    pub fn finish_write(&mut self, now: Instant) -> Option<Instant> {
        let latency = self.latency_from.take();
        self.write_buf = Vec::new();
        self.write_pos = 0;
        self.state = ConnState::Reading;
        self.req_started = now;
        self.last_activity = now;
        latency
    }

    /// The latency clock of an unflushed counted response, surrendered
    /// when the connection is dropped mid-write (the sample is still
    /// recorded so histograms reconcile with status counts).
    pub fn take_latency(&mut self) -> Option<Instant> {
        self.latency_from.take()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// A connected nonblocking (server-side) socket plus its blocking
    /// peer.
    fn pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (Conn::new(server, Instant::now()), peer)
    }

    #[test]
    fn incremental_read_parses_once_complete() {
        let (mut conn, mut peer) = pair();
        peer.write_all(b"POST /v1/run HTTP/1.1\r\ncontent-le")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            conn.on_readable(Instant::now()),
            ReadOutcome::NeedMore
        ));
        assert!(conn.mid_request());
        peer.write_all(b"ngth: 2\r\n\r\nhi").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        match conn.on_readable(Instant::now()) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.path, "/v1/run");
                assert_eq!(req.body, b"hi");
            }
            other => panic!("expected request, got {other:?}"),
        }
        assert!(!conn.mid_request());
    }

    #[test]
    fn pipelined_second_request_comes_from_the_buffer() {
        let (mut conn, mut peer) = pair();
        peer.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        match conn.on_readable(Instant::now()) {
            ReadOutcome::Request(req) => assert_eq!(req.path, "/a"),
            other => panic!("expected /a, got {other:?}"),
        }
        // Serve /a, flush, and the buffered /b must surface without any
        // new socket readability.
        conn.queue_response(&Response::text(200, "ok"), false, true);
        assert_eq!(conn.on_writable(Instant::now()), WriteOutcome::Flushed);
        assert!(conn.finish_write(Instant::now()).is_some());
        match conn.parse_buffered() {
            ReadOutcome::Request(req) => assert_eq!(req.path, "/b"),
            other => panic!("expected /b, got {other:?}"),
        }
    }

    #[test]
    fn peer_eof_and_malformed_bytes_close_or_error() {
        let (mut conn, peer) = pair();
        drop(peer);
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            conn.on_readable(Instant::now()),
            ReadOutcome::Closed
        ));

        let (mut conn, mut peer) = pair();
        peer.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            conn.on_readable(Instant::now()),
            ReadOutcome::Error(HttpError::Bad(_))
        ));
    }

    #[test]
    fn large_response_to_stalled_peer_stays_buffered_then_drains() {
        let (mut conn, mut peer) = pair();
        // A response far larger than any socket buffer: the first write
        // pass must hit WouldBlock and report Pending, not block.
        let big = Response::text(200, "x".repeat(8 * 1024 * 1024));
        conn.queue_response(&big, true, false);
        assert_eq!(conn.on_writable(Instant::now()), WriteOutcome::Pending);
        // Drain from the peer side while repeatedly offering writability.
        let mut total = 0usize;
        let mut sink = [0u8; 64 * 1024];
        peer.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        loop {
            match conn.on_writable(Instant::now()) {
                WriteOutcome::Flushed => break,
                WriteOutcome::Pending => {}
                WriteOutcome::Closed => panic!("peer alive"),
            }
            match peer.read(&mut sink) {
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => panic!("peer read: {e}"),
            }
        }
        // Uncounted response: no latency sample.
        assert!(conn.finish_write(Instant::now()).is_none());
        while total < 8 * 1024 * 1024 {
            match peer.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(_) => break,
            }
        }
        assert!(total >= 8 * 1024 * 1024, "peer received {total} bytes");
    }

    #[test]
    fn request_clock_starts_at_accept_then_at_flush() {
        let (mut conn, mut peer) = pair();
        let accepted = conn.accepted_at;
        assert_eq!(conn.req_started, accepted);
        peer.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            conn.on_readable(Instant::now()),
            ReadOutcome::Request(_)
        ));
        // Parsing must NOT reset the clock — that was the PR 2 bug.
        assert_eq!(conn.req_started, accepted);
        conn.queue_response(&Response::text(200, "ok"), false, true);
        assert_eq!(conn.on_writable(Instant::now()), WriteOutcome::Flushed);
        let flushed_at = Instant::now();
        let latency_from = conn.finish_write(flushed_at).unwrap();
        assert_eq!(latency_from, accepted);
        // The next keep-alive request measures from the flush instead.
        assert_eq!(conn.req_started, flushed_at);
    }
}
