//! Property tests for the memory substrate: the cache against a reference
//! model, MSHR bookkeeping, bus accounting, and hierarchy invariants under
//! random access/prefetch interleavings.

use std::collections::VecDeque;

use fdip_mem::{
    Cache, CacheGeometry, DemandOutcome, FillFlags, HierarchyConfig, MemoryHierarchy, MissKind,
    MshrFile, PrefetchOutcome, ReplacementPolicy,
};
use fdip_types::{Addr, Cycle};
use proptest::prelude::*;

/// Reference LRU cache model: per-set deque of tags, MRU at the front.
struct CacheModel {
    sets: Vec<VecDeque<u64>>,
    geometry: CacheGeometry,
}

impl CacheModel {
    fn new(geometry: CacheGeometry) -> Self {
        CacheModel {
            sets: vec![VecDeque::new(); geometry.sets],
            geometry,
        }
    }

    fn access(&mut self, addr: Addr) -> bool {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        if let Some(pos) = self.sets[set].iter().position(|&t| t == tag) {
            let t = self.sets[set].remove(pos).unwrap();
            self.sets[set].push_front(t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: Addr) {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        if self.sets[set].contains(&tag) {
            return;
        }
        if self.sets[set].len() == self.geometry.ways {
            self.sets[set].pop_back();
        }
        self.sets[set].push_front(tag);
    }
}

#[derive(Clone, Debug)]
enum CacheOp {
    Access(u64),
    Fill(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..1 << 14).prop_map(CacheOp::Access),
        (0u64..1 << 14).prop_map(CacheOp::Fill),
    ]
}

proptest! {
    #[test]
    fn lru_cache_matches_reference_model(ops in prop::collection::vec(cache_op(), 0..300)) {
        let geometry = CacheGeometry::new(8, 2, 64);
        let mut cache = Cache::new(geometry, ReplacementPolicy::Lru);
        let mut model = CacheModel::new(geometry);
        for op in ops {
            match op {
                CacheOp::Access(raw) => {
                    let addr = Addr::new(raw * 4);
                    prop_assert_eq!(cache.access(addr).is_some(), model.access(addr));
                }
                CacheOp::Fill(raw) => {
                    let addr = Addr::new(raw * 4);
                    cache.fill(addr, FillFlags::default());
                    model.fill(addr);
                }
            }
            prop_assert!(cache.len() <= geometry.blocks());
        }
    }

    #[test]
    fn mshr_merge_preserves_ready_time(
        blocks in prop::collection::vec(0u64..64, 1..20),
        latency in 1u64..300,
    ) {
        let mut mshrs = MshrFile::new(32);
        let mut expected_ready = std::collections::HashMap::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = Addr::new(b * 64);
            let ready = Cycle::new(latency + i as u64);
            if mshrs.lookup(addr).is_none() {
                mshrs.allocate(addr, ready, MissKind::Prefetch).unwrap();
                expected_ready.insert(b, ready);
            }
            let (merged_ready, _) = mshrs.merge_demand(addr).unwrap();
            prop_assert_eq!(merged_ready, expected_ready[&b]);
        }
        // Everything drains exactly once, as demand.
        let drained = mshrs.take_ready(Cycle::new(latency + blocks.len() as u64));
        prop_assert_eq!(drained.len(), expected_ready.len());
        prop_assert!(drained.iter().all(|m| m.kind == MissKind::Demand));
    }

    #[test]
    fn hierarchy_counters_are_consistent_under_random_traffic(
        ops in prop::collection::vec((any::<bool>(), 0u64..256), 1..200),
    ) {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut now = Cycle::ZERO;
        let mut demand_accesses = 0u64;
        for (is_prefetch, block) in ops {
            mem.begin_cycle(now);
            let addr = Addr::new(block * 64);
            if is_prefetch {
                let _ = mem.issue_prefetch(now, addr, false);
            } else {
                demand_accesses += 1;
                match mem.demand_access(now, addr) {
                    DemandOutcome::Miss { ready_at } | DemandOutcome::InFlight { ready_at, .. } => {
                        prop_assert!(ready_at.is_after(now) || ready_at == now);
                    }
                    _ => {}
                }
            }
            now += 3;
        }
        let s = mem.stats();
        prop_assert_eq!(s.l1_accesses, demand_accesses);
        prop_assert_eq!(s.l1_hits + s.l1_misses + s.pb_hits, s.l1_accesses);
        prop_assert!(s.useful_prefetches <= s.l1_accesses);
        prop_assert!(s.l2_hits + s.l2_misses == s.demand_transfers + s.prefetch_transfers);
        prop_assert_eq!(
            mem.bus().transfers(),
            s.demand_transfers + s.prefetch_transfers
        );
        prop_assert_eq!(
            mem.bus().busy_cycles(),
            mem.bus().transfers() * 4
        );
    }

    #[test]
    fn prefetch_never_claims_reserved_mshrs(
        blocks in prop::collection::vec(0u64..64, 8..40),
    ) {
        let config = HierarchyConfig {
            mshrs: 4,
            prefetch_mshr_reserve: 2,
            ..HierarchyConfig::default()
        };
        let mut mem = MemoryHierarchy::new(config);
        mem.begin_cycle(Cycle::ZERO);
        let mut issued = 0;
        for &b in &blocks {
            if let PrefetchOutcome::Issued { .. } =
                mem.issue_prefetch(Cycle::ZERO, Addr::new(b * 64), false)
            {
                issued += 1;
            }
        }
        // At most mshrs - reserve prefetches may be outstanding.
        prop_assert!(issued <= 2, "issued {issued}");
        // Demands can still allocate the reserved registers.
        let mut demand_allocated = 0;
        for extra in 1000u64..1010 {
            match mem.demand_access(Cycle::ZERO, Addr::new(extra * 64)) {
                DemandOutcome::Miss { .. } => demand_allocated += 1,
                DemandOutcome::MshrFull => break,
                _ => {}
            }
        }
        prop_assert!(demand_allocated >= 2, "demand got {demand_allocated}");
    }
}
