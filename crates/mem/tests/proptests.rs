//! Property tests for the memory substrate: the cache against a reference
//! model, MSHR bookkeeping, bus accounting, and hierarchy invariants under
//! random access/prefetch interleavings.

use std::collections::VecDeque;

use fdip_mem::{
    Cache, CacheGeometry, DemandOutcome, EvictedLine, FillFlags, HierarchyConfig, HitInfo,
    MemoryHierarchy, MissKind, MshrFile, PrefetchOutcome, ReplacementPolicy,
};
use fdip_types::{Addr, Cycle};
use proptest::prelude::*;

/// Differential oracle for [`Cache`]: the pre-flat-storage representation
/// — one `Vec` of lines per set, recency-ordered MRU-first — written for
/// obviousness, not speed. Lines carry their way index explicitly and a
/// per-set free-way list stands in for the flat version's packed
/// order/occupied bookkeeping, so the two implementations claim and evict
/// the *same ways in the same order* under every policy (the xorshift
/// stream is shared verbatim). Any divergence in hit results, eviction
/// reports, or occupancy is a bug in one of them.
struct NestedVecCache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    /// MRU-first (LRU) / newest-first (FIFO) lines per set.
    sets: Vec<Vec<NestedLine>>,
    /// Free way indices per set; claimed from the front, and invalidated
    /// ways return to the front (mirrors the flat free-region order).
    free: Vec<Vec<usize>>,
    rng_state: u64,
}

#[derive(Copy, Clone)]
struct NestedLine {
    tag: u64,
    way: usize,
    prefetched: bool,
    referenced: bool,
    nlp_tagged: bool,
}

impl NestedVecCache {
    fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        NestedVecCache {
            geometry,
            policy,
            sets: vec![Vec::new(); geometry.sets],
            free: (0..geometry.sets)
                .map(|_| (0..geometry.ways).collect())
                .collect(),
            rng_state: 0x243f_6a88_85a3_08d3,
        }
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    fn access(&mut self, addr: Addr) -> Option<HitInfo> {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let pos = self.sets[set].iter().position(|l| l.tag == tag)?;
        let line = &mut self.sets[set][pos];
        let info = HitInfo {
            was_prefetched: line.prefetched,
            first_reference: !line.referenced,
            nlp_tagged: line.nlp_tagged,
        };
        line.referenced = true;
        line.nlp_tagged = false;
        if self.policy == ReplacementPolicy::Lru {
            let line = self.sets[set].remove(pos);
            self.sets[set].insert(0, line);
        }
        Some(info)
    }

    fn probe(&self, addr: Addr) -> bool {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    fn draw_way(&mut self, ways: usize) -> usize {
        let mask = (ways as u64).next_power_of_two() - 1;
        loop {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            let r = self.rng_state & mask;
            if (r as usize) < ways {
                return r as usize;
            }
        }
    }

    fn fill(&mut self, addr: Addr, flags: FillFlags) -> Option<EvictedLine> {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        if let Some(pos) = self.sets[set].iter().position(|l| l.tag == tag) {
            self.sets[set][pos].nlp_tagged |= flags.nlp_tagged;
            return None;
        }
        let mut new_line = NestedLine {
            tag,
            way: 0,
            prefetched: flags.prefetched,
            referenced: false,
            nlp_tagged: flags.nlp_tagged,
        };
        if !self.free[set].is_empty() {
            new_line.way = self.free[set].remove(0);
            self.sets[set].insert(0, new_line);
            return None;
        }
        let victim = match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                // Tail of the recency order; its way hosts the new line,
                // which becomes MRU.
                let victim = self.sets[set].pop().unwrap();
                new_line.way = victim.way;
                self.sets[set].insert(0, new_line);
                victim
            }
            ReplacementPolicy::Random => {
                // A drawn way is replaced in place: the new line inherits
                // the victim's recency position.
                let way = self.draw_way(self.geometry.ways);
                let pos = self.sets[set].iter().position(|l| l.way == way).unwrap();
                new_line.way = way;
                std::mem::replace(&mut self.sets[set][pos], new_line)
            }
        };
        Some(EvictedLine {
            addr: self.geometry.block_addr(set, victim.tag),
            prefetched_unreferenced: victim.prefetched && !victim.referenced,
        })
    }

    fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let pos = self.sets[set].iter().position(|l| l.tag == tag)?;
        let line = self.sets[set].remove(pos);
        self.free[set].insert(0, line.way);
        Some(EvictedLine {
            addr,
            prefetched_unreferenced: line.prefetched && !line.referenced,
        })
    }
}

/// Reference LRU cache model: per-set deque of tags, MRU at the front.
struct CacheModel {
    sets: Vec<VecDeque<u64>>,
    geometry: CacheGeometry,
}

impl CacheModel {
    fn new(geometry: CacheGeometry) -> Self {
        CacheModel {
            sets: vec![VecDeque::new(); geometry.sets],
            geometry,
        }
    }

    fn access(&mut self, addr: Addr) -> bool {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        if let Some(pos) = self.sets[set].iter().position(|&t| t == tag) {
            let t = self.sets[set].remove(pos).unwrap();
            self.sets[set].push_front(t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: Addr) {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        if self.sets[set].contains(&tag) {
            return;
        }
        if self.sets[set].len() == self.geometry.ways {
            self.sets[set].pop_back();
        }
        self.sets[set].push_front(tag);
    }
}

#[derive(Clone, Debug)]
enum CacheOp {
    Access(u64),
    Fill(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..1 << 14).prop_map(CacheOp::Access),
        (0u64..1 << 14).prop_map(CacheOp::Fill),
    ]
}

/// Ops for the differential suite: adds probes, prefetch-flagged fills,
/// and invalidations over a small address space so sets stay contended.
#[derive(Clone, Debug)]
enum DiffOp {
    Access(u64),
    Probe(u64),
    Fill(u64, bool, bool),
    Invalidate(u64),
}

fn diff_op() -> impl Strategy<Value = DiffOp> {
    let block = 0u64..64;
    prop_oneof![
        block.clone().prop_map(DiffOp::Access),
        block.clone().prop_map(DiffOp::Probe),
        (block.clone(), any::<bool>(), any::<bool>()).prop_map(|(b, p, t)| DiffOp::Fill(b, p, t)),
        block.prop_map(DiffOp::Invalidate),
    ]
}

fn policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    #[test]
    fn lru_cache_matches_reference_model(ops in prop::collection::vec(cache_op(), 0..300)) {
        let geometry = CacheGeometry::new(8, 2, 64);
        let mut cache = Cache::new(geometry, ReplacementPolicy::Lru);
        let mut model = CacheModel::new(geometry);
        for op in ops {
            match op {
                CacheOp::Access(raw) => {
                    let addr = Addr::new(raw * 4);
                    prop_assert_eq!(cache.access(addr).is_some(), model.access(addr));
                }
                CacheOp::Fill(raw) => {
                    let addr = Addr::new(raw * 4);
                    cache.fill(addr, FillFlags::default());
                    model.fill(addr);
                }
            }
            prop_assert!(cache.len() <= geometry.blocks());
        }
    }

    #[test]
    fn flat_cache_matches_nested_vec_oracle(
        pol in policy(),
        ways in 1usize..=4,
        ops in prop::collection::vec(diff_op(), 0..400),
    ) {
        // 4 sets × up-to-4 ways over a 64-block space keeps every set hot;
        // ways = 3 exercises the Random rejection draw.
        let geometry = CacheGeometry::new(4, ways, 64);
        let mut flat = Cache::new(geometry, pol);
        let mut oracle = NestedVecCache::new(geometry, pol);
        for op in ops {
            match op {
                DiffOp::Access(b) => {
                    let addr = Addr::new(b * 64);
                    prop_assert_eq!(flat.access(addr), oracle.access(addr));
                }
                DiffOp::Probe(b) => {
                    let addr = Addr::new(b * 64);
                    prop_assert_eq!(flat.probe(addr), oracle.probe(addr));
                }
                DiffOp::Fill(b, prefetched, nlp_tagged) => {
                    let addr = Addr::new(b * 64);
                    let flags = FillFlags { prefetched, nlp_tagged };
                    prop_assert_eq!(flat.fill(addr, flags), oracle.fill(addr, flags));
                }
                DiffOp::Invalidate(b) => {
                    let addr = Addr::new(b * 64);
                    prop_assert_eq!(flat.invalidate(addr), oracle.invalidate(addr));
                }
            }
            prop_assert_eq!(flat.len(), oracle.len());
        }
    }

    #[test]
    fn mshr_merge_preserves_ready_time(
        blocks in prop::collection::vec(0u64..64, 1..20),
        latency in 1u64..300,
    ) {
        let mut mshrs = MshrFile::new(32);
        let mut expected_ready = std::collections::HashMap::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = Addr::new(b * 64);
            let ready = Cycle::new(latency + i as u64);
            if mshrs.lookup(addr).is_none() {
                mshrs.allocate(addr, ready, MissKind::Prefetch).unwrap();
                expected_ready.insert(b, ready);
            }
            let (merged_ready, _) = mshrs.merge_demand(addr).unwrap();
            prop_assert_eq!(merged_ready, expected_ready[&b]);
        }
        // Everything drains exactly once, as demand.
        let drained = mshrs.take_ready(Cycle::new(latency + blocks.len() as u64));
        prop_assert_eq!(drained.len(), expected_ready.len());
        prop_assert!(drained.iter().all(|m| m.kind == MissKind::Demand));
    }

    #[test]
    fn hierarchy_counters_are_consistent_under_random_traffic(
        ops in prop::collection::vec((any::<bool>(), 0u64..256), 1..200),
    ) {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let mut now = Cycle::ZERO;
        let mut demand_accesses = 0u64;
        for (is_prefetch, block) in ops {
            mem.begin_cycle(now);
            let addr = Addr::new(block * 64);
            if is_prefetch {
                let _ = mem.issue_prefetch(now, addr, false);
            } else {
                demand_accesses += 1;
                match mem.demand_access(now, addr) {
                    DemandOutcome::Miss { ready_at } | DemandOutcome::InFlight { ready_at, .. } => {
                        prop_assert!(ready_at.is_after(now) || ready_at == now);
                    }
                    _ => {}
                }
            }
            now += 3;
        }
        let s = mem.stats();
        prop_assert_eq!(s.l1_accesses, demand_accesses);
        prop_assert_eq!(s.l1_hits + s.l1_misses + s.pb_hits, s.l1_accesses);
        prop_assert!(s.useful_prefetches <= s.l1_accesses);
        prop_assert!(s.l2_hits + s.l2_misses == s.demand_transfers + s.prefetch_transfers);
        prop_assert_eq!(
            mem.bus().transfers(),
            s.demand_transfers + s.prefetch_transfers
        );
        prop_assert_eq!(
            mem.bus().busy_cycles(),
            mem.bus().transfers() * 4
        );
    }

    #[test]
    fn prefetch_never_claims_reserved_mshrs(
        blocks in prop::collection::vec(0u64..64, 8..40),
    ) {
        let config = HierarchyConfig {
            mshrs: 4,
            prefetch_mshr_reserve: 2,
            ..HierarchyConfig::default()
        };
        let mut mem = MemoryHierarchy::new(config);
        mem.begin_cycle(Cycle::ZERO);
        let mut issued = 0;
        for &b in &blocks {
            if let PrefetchOutcome::Issued { .. } =
                mem.issue_prefetch(Cycle::ZERO, Addr::new(b * 64), false)
            {
                issued += 1;
            }
        }
        // At most mshrs - reserve prefetches may be outstanding.
        prop_assert!(issued <= 2, "issued {issued}");
        // Demands can still allocate the reserved registers.
        let mut demand_allocated = 0;
        for extra in 1000u64..1010 {
            match mem.demand_access(Cycle::ZERO, Addr::new(extra * 64)) {
                DemandOutcome::Miss { .. } => demand_allocated += 1,
                DemandOutcome::MshrFull => break,
                _ => {}
            }
        }
        prop_assert!(demand_allocated >= 2, "demand got {demand_allocated}");
    }
}
