use fdip_types::Addr;

/// A small fully-associative victim cache (Jouppi, ISCA 1990) between the
/// L1-I and the L2: lines evicted from the L1 park here briefly, so
/// conflict misses can be served without a bus transfer.
///
/// Provided as an optional substrate piece (ablation `a6`): the 1999
/// machine model did not include one, and the experiment quantifies what
/// it would have changed.
///
/// # Examples
///
/// ```
/// use fdip_mem::VictimCache;
/// use fdip_types::Addr;
///
/// let mut vc = VictimCache::new(4, 64);
/// vc.insert(Addr::new(0x1000));
/// assert!(vc.take(Addr::new(0x1020))); // same 64B block: hit, removed
/// assert!(!vc.take(Addr::new(0x1000)));
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    /// Block base addresses, MRU first.
    entries: Vec<Addr>,
    capacity: usize,
    block_bytes: u64,
    hits: u64,
    misses: u64,
}

impl VictimCache {
    /// Creates a victim cache of `capacity` blocks. Zero capacity disables
    /// it (every probe misses, inserts are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn new(capacity: usize, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two());
        VictimCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            block_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no victim is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parks an evicted block (LRU is displaced when full).
    pub fn insert(&mut self, addr: Addr) {
        if self.capacity == 0 {
            return;
        }
        let base = addr.block_base(self.block_bytes);
        if let Some(pos) = self.entries.iter().position(|a| *a == base) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, base);
    }

    /// Probes for the block containing `addr`; on a hit the block is
    /// *removed* (it moves back into the L1).
    pub fn take(&mut self, addr: Addr) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let base = addr.block_base(self.block_bytes);
        if let Some(pos) = self.entries.iter().position(|a| *a == base) {
            self.entries.remove(pos);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Storage in bits: block tag + valid per entry.
    pub fn storage_bits(&self) -> u64 {
        let tag_bits = 48 - self.block_bytes.trailing_zeros() as u64 + 1;
        self.capacity as u64 * tag_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut vc = VictimCache::new(2, 64);
        vc.insert(Addr::new(0x000));
        vc.insert(Addr::new(0x040));
        assert!(vc.take(Addr::new(0x000)));
        assert_eq!(vc.len(), 1);
        assert!(!vc.take(Addr::new(0x000)), "taken means gone");
        assert_eq!(vc.hits(), 1);
        assert_eq!(vc.misses(), 1);
    }

    #[test]
    fn lru_displacement() {
        let mut vc = VictimCache::new(2, 64);
        vc.insert(Addr::new(0x000));
        vc.insert(Addr::new(0x040));
        vc.insert(Addr::new(0x080)); // displaces 0x000 (LRU)
        assert!(!vc.take(Addr::new(0x000)));
        assert!(vc.take(Addr::new(0x040)));
        assert!(vc.take(Addr::new(0x080)));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut vc = VictimCache::new(2, 64);
        vc.insert(Addr::new(0x000));
        vc.insert(Addr::new(0x040));
        vc.insert(Addr::new(0x000)); // refresh: 0x040 is now LRU
        vc.insert(Addr::new(0x080));
        assert!(vc.take(Addr::new(0x000)));
        assert!(!vc.take(Addr::new(0x040)));
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut vc = VictimCache::new(0, 64);
        vc.insert(Addr::new(0x000));
        assert!(!vc.take(Addr::new(0x000)));
        assert!(vc.is_empty());
    }

    #[test]
    fn storage_accounting() {
        let vc = VictimCache::new(8, 64);
        assert_eq!(vc.storage_bits(), 8 * 43);
    }
}
