use fdip_types::{Addr, Cycle};

/// Why an MSHR allocation was rejected.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MshrRejected {
    /// Every MSHR is occupied.
    Full,
    /// The block is already in flight (merge instead).
    AlreadyInFlight,
}

impl std::fmt::Display for MshrRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrRejected::Full => f.write_str("all mshrs are occupied"),
            MshrRejected::AlreadyInFlight => f.write_str("block already in flight"),
        }
    }
}

impl std::error::Error for MshrRejected {}

/// Who asked for an in-flight block.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MissKind {
    /// A demand fetch is waiting on this block.
    Demand,
    /// Only a prefetch requested it (so far).
    Prefetch,
}

/// An entry of the [`MshrFile`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Mshr {
    /// Block base address.
    pub block: Addr,
    /// Cycle the fill arrives.
    pub ready_at: Cycle,
    /// Demand or prefetch (a prefetch *upgrades* to demand when a demand
    /// miss merges into it — that is a "late prefetch").
    pub kind: MissKind,
    /// Set the tagged-next-line-prefetch bit when the fill lands in the L1.
    pub nlp_tagged: bool,
}

/// Miss status holding registers: tracks in-flight fills, merges duplicate
/// requests, and bounds the number of outstanding misses.
///
/// Storage is a flat, preallocated `Vec` scanned linearly — an MSHR file
/// is small (8 entries by default), so a scan beats hashing, allocates
/// nothing after construction, and keeps the hot simulator loop free of
/// per-cycle `HashMap` traversal. The file also tracks the earliest
/// outstanding `ready_at` ([`next_ready`](Self::next_ready)) so callers
/// can skip the drain entirely on cycles with no arriving fill, and so
/// the simulator's idle-cycle fast-forward knows the next memory event.
///
/// # Examples
///
/// ```
/// use fdip_mem::{MshrFile, MissKind};
/// use fdip_types::{Addr, Cycle};
///
/// let mut mshrs = MshrFile::new(4);
/// mshrs.allocate(Addr::new(0x1000), Cycle::new(50), MissKind::Prefetch).unwrap();
/// // A demand for the same block merges and upgrades the entry.
/// assert!(mshrs.merge_demand(Addr::new(0x1000)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Mshr>,
    capacity: usize,
    block_bytes: u64,
    /// Earliest `ready_at` among `entries` (`None` when empty).
    next_ready: Option<Cycle>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries (64-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_block_bytes(capacity, 64)
    }

    /// Creates an MSHR file for a custom block size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `block_bytes` is not a power of two.
    pub fn with_block_bytes(capacity: usize, block_bytes: u64) -> Self {
        assert!(capacity > 0, "mshr capacity must be non-zero");
        assert!(block_bytes.is_power_of_two());
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            block_bytes,
            next_ready: None,
        }
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if no entry is free.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The earliest cycle at which an outstanding fill arrives, or `None`
    /// when nothing is in flight.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.next_ready
    }

    /// The in-flight entry covering `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<&Mshr> {
        let block = addr.block_base(self.block_bytes);
        self.entries.iter().find(|e| e.block == block)
    }

    /// Allocates an entry for the block containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrRejected::Full`] when no register is free and
    /// [`MshrRejected::AlreadyInFlight`] when the block is already pending
    /// (use [`lookup`](Self::lookup)/[`merge_demand`](Self::merge_demand)
    /// for that case).
    pub fn allocate(
        &mut self,
        addr: Addr,
        ready_at: Cycle,
        kind: MissKind,
    ) -> Result<(), MshrRejected> {
        if self.is_full() {
            return Err(MshrRejected::Full);
        }
        let block = addr.block_base(self.block_bytes);
        if self.entries.iter().any(|e| e.block == block) {
            return Err(MshrRejected::AlreadyInFlight);
        }
        self.entries.push(Mshr {
            block,
            ready_at,
            kind,
            nlp_tagged: false,
        });
        self.next_ready = Some(match self.next_ready {
            Some(c) if !ready_at.is_after(c) => ready_at,
            Some(c) => c,
            None => ready_at,
        });
        Ok(())
    }

    /// Like [`allocate`](Self::allocate), but the eventual fill carries the
    /// tagged-next-line-prefetch bit.
    ///
    /// # Errors
    ///
    /// Same as [`allocate`](Self::allocate).
    pub fn allocate_nlp(
        &mut self,
        addr: Addr,
        ready_at: Cycle,
        kind: MissKind,
    ) -> Result<(), MshrRejected> {
        self.allocate(addr, ready_at, kind)?;
        self.entries
            .last_mut()
            .expect("entry just allocated")
            .nlp_tagged = true;
        Ok(())
    }

    /// Merges a demand miss into an in-flight entry, upgrading a prefetch
    /// to a demand. Returns `(ready_at, was_prefetch)` on success.
    pub fn merge_demand(&mut self, addr: Addr) -> Option<(Cycle, bool)> {
        let block = addr.block_base(self.block_bytes);
        let entry = self.entries.iter_mut().find(|e| e.block == block)?;
        let was_prefetch = entry.kind == MissKind::Prefetch;
        entry.kind = MissKind::Demand;
        Some((entry.ready_at, was_prefetch))
    }

    /// Drains every entry whose fill has arrived by `now` into `out`
    /// (which is cleared first), sorted by (ready cycle, block) for
    /// determinism. Allocation-free when `out` has capacity; callers on
    /// the hot path reuse one scratch buffer for the whole run.
    pub fn take_ready_into(&mut self, now: Cycle, out: &mut Vec<Mshr>) {
        out.clear();
        if !matches!(self.next_ready, Some(c) if !c.is_after(now)) {
            return;
        }
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].ready_at.is_after(now) {
                i += 1;
            } else {
                out.push(self.entries.swap_remove(i));
            }
        }
        out.sort_by_key(|e| (e.ready_at, e.block));
        self.next_ready = self.entries.iter().map(|e| e.ready_at).min();
    }

    /// Removes and returns all entries whose fill has arrived by `now`,
    /// sorted by (ready cycle, block) for determinism. Allocating wrapper
    /// around [`take_ready_into`](Self::take_ready_into).
    pub fn take_ready(&mut self, now: Cycle) -> Vec<Mshr> {
        let mut out = Vec::new();
        self.take_ready_into(now, &mut out);
        out
    }

    /// Clears all outstanding entries (used on simulator reset).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_ready = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_take() {
        let mut m = MshrFile::new(2);
        m.allocate(Addr::new(0x1010), Cycle::new(20), MissKind::Demand)
            .unwrap();
        // Any address in the block finds the entry.
        assert!(m.lookup(Addr::new(0x103f)).is_some());
        assert!(m.lookup(Addr::new(0x1040)).is_none());
        assert!(m.take_ready(Cycle::new(19)).is_empty());
        let ready = m.take_ready(Cycle::new(20));
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].block, Addr::new(0x1000));
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_allocation_rejected() {
        let mut m = MshrFile::new(4);
        m.allocate(Addr::new(0x1000), Cycle::new(5), MissKind::Demand)
            .unwrap();
        assert!(m
            .allocate(Addr::new(0x1004), Cycle::new(9), MissKind::Demand)
            .is_err());
    }

    #[test]
    fn capacity_limit() {
        let mut m = MshrFile::new(2);
        m.allocate(Addr::new(0x0), Cycle::new(5), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x40), Cycle::new(5), MissKind::Demand)
            .unwrap();
        assert!(m.is_full());
        assert!(m
            .allocate(Addr::new(0x80), Cycle::new(5), MissKind::Demand)
            .is_err());
    }

    #[test]
    fn merge_upgrades_prefetch() {
        let mut m = MshrFile::new(2);
        m.allocate(Addr::new(0x1000), Cycle::new(30), MissKind::Prefetch)
            .unwrap();
        let (ready, was_prefetch) = m.merge_demand(Addr::new(0x1020)).unwrap();
        assert_eq!(ready, Cycle::new(30));
        assert!(was_prefetch);
        // Second merge sees it already demand.
        let (_, was_prefetch) = m.merge_demand(Addr::new(0x1020)).unwrap();
        assert!(!was_prefetch);
        assert_eq!(m.take_ready(Cycle::new(30))[0].kind, MissKind::Demand);
    }

    #[test]
    fn take_ready_is_deterministically_ordered() {
        let mut m = MshrFile::new(8);
        m.allocate(Addr::new(0x200), Cycle::new(10), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x100), Cycle::new(10), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x300), Cycle::new(5), MissKind::Demand)
            .unwrap();
        let ready = m.take_ready(Cycle::new(10));
        let blocks: Vec<_> = ready.iter().map(|e| e.block.raw()).collect();
        assert_eq!(blocks, vec![0x300, 0x100, 0x200]);
    }

    #[test]
    fn next_ready_tracks_earliest_outstanding_fill() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.next_ready(), None);
        m.allocate(Addr::new(0x100), Cycle::new(30), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x200), Cycle::new(10), MissKind::Prefetch)
            .unwrap();
        m.allocate(Addr::new(0x300), Cycle::new(20), MissKind::Demand)
            .unwrap();
        assert_eq!(m.next_ready(), Some(Cycle::new(10)));
        // Draining the 10-cycle fill advances next_ready to the survivor
        // minimum, not merely forward.
        let mut out = Vec::new();
        m.take_ready_into(Cycle::new(15), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(m.next_ready(), Some(Cycle::new(20)));
        m.clear();
        assert_eq!(m.next_ready(), None);
    }

    #[test]
    fn take_ready_into_reuses_scratch_without_growing() {
        let mut m = MshrFile::new(4);
        let mut out = Vec::with_capacity(4);
        for round in 0..8u64 {
            let at = Cycle::new(round * 10);
            m.allocate(Addr::new(0x1000 + round * 0x40), at, MissKind::Demand)
                .unwrap();
            m.take_ready_into(at, &mut out);
            assert_eq!(out.len(), 1, "round {round}");
        }
        assert_eq!(out.capacity(), 4);
    }
}
