use std::collections::HashMap;

use fdip_types::{Addr, Cycle};

/// Why an MSHR allocation was rejected.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MshrRejected {
    /// Every MSHR is occupied.
    Full,
    /// The block is already in flight (merge instead).
    AlreadyInFlight,
}

impl std::fmt::Display for MshrRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrRejected::Full => f.write_str("all mshrs are occupied"),
            MshrRejected::AlreadyInFlight => f.write_str("block already in flight"),
        }
    }
}

impl std::error::Error for MshrRejected {}

/// Who asked for an in-flight block.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MissKind {
    /// A demand fetch is waiting on this block.
    Demand,
    /// Only a prefetch requested it (so far).
    Prefetch,
}

/// An entry of the [`MshrFile`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Mshr {
    /// Block base address.
    pub block: Addr,
    /// Cycle the fill arrives.
    pub ready_at: Cycle,
    /// Demand or prefetch (a prefetch *upgrades* to demand when a demand
    /// miss merges into it — that is a "late prefetch").
    pub kind: MissKind,
    /// Set the tagged-next-line-prefetch bit when the fill lands in the L1.
    pub nlp_tagged: bool,
}

/// Miss status holding registers: tracks in-flight fills, merges duplicate
/// requests, and bounds the number of outstanding misses.
///
/// # Examples
///
/// ```
/// use fdip_mem::{MshrFile, MissKind};
/// use fdip_types::{Addr, Cycle};
///
/// let mut mshrs = MshrFile::new(4);
/// mshrs.allocate(Addr::new(0x1000), Cycle::new(50), MissKind::Prefetch).unwrap();
/// // A demand for the same block merges and upgrades the entry.
/// assert!(mshrs.merge_demand(Addr::new(0x1000)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: HashMap<u64, Mshr>,
    capacity: usize,
    block_bytes: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries (64-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_block_bytes(capacity, 64)
    }

    /// Creates an MSHR file for a custom block size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `block_bytes` is not a power of two.
    pub fn with_block_bytes(capacity: usize, block_bytes: u64) -> Self {
        assert!(capacity > 0, "mshr capacity must be non-zero");
        assert!(block_bytes.is_power_of_two());
        MshrFile {
            entries: HashMap::with_capacity(capacity),
            capacity,
            block_bytes,
        }
    }

    fn key(&self, addr: Addr) -> u64 {
        addr.block_index(self.block_bytes)
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if no entry is free.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The in-flight entry covering `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<&Mshr> {
        self.entries.get(&self.key(addr))
    }

    /// Allocates an entry for the block containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrRejected::Full`] when no register is free and
    /// [`MshrRejected::AlreadyInFlight`] when the block is already pending
    /// (use [`lookup`](Self::lookup)/[`merge_demand`](Self::merge_demand)
    /// for that case).
    pub fn allocate(
        &mut self,
        addr: Addr,
        ready_at: Cycle,
        kind: MissKind,
    ) -> Result<(), MshrRejected> {
        if self.is_full() {
            return Err(MshrRejected::Full);
        }
        let key = self.key(addr);
        if self.entries.contains_key(&key) {
            return Err(MshrRejected::AlreadyInFlight);
        }
        self.entries.insert(
            key,
            Mshr {
                block: addr.block_base(self.block_bytes),
                ready_at,
                kind,
                nlp_tagged: false,
            },
        );
        Ok(())
    }

    /// Like [`allocate`](Self::allocate), but the eventual fill carries the
    /// tagged-next-line-prefetch bit.
    ///
    /// # Errors
    ///
    /// Same as [`allocate`](Self::allocate).
    pub fn allocate_nlp(
        &mut self,
        addr: Addr,
        ready_at: Cycle,
        kind: MissKind,
    ) -> Result<(), MshrRejected> {
        self.allocate(addr, ready_at, kind)?;
        let key = self.key(addr);
        self.entries
            .get_mut(&key)
            .expect("entry just allocated")
            .nlp_tagged = true;
        Ok(())
    }

    /// Merges a demand miss into an in-flight entry, upgrading a prefetch
    /// to a demand. Returns `(ready_at, was_prefetch)` on success.
    pub fn merge_demand(&mut self, addr: Addr) -> Option<(Cycle, bool)> {
        let key = self.key(addr);
        let entry = self.entries.get_mut(&key)?;
        let was_prefetch = entry.kind == MissKind::Prefetch;
        entry.kind = MissKind::Demand;
        Some((entry.ready_at, was_prefetch))
    }

    /// Removes and returns all entries whose fill has arrived by `now`,
    /// sorted by (ready cycle, block) for determinism.
    pub fn take_ready(&mut self, now: Cycle) -> Vec<Mshr> {
        let ready_keys: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.ready_at.is_after(now))
            .map(|(k, _)| *k)
            .collect();
        let mut ready: Vec<Mshr> = ready_keys
            .into_iter()
            .map(|k| self.entries.remove(&k).expect("key just observed"))
            .collect();
        ready.sort_by_key(|e| (e.ready_at, e.block));
        ready
    }

    /// Clears all outstanding entries (used on simulator reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_take() {
        let mut m = MshrFile::new(2);
        m.allocate(Addr::new(0x1010), Cycle::new(20), MissKind::Demand)
            .unwrap();
        // Any address in the block finds the entry.
        assert!(m.lookup(Addr::new(0x103f)).is_some());
        assert!(m.lookup(Addr::new(0x1040)).is_none());
        assert!(m.take_ready(Cycle::new(19)).is_empty());
        let ready = m.take_ready(Cycle::new(20));
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].block, Addr::new(0x1000));
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_allocation_rejected() {
        let mut m = MshrFile::new(4);
        m.allocate(Addr::new(0x1000), Cycle::new(5), MissKind::Demand)
            .unwrap();
        assert!(m
            .allocate(Addr::new(0x1004), Cycle::new(9), MissKind::Demand)
            .is_err());
    }

    #[test]
    fn capacity_limit() {
        let mut m = MshrFile::new(2);
        m.allocate(Addr::new(0x0), Cycle::new(5), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x40), Cycle::new(5), MissKind::Demand)
            .unwrap();
        assert!(m.is_full());
        assert!(m
            .allocate(Addr::new(0x80), Cycle::new(5), MissKind::Demand)
            .is_err());
    }

    #[test]
    fn merge_upgrades_prefetch() {
        let mut m = MshrFile::new(2);
        m.allocate(Addr::new(0x1000), Cycle::new(30), MissKind::Prefetch)
            .unwrap();
        let (ready, was_prefetch) = m.merge_demand(Addr::new(0x1020)).unwrap();
        assert_eq!(ready, Cycle::new(30));
        assert!(was_prefetch);
        // Second merge sees it already demand.
        let (_, was_prefetch) = m.merge_demand(Addr::new(0x1020)).unwrap();
        assert!(!was_prefetch);
        assert_eq!(m.take_ready(Cycle::new(30))[0].kind, MissKind::Demand);
    }

    #[test]
    fn take_ready_is_deterministically_ordered() {
        let mut m = MshrFile::new(8);
        m.allocate(Addr::new(0x200), Cycle::new(10), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x100), Cycle::new(10), MissKind::Demand)
            .unwrap();
        m.allocate(Addr::new(0x300), Cycle::new(5), MissKind::Demand)
            .unwrap();
        let ready = m.take_ready(Cycle::new(10));
        let blocks: Vec<_> = ready.iter().map(|e| e.block.raw()).collect();
        assert_eq!(blocks, vec![0x300, 0x100, 0x200]);
    }
}
