/// Counters collected by the [`MemoryHierarchy`](crate::MemoryHierarchy).
///
/// These are the raw ingredients of the paper's metrics: miss coverage
/// (compare `l1_misses` against a no-prefetch run), prefetch accuracy
/// (`useful_prefetches / prefetches_issued`), timeliness
/// (`late_prefetches`), pollution (`useless_evictions`), and bus pressure
/// (`demand_transfers` vs `prefetch_transfers`, plus
/// [`Bus::busy_cycles`](crate::Bus::busy_cycles)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses presented to the L1-I.
    pub l1_accesses: u64,
    /// Demand accesses that hit the L1-I.
    pub l1_hits: u64,
    /// Demand accesses that missed the L1-I (and the prefetch buffer).
    pub l1_misses: u64,
    /// Demand accesses served by the prefetch buffer.
    pub pb_hits: u64,
    /// L1 miss requests that hit in the L2.
    pub l2_hits: u64,
    /// L1 miss requests that also missed the L2 (went to memory).
    pub l2_misses: u64,
    /// Prefetch requests put on the bus.
    pub prefetches_issued: u64,
    /// Prefetched blocks whose first demand touch happened (in L1 or PB) —
    /// *useful* prefetches.
    pub useful_prefetches: u64,
    /// Demand misses that merged into an in-flight prefetch — *late but
    /// partially useful* prefetches.
    pub late_prefetches: u64,
    /// Prefetched lines evicted (from L1 or PB) without ever being
    /// referenced — pollution / wasted bandwidth.
    pub useless_evictions: u64,
    /// Prefetch fills dropped because the block was already in the L1.
    pub redundant_prefetch_fills: u64,
    /// Block transfers serving demand misses.
    pub demand_transfers: u64,
    /// Block transfers serving prefetches.
    pub prefetch_transfers: u64,
    /// Demand misses served by the victim cache (no bus transfer).
    pub victim_hits: u64,
}

impl MemStats {
    /// Demand miss ratio: misses per L1 access (prefetch-buffer hits count
    /// as non-misses).
    pub fn miss_ratio(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// Fraction of issued prefetches that proved useful.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / self.prefetches_issued as f64
        }
    }
}

impl fdip_types::ToJson for MemStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            l1_accesses,
            l1_hits,
            l1_misses,
            pb_hits,
            l2_hits,
            l2_misses,
            prefetches_issued,
            useful_prefetches,
            late_prefetches,
            useless_evictions,
            redundant_prefetch_fills,
            demand_transfers,
            prefetch_transfers,
            victim_hits,
        )
    }
}

impl fdip_types::FromJson for MemStats {
    fn from_json(value: &fdip_types::Json) -> Option<MemStats> {
        fdip_types::from_json_fields!(
            value,
            MemStats {
                l1_accesses,
                l1_hits,
                l1_misses,
                pb_hits,
                l2_hits,
                l2_misses,
                prefetches_issued,
                useful_prefetches,
                late_prefetches,
                useless_evictions,
                redundant_prefetch_fills,
                demand_transfers,
                prefetch_transfers,
                victim_hits,
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = MemStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = MemStats {
            l1_accesses: 100,
            l1_misses: 10,
            prefetches_issued: 20,
            useful_prefetches: 15,
            ..MemStats::default()
        };
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        use fdip_types::{FromJson, Json, ToJson};
        let s = MemStats {
            l1_accesses: 100,
            l1_misses: 10,
            victim_hits: 3,
            ..MemStats::default()
        };
        let doc = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(MemStats::from_json(&doc), Some(s));
        assert_eq!(
            MemStats::from_json(&Json::obj([("l1_accesses", Json::uint(1))])),
            None
        );
    }
}
