//! Memory-system substrate for the FDIP reproduction.
//!
//! The 1999 FDIP evaluation depends on explicit modeling of the structures a
//! front-end prefetcher interacts with:
//!
//! * the **L1 instruction cache** and a unified **L2** behind a
//!   **bandwidth-limited bus** ([`Cache`], [`Bus`], [`MemoryHierarchy`]);
//! * **MSHRs** that merge duplicate misses and make prefetches
//!   *late-but-useful* rather than lost ([`MshrFile`]);
//! * the fully-associative **prefetch buffer** the original design fills
//!   instead of polluting the L1 ([`PrefetchBuffer`]);
//! * **L1 tag ports**, whose idle slots Cache Probe Filtering steals
//!   ([`TagPorts`]);
//! * the comparison baselines: **tagged next-line prefetching**
//!   ([`NextLineTrigger`]) and **stream buffers** ([`StreamBufferSet`]);
//! * the FDIP-X throttling filter of recently issued prefetches
//!   ([`RecentRequestFilter`]).
//!
//! Everything is cycle-accurate at the granularity the paper's experiments
//! need: latencies, bus occupancy, and fill timing are explicit; data values
//! are not modeled (instruction *delivery*, not semantics, drives front-end
//! performance).
//!
//! # Examples
//!
//! ```
//! use fdip_mem::{CacheGeometry, HierarchyConfig, MemoryHierarchy, DemandOutcome};
//! use fdip_types::{Addr, Cycle};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let now = Cycle::ZERO;
//! mem.begin_cycle(now);
//! // A cold demand miss reports when the line will arrive.
//! match mem.demand_access(now, Addr::new(0x4000)) {
//!     DemandOutcome::Miss { ready_at } => assert!(ready_at.is_after(now)),
//!     other => panic!("expected a cold miss, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod geometry;
mod hierarchy;
mod mshr;
mod next_line;
mod ports;
mod prefetch_buffer;
mod recent_filter;
mod stats;
mod stream_buffer;
mod victim;

pub use bus::Bus;
pub use cache::{Cache, EvictedLine, FillFlags, HitInfo, ReplacementPolicy};
pub use geometry::CacheGeometry;
pub use hierarchy::{DemandOutcome, HierarchyConfig, MemoryHierarchy, PrefetchOutcome};
pub use mshr::{MissKind, Mshr, MshrFile, MshrRejected};
pub use next_line::NextLineTrigger;
pub use ports::TagPorts;
pub use prefetch_buffer::PrefetchBuffer;
pub use recent_filter::RecentRequestFilter;
pub use stats::MemStats;
pub use stream_buffer::{StreamBufferConfig, StreamBufferSet, StreamHit};
pub use victim::VictimCache;
