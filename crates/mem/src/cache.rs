use fdip_types::Addr;

use crate::CacheGeometry;

/// Replacement policy for a [`Cache`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    Lru,
    /// First-in first-out: hits do not refresh recency.
    Fifo,
    /// Pseudo-random victim (deterministic xorshift stream).
    Random,
}

/// Per-line metadata returned on a cache hit.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HitInfo {
    /// The line was brought in by a prefetch.
    pub was_prefetched: bool,
    /// This is the first demand reference to the line since fill — the
    /// moment a prefetched line proves *useful*.
    pub first_reference: bool,
    /// The line carried the next-line-prefetch tag bit (now cleared).
    pub nlp_tagged: bool,
}

/// Flags applied when filling a line.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct FillFlags {
    /// The fill is a prefetch (not a demand miss response).
    pub prefetched: bool,
    /// Set the tagged-next-line-prefetch bit.
    pub nlp_tagged: bool,
}

/// Metadata of a line evicted by a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EvictedLine {
    /// Base address of the evicted block.
    pub addr: Addr,
    /// The line was prefetched and never demand-referenced — a *useless*
    /// prefetch (pollution).
    pub prefetched_unreferenced: bool,
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    prefetched: bool,
    referenced: bool,
    nlp_tagged: bool,
}

/// A set-associative, tags-only cache model.
///
/// Tracks per-line prefetch provenance (for usefulness/pollution
/// accounting) and the tag bit used by tagged next-line prefetching. Data
/// values are not modeled.
///
/// # Examples
///
/// ```
/// use fdip_mem::{Cache, CacheGeometry, FillFlags, ReplacementPolicy};
/// use fdip_types::Addr;
///
/// let mut c = Cache::new(CacheGeometry::new(64, 2, 64), ReplacementPolicy::Lru);
/// let a = Addr::new(0x1000);
/// assert!(c.access(a).is_none()); // cold miss
/// c.fill(a, FillFlags::default());
/// assert!(c.access(a).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    /// Per set: lines ordered MRU-first (LRU) or insertion-first (FIFO).
    sets: Vec<Vec<Line>>,
    policy: ReplacementPolicy,
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Cache {
            geometry,
            sets: (0..geometry.sets)
                .map(|_| Vec::with_capacity(geometry.ways))
                .collect(),
            policy,
            rng_state: 0x243f_6a88_85a3_08d3,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Demand access: on hit, promotes (LRU), marks the line referenced,
    /// clears the NLP tag bit, and reports the line's prior state.
    pub fn access(&mut self, addr: Addr) -> Option<HitInfo> {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.tag == tag)?;
        let info = HitInfo {
            was_prefetched: set[pos].prefetched,
            first_reference: !set[pos].referenced,
            nlp_tagged: set[pos].nlp_tagged,
        };
        set[pos].referenced = true;
        set[pos].nlp_tagged = false;
        if self.policy == ReplacementPolicy::Lru {
            let line = set.remove(pos);
            set.insert(0, line);
        }
        Some(info)
    }

    /// Probe: is the block present? No state is modified (this is what a
    /// CPF tag-port probe observes).
    pub fn probe(&self, addr: Addr) -> bool {
        let set = &self.sets[self.geometry.set_index(addr)];
        let tag = self.geometry.tag(addr);
        set.iter().any(|l| l.tag == tag)
    }

    /// Fills the block, evicting a victim if the set is full. Filling an
    /// already-present block only merges flags (keeps `referenced`).
    pub fn fill(&mut self, addr: Addr, flags: FillFlags) -> Option<EvictedLine> {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let ways = self.geometry.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            set[pos].nlp_tagged |= flags.nlp_tagged;
            return None;
        }
        let evicted = if set.len() == ways {
            let victim = match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set.len() - 1,
                ReplacementPolicy::Random => {
                    self.rng_state ^= self.rng_state << 13;
                    self.rng_state ^= self.rng_state >> 7;
                    self.rng_state ^= self.rng_state << 17;
                    (self.rng_state % ways as u64) as usize
                }
            };
            let line = set.remove(victim);
            Some(EvictedLine {
                addr: self.geometry.block_addr(set_idx, line.tag),
                prefetched_unreferenced: line.prefetched && !line.referenced,
            })
        } else {
            None
        };
        self.sets[set_idx].insert(
            0,
            Line {
                tag,
                prefetched: flags.prefetched,
                referenced: false,
                nlp_tagged: flags.nlp_tagged,
            },
        );
        evicted
    }

    /// Invalidates the block if present; reports whether it was a
    /// never-referenced prefetch.
    pub fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.tag == tag)?;
        let line = set.remove(pos);
        Some(EvictedLine {
            addr,
            prefetched_unreferenced: line.prefetched && !line.referenced,
        })
    }

    /// Clears all lines.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> Cache {
        Cache::new(CacheGeometry::new(sets, ways, 64), ReplacementPolicy::Lru)
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x1000);
        assert!(c.access(a).is_none());
        assert!(c.fill(a, FillFlags::default()).is_none());
        let hit = c.access(a).unwrap();
        assert!(!hit.was_prefetched);
        assert!(hit.first_reference);
    }

    #[test]
    fn same_block_addresses_hit() {
        let mut c = cache(4, 2);
        c.fill(Addr::new(0x1000), FillFlags::default());
        assert!(c.access(Addr::new(0x103c)).is_some());
    }

    #[test]
    fn lru_eviction_prefers_least_recent() {
        let mut c = cache(1, 2);
        let (a, b, d) = (Addr::new(0), Addr::new(64), Addr::new(128));
        c.fill(a, FillFlags::default());
        c.fill(b, FillFlags::default());
        c.access(a); // b is now LRU
        let evicted = c.fill(d, FillFlags::default()).unwrap();
        assert_eq!(evicted.addr, b);
        assert!(c.probe(a) && c.probe(d) && !c.probe(b));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = Cache::new(CacheGeometry::new(1, 2, 64), ReplacementPolicy::Fifo);
        let (a, b, d) = (Addr::new(0), Addr::new(64), Addr::new(128));
        c.fill(a, FillFlags::default());
        c.fill(b, FillFlags::default());
        c.access(a); // does not save a under FIFO
        let evicted = c.fill(d, FillFlags::default()).unwrap();
        assert_eq!(evicted.addr, a);
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = Cache::new(CacheGeometry::new(1, 4, 64), ReplacementPolicy::Random);
            let mut evictions = Vec::new();
            for i in 0..32u64 {
                if let Some(e) = c.fill(Addr::new(i * 64), FillFlags::default()) {
                    evictions.push(e.addr);
                }
            }
            evictions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prefetch_usefulness_tracking() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x2000);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let first = c.access(a).unwrap();
        assert!(first.was_prefetched && first.first_reference);
        let second = c.access(a).unwrap();
        assert!(second.was_prefetched && !second.first_reference);
    }

    #[test]
    fn pollution_detected_on_eviction() {
        let mut c = cache(1, 1);
        let a = Addr::new(0);
        let b = Addr::new(64);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let evicted = c.fill(b, FillFlags::default()).unwrap();
        assert!(evicted.prefetched_unreferenced, "unused prefetch evicted");
    }

    #[test]
    fn nlp_tag_cleared_on_first_access() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x3000);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: true,
            },
        );
        assert!(c.access(a).unwrap().nlp_tagged);
        assert!(!c.access(a).unwrap().nlp_tagged, "tag bit cleared");
    }

    #[test]
    fn refill_of_present_block_keeps_referenced_state() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x1000);
        c.fill(a, FillFlags::default());
        c.access(a);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let hit = c.access(a).unwrap();
        assert!(!hit.first_reference, "merge must not reset referenced");
        assert!(!hit.was_prefetched, "merge must not rewrite provenance");
    }

    #[test]
    fn invalidate_reports_pollution_state() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x1000);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let e = c.invalidate(a).unwrap();
        assert!(e.prefetched_unreferenced);
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = cache(2, 2);
        for i in 0..64u64 {
            c.fill(Addr::new(i * 64), FillFlags::default());
        }
        assert_eq!(c.len(), 4);
    }
}
