use fdip_types::Addr;

use crate::CacheGeometry;

/// Replacement policy for a [`Cache`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    Lru,
    /// First-in first-out: hits do not refresh recency.
    Fifo,
    /// Pseudo-random victim (deterministic xorshift stream).
    Random,
}

/// Per-line metadata returned on a cache hit.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HitInfo {
    /// The line was brought in by a prefetch.
    pub was_prefetched: bool,
    /// This is the first demand reference to the line since fill — the
    /// moment a prefetched line proves *useful*.
    pub first_reference: bool,
    /// The line carried the next-line-prefetch tag bit (now cleared).
    pub nlp_tagged: bool,
}

/// Flags applied when filling a line.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct FillFlags {
    /// The fill is a prefetch (not a demand miss response).
    pub prefetched: bool,
    /// Set the tagged-next-line-prefetch bit.
    pub nlp_tagged: bool,
}

/// Metadata of a line evicted by a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EvictedLine {
    /// Base address of the evicted block.
    pub addr: Addr,
    /// The line was prefetched and never demand-referenced — a *useless*
    /// prefetch (pollution).
    pub prefetched_unreferenced: bool,
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    prefetched: bool,
    referenced: bool,
    nlp_tagged: bool,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    prefetched: false,
    referenced: false,
    nlp_tagged: false,
};

/// A set-associative, tags-only cache model.
///
/// Tracks per-line prefetch provenance (for usefulness/pollution
/// accounting) and the tag bit used by tagged next-line prefetching. Data
/// values are not modeled.
///
/// Storage is flat and preallocated: one `sets × ways` slab of lines
/// (slot `set * ways + way`) plus one slab of packed per-set recency
/// order. `order[set]` is a permutation of the set's way indices — the
/// first `occupied[set]` entries name valid ways MRU-first (LRU) or
/// newest-inserted-first (FIFO), the rest name free ways. LRU promotion
/// and victim selection therefore shift a few `u16`s instead of
/// `remove`/`insert`-shifting whole `Line`s through a per-set `Vec`, and
/// no operation allocates after construction.
///
/// Under [`ReplacementPolicy::Random`] the victim is an unbiased
/// bounded draw of a *way index* from the deterministic xorshift stream,
/// and the filled line replaces the victim in place: Random-policy state
/// lives entirely in the RNG and never perturbs the recency order that
/// LRU/FIFO bookkeeping uses. (The previous implementation drew
/// `rng_state % ways` — modulo-biased for non-power-of-two
/// associativities — interpreted it as a recency *position*, and
/// re-inserted the new line at the MRU slot.)
///
/// # Examples
///
/// ```
/// use fdip_mem::{Cache, CacheGeometry, FillFlags, ReplacementPolicy};
/// use fdip_types::Addr;
///
/// let mut c = Cache::new(CacheGeometry::new(64, 2, 64), ReplacementPolicy::Lru);
/// let a = Addr::new(0x1000);
/// assert!(c.access(a).is_none()); // cold miss
/// c.fill(a, FillFlags::default());
/// assert!(c.access(a).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    /// Flat `sets × ways` line storage; validity is determined by `order`.
    lines: Box<[Line]>,
    /// Per-set way permutation: valid ways (recency-ordered) first, then
    /// free ways.
    order: Box<[u16]>,
    /// Valid-line count per set.
    occupied: Box<[u16]>,
    policy: ReplacementPolicy,
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds `u16` range.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        assert!(
            geometry.ways <= u16::MAX as usize,
            "associativity {} exceeds packed-order range",
            geometry.ways
        );
        let total = geometry.sets * geometry.ways;
        let mut order = Vec::with_capacity(total);
        for _ in 0..geometry.sets {
            order.extend(0..geometry.ways as u16);
        }
        Cache {
            geometry,
            lines: vec![EMPTY_LINE; total].into_boxed_slice(),
            order: order.into_boxed_slice(),
            occupied: vec![0u16; geometry.sets].into_boxed_slice(),
            policy,
            rng_state: 0x243f_6a88_85a3_08d3,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.occupied.iter().map(|&n| n as usize).sum()
    }

    /// Returns `true` if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.occupied.iter().all(|&n| n == 0)
    }

    /// Finds `tag` among the valid ways of `set_idx`, returning its
    /// recency position and way index.
    fn find(&self, set_idx: usize, tag: u64) -> Option<(usize, usize)> {
        let base = set_idx * self.geometry.ways;
        let occ = self.occupied[set_idx] as usize;
        for pos in 0..occ {
            let way = self.order[base + pos] as usize;
            if self.lines[base + way].tag == tag {
                return Some((pos, way));
            }
        }
        None
    }

    /// Moves the way at recency position `pos` to the MRU slot.
    fn promote(&mut self, set_idx: usize, pos: usize) {
        let base = set_idx * self.geometry.ways;
        let way = self.order[base + pos];
        self.order.copy_within(base..base + pos, base + 1);
        self.order[base] = way;
    }

    /// Demand access: on hit, promotes (LRU), marks the line referenced,
    /// clears the NLP tag bit, and reports the line's prior state.
    pub fn access(&mut self, addr: Addr) -> Option<HitInfo> {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let (pos, way) = self.find(set_idx, tag)?;
        let line = &mut self.lines[set_idx * self.geometry.ways + way];
        let info = HitInfo {
            was_prefetched: line.prefetched,
            first_reference: !line.referenced,
            nlp_tagged: line.nlp_tagged,
        };
        line.referenced = true;
        line.nlp_tagged = false;
        if self.policy == ReplacementPolicy::Lru {
            self.promote(set_idx, pos);
        }
        Some(info)
    }

    /// Probe: is the block present? No state is modified (this is what a
    /// CPF tag-port probe observes).
    pub fn probe(&self, addr: Addr) -> bool {
        self.find(self.geometry.set_index(addr), self.geometry.tag(addr))
            .is_some()
    }

    /// An unbiased draw from `[0, ways)` off the xorshift stream, by
    /// masking to the next power of two and rejecting out-of-range values
    /// (for power-of-two associativities this accepts the first draw and
    /// equals the old `% ways` reduction, so the random sequence itself is
    /// unchanged there).
    fn draw_way(&mut self, ways: usize) -> usize {
        let mask = (ways as u64).next_power_of_two() - 1;
        loop {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            let r = self.rng_state & mask;
            if (r as usize) < ways {
                return r as usize;
            }
        }
    }

    /// Fills the block, evicting a victim if the set is full. Filling an
    /// already-present block only merges flags (keeps `referenced`).
    pub fn fill(&mut self, addr: Addr, flags: FillFlags) -> Option<EvictedLine> {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let ways = self.geometry.ways;
        let base = set_idx * ways;
        if let Some((_, way)) = self.find(set_idx, tag) {
            self.lines[base + way].nlp_tagged |= flags.nlp_tagged;
            return None;
        }
        let new_line = Line {
            tag,
            prefetched: flags.prefetched,
            referenced: false,
            nlp_tagged: flags.nlp_tagged,
        };
        let occ = self.occupied[set_idx] as usize;
        if occ < ways {
            // A free way sits just past the valid region; claim it and
            // rotate it to the MRU slot.
            let way = self.order[base + occ];
            self.lines[base + way as usize] = new_line;
            self.order.copy_within(base..base + occ, base + 1);
            self.order[base] = way;
            self.occupied[set_idx] = (occ + 1) as u16;
            return None;
        }
        let (victim_pos, victim_way) = match self.policy {
            // LRU and FIFO evict the line at the tail of the recency
            // order; the reused way rotates to the MRU slot.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                (Some(ways - 1), self.order[base + ways - 1] as usize)
            }
            // Random replaces a drawn way in place, leaving the recency
            // permutation untouched.
            ReplacementPolicy::Random => (None, self.draw_way(ways)),
        };
        let victim = self.lines[base + victim_way];
        self.lines[base + victim_way] = new_line;
        if let Some(pos) = victim_pos {
            self.promote(set_idx, pos);
        }
        Some(EvictedLine {
            addr: self.geometry.block_addr(set_idx, victim.tag),
            prefetched_unreferenced: victim.prefetched && !victim.referenced,
        })
    }

    /// Invalidates the block if present; reports whether it was a
    /// never-referenced prefetch.
    pub fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let (pos, way) = self.find(set_idx, tag)?;
        let base = set_idx * self.geometry.ways;
        let occ = self.occupied[set_idx] as usize;
        let line = self.lines[base + way];
        // Close the gap in the valid region and park the freed way at the
        // head of the free region.
        self.order
            .copy_within(base + pos + 1..base + occ, base + pos);
        self.order[base + occ - 1] = way as u16;
        self.occupied[set_idx] = (occ - 1) as u16;
        Some(EvictedLine {
            addr,
            prefetched_unreferenced: line.prefetched && !line.referenced,
        })
    }

    /// Clears all lines.
    pub fn clear(&mut self) {
        self.occupied.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> Cache {
        Cache::new(CacheGeometry::new(sets, ways, 64), ReplacementPolicy::Lru)
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x1000);
        assert!(c.access(a).is_none());
        assert!(c.fill(a, FillFlags::default()).is_none());
        let hit = c.access(a).unwrap();
        assert!(!hit.was_prefetched);
        assert!(hit.first_reference);
    }

    #[test]
    fn same_block_addresses_hit() {
        let mut c = cache(4, 2);
        c.fill(Addr::new(0x1000), FillFlags::default());
        assert!(c.access(Addr::new(0x103c)).is_some());
    }

    #[test]
    fn lru_eviction_prefers_least_recent() {
        let mut c = cache(1, 2);
        let (a, b, d) = (Addr::new(0), Addr::new(64), Addr::new(128));
        c.fill(a, FillFlags::default());
        c.fill(b, FillFlags::default());
        c.access(a); // b is now LRU
        let evicted = c.fill(d, FillFlags::default()).unwrap();
        assert_eq!(evicted.addr, b);
        assert!(c.probe(a) && c.probe(d) && !c.probe(b));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = Cache::new(CacheGeometry::new(1, 2, 64), ReplacementPolicy::Fifo);
        let (a, b, d) = (Addr::new(0), Addr::new(64), Addr::new(128));
        c.fill(a, FillFlags::default());
        c.fill(b, FillFlags::default());
        c.access(a); // does not save a under FIFO
        let evicted = c.fill(d, FillFlags::default()).unwrap();
        assert_eq!(evicted.addr, a);
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = Cache::new(CacheGeometry::new(1, 4, 64), ReplacementPolicy::Random);
            let mut evictions = Vec::new();
            for i in 0..32u64 {
                if let Some(e) = c.fill(Addr::new(i * 64), FillFlags::default()) {
                    evictions.push(e.addr);
                }
            }
            evictions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_victim_is_a_way_index_not_a_recency_position() {
        // Regression for the old positional interpretation: fill A then B
        // into a 2-way set (A→way 0, B→way 1), evict with C, and check
        // the victim against the first value of the seeded xorshift
        // stream *as a way index*. The old code removed recency position
        // r from an MRU-first vec — [B, A] — which names the opposite
        // line for every r, so this asserts the fixed semantics.
        let mut rng: u64 = 0x243f_6a88_85a3_08d3;
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let r = (rng & 1) as usize;

        let mut c = Cache::new(CacheGeometry::new(1, 2, 64), ReplacementPolicy::Random);
        let (a, b) = (Addr::new(0), Addr::new(64));
        c.fill(a, FillFlags::default());
        c.fill(b, FillFlags::default());
        let evicted = c.fill(Addr::new(128), FillFlags::default()).unwrap();
        assert_eq!(evicted.addr, [a, b][r], "victim way {r} holds this line");
    }

    #[test]
    fn random_draw_is_in_range_and_covers_non_power_of_two_ways() {
        // 3 ways exercises the rejection path (mask 4). Every draw must
        // stay in range (the cache would panic on an out-of-range way)
        // and, over many evictions, no way may be starved or grossly
        // over-preferred — the loose bounds catch a reintroduced bias or
        // a victim selection pinned to one slot.
        let mut c = Cache::new(CacheGeometry::new(1, 3, 64), ReplacementPolicy::Random);
        let mut way_evictions = [0u32; 3];
        let mut resident: Vec<Addr> = Vec::new();
        for i in 0..3u64 {
            let a = Addr::new(i * 64);
            c.fill(a, FillFlags::default());
            resident.push(a);
        }
        for i in 3..3003u64 {
            let a = Addr::new(i * 64);
            let evicted = c.fill(a, FillFlags::default()).unwrap().addr;
            let way = resident
                .iter()
                .position(|&r| r == evicted)
                .expect("victim must be resident");
            way_evictions[way] += 1;
            resident[way] = a;
        }
        let total: u32 = way_evictions.iter().sum();
        assert_eq!(total, 3000);
        for (way, &n) in way_evictions.iter().enumerate() {
            assert!(
                (800..=1200).contains(&n),
                "way {way} evicted {n}/3000 times — not roughly uniform: {way_evictions:?}"
            );
        }
    }

    #[test]
    fn prefetch_usefulness_tracking() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x2000);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let first = c.access(a).unwrap();
        assert!(first.was_prefetched && first.first_reference);
        let second = c.access(a).unwrap();
        assert!(second.was_prefetched && !second.first_reference);
    }

    #[test]
    fn pollution_detected_on_eviction() {
        let mut c = cache(1, 1);
        let a = Addr::new(0);
        let b = Addr::new(64);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let evicted = c.fill(b, FillFlags::default()).unwrap();
        assert!(evicted.prefetched_unreferenced, "unused prefetch evicted");
    }

    #[test]
    fn nlp_tag_cleared_on_first_access() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x3000);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: true,
            },
        );
        assert!(c.access(a).unwrap().nlp_tagged);
        assert!(!c.access(a).unwrap().nlp_tagged, "tag bit cleared");
    }

    #[test]
    fn refill_of_present_block_keeps_referenced_state() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x1000);
        c.fill(a, FillFlags::default());
        c.access(a);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let hit = c.access(a).unwrap();
        assert!(!hit.first_reference, "merge must not reset referenced");
        assert!(!hit.was_prefetched, "merge must not rewrite provenance");
    }

    #[test]
    fn invalidate_reports_pollution_state() {
        let mut c = cache(4, 2);
        let a = Addr::new(0x1000);
        c.fill(
            a,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
        let e = c.invalidate(a).unwrap();
        assert!(e.prefetched_unreferenced);
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = cache(2, 2);
        for i in 0..64u64 {
            c.fill(Addr::new(i * 64), FillFlags::default());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn refill_after_invalidate_reuses_freed_ways() {
        let mut c = cache(1, 4);
        let addrs: Vec<Addr> = (0..4u64).map(|i| Addr::new(i * 64)).collect();
        for &a in &addrs {
            c.fill(a, FillFlags::default());
        }
        // Free a middle-of-recency line, then fill two new blocks: the
        // first reuses the freed way without evicting, the second evicts.
        c.invalidate(addrs[1]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.fill(Addr::new(0x400), FillFlags::default()).is_none());
        assert_eq!(c.len(), 4);
        let evicted = c.fill(Addr::new(0x440), FillFlags::default()).unwrap();
        assert_eq!(evicted.addr, addrs[0], "LRU after the reshuffle");
        for &a in &addrs[2..] {
            assert!(c.probe(a), "{a:?} must survive");
        }
    }
}
