use fdip_types::Addr;

/// The FDIP-X prefetch-throttling filter: a small fully-associative FIFO of
/// recently issued prefetch block addresses. A candidate matching an entry
/// is suppressed, bounding duplicate prefetch traffic (the paper uses 10
/// entries).
///
/// # Examples
///
/// ```
/// use fdip_mem::RecentRequestFilter;
/// use fdip_types::Addr;
///
/// let mut f = RecentRequestFilter::new(10, 64);
/// assert!(f.admit(Addr::new(0x1000))); // first sight: admitted + recorded
/// assert!(!f.admit(Addr::new(0x1020))); // same block: suppressed
/// ```
#[derive(Clone, Debug)]
pub struct RecentRequestFilter {
    entries: Vec<Addr>,
    capacity: usize,
    block_bytes: u64,
    suppressed: u64,
}

impl RecentRequestFilter {
    /// Creates a filter of `capacity` block entries. Zero capacity disables
    /// filtering (everything is admitted).
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn new(capacity: usize, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two());
        RecentRequestFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            block_bytes,
            suppressed: 0,
        }
    }

    /// Tests the block containing `addr`: returns `true` (and records it)
    /// if it was not recently requested, `false` if suppressed.
    pub fn admit(&mut self, addr: Addr) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if self.is_recent(addr) {
            self.suppressed += 1;
            return false;
        }
        self.note(addr);
        true
    }

    /// Non-recording, non-counting membership test (returns `false` when
    /// filtering is disabled).
    pub fn is_recent(&mut self, addr: Addr) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let base = addr.block_base(self.block_bytes);
        self.entries.contains(&base)
    }

    /// Records an issued prefetch without testing.
    pub fn note(&mut self, addr: Addr) {
        if self.capacity == 0 {
            return;
        }
        let base = addr.block_base(self.block_bytes);
        if self.entries.contains(&base) {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(base);
    }

    /// Like [`is_recent`](Self::is_recent) but counts the suppression.
    pub fn check_and_count(&mut self, addr: Addr) -> bool {
        let recent = self.is_recent(addr);
        if recent {
            self.suppressed += 1;
        }
        recent
    }

    /// Number of candidates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Clears the filter (e.g. on pipeline flush ablations).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppresses_recent_duplicates() {
        let mut f = RecentRequestFilter::new(2, 64);
        assert!(f.admit(Addr::new(0x000)));
        assert!(f.admit(Addr::new(0x040)));
        assert!(!f.admit(Addr::new(0x000)));
        assert_eq!(f.suppressed(), 1);
    }

    #[test]
    fn old_entries_age_out() {
        let mut f = RecentRequestFilter::new(2, 64);
        f.admit(Addr::new(0x000));
        f.admit(Addr::new(0x040));
        f.admit(Addr::new(0x080)); // evicts 0x000
        assert!(f.admit(Addr::new(0x000)), "aged out, admitted again");
    }

    #[test]
    fn zero_capacity_admits_everything() {
        let mut f = RecentRequestFilter::new(0, 64);
        assert!(f.admit(Addr::new(0x0)));
        assert!(f.admit(Addr::new(0x0)));
        assert_eq!(f.suppressed(), 0);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut f = RecentRequestFilter::new(4, 64);
        f.admit(Addr::new(0x0));
        assert!(!f.admit(Addr::new(0x0)));
        f.clear();
        assert!(f.admit(Addr::new(0x0)));
        assert_eq!(f.suppressed(), 1);
    }
}
