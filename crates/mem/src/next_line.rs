use fdip_types::Addr;

use crate::HitInfo;

/// Trigger logic for *tagged next-line prefetching*, the classic baseline
/// the 1999 paper compares FDIP against.
///
/// Policy: on a demand **miss** to block *B*, or on the **first hit** to a
/// block that was brought in by the prefetcher (its tag bit still set),
/// prefetch block *B+1*. The tag bit lives in the cache line
/// ([`HitInfo::nlp_tagged`]); this type just centralizes the trigger
/// decision so the front-end and tests agree on it.
///
/// # Examples
///
/// ```
/// use fdip_mem::NextLineTrigger;
/// use fdip_types::Addr;
///
/// let t = NextLineTrigger::new(64);
/// // A miss on 0x1000 triggers a prefetch of 0x1040.
/// assert_eq!(t.on_miss(Addr::new(0x1010)), Addr::new(0x1040));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct NextLineTrigger {
    block_bytes: u64,
}

impl NextLineTrigger {
    /// Creates trigger logic for `block_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn new(block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two());
        NextLineTrigger { block_bytes }
    }

    /// The block to prefetch after a demand miss at `addr`.
    pub fn on_miss(&self, addr: Addr) -> Addr {
        addr.block_base(self.block_bytes) + self.block_bytes
    }

    /// The block to prefetch after a demand *hit* at `addr`, if the hit
    /// should trigger (tagged policy: only the first hit to a prefetched,
    /// still-tagged line).
    pub fn on_hit(&self, addr: Addr, info: &HitInfo) -> Option<Addr> {
        if info.nlp_tagged {
            Some(addr.block_base(self.block_bytes) + self.block_bytes)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_prefetches_sequential_block() {
        let t = NextLineTrigger::new(32);
        assert_eq!(t.on_miss(Addr::new(0x100)), Addr::new(0x120));
        assert_eq!(t.on_miss(Addr::new(0x11f)), Addr::new(0x120));
    }

    #[test]
    fn hit_triggers_only_when_tagged() {
        let t = NextLineTrigger::new(64);
        let tagged = HitInfo {
            was_prefetched: true,
            first_reference: true,
            nlp_tagged: true,
        };
        let untagged = HitInfo {
            was_prefetched: true,
            first_reference: false,
            nlp_tagged: false,
        };
        assert_eq!(
            t.on_hit(Addr::new(0x1000), &tagged),
            Some(Addr::new(0x1040))
        );
        assert_eq!(t.on_hit(Addr::new(0x1000), &untagged), None);
    }
}
