use fdip_types::Cycle;

/// A single-channel, occupancy-modeled bus between the L1 and the L2.
///
/// Each block transfer occupies the bus for a fixed number of cycles;
/// requests are granted at the earliest cycle the bus is free. Demand
/// misses and prefetches share this bandwidth — the contention FDIP's
/// filtering exists to manage.
///
/// # Examples
///
/// ```
/// use fdip_mem::Bus;
/// use fdip_types::Cycle;
///
/// let mut bus = Bus::new(4);
/// let g1 = bus.request(Cycle::new(10));
/// let g2 = bus.request(Cycle::new(10));
/// assert_eq!(g1, Cycle::new(10));
/// assert_eq!(g2, Cycle::new(14)); // waits for the first transfer
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    transfer_cycles: u64,
    free_at: Cycle,
    busy_cycles: u64,
    transfers: u64,
}

impl Bus {
    /// Creates a bus where one block transfer takes `transfer_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `transfer_cycles` is zero.
    pub fn new(transfer_cycles: u64) -> Self {
        assert!(transfer_cycles > 0, "transfers take at least one cycle");
        Bus {
            transfer_cycles,
            free_at: Cycle::ZERO,
            busy_cycles: 0,
            transfers: 0,
        }
    }

    /// Cycles one block transfer occupies.
    pub fn transfer_cycles(&self) -> u64 {
        self.transfer_cycles
    }

    /// Returns `true` if a request at `now` would start immediately.
    pub fn is_idle(&self, now: Cycle) -> bool {
        !self.free_at.is_after(now)
    }

    /// First cycle at which the bus is free (a request at or after this
    /// cycle starts immediately). Event-driven callers use this to
    /// schedule the next bus-grant event instead of polling `is_idle`.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Requests a transfer at `now`; returns the grant (start) cycle and
    /// occupies the bus until `grant + transfer_cycles`.
    pub fn request(&mut self, now: Cycle) -> Cycle {
        let grant = self.free_at.max(now);
        self.free_at = grant + self.transfer_cycles;
        self.busy_cycles += self.transfer_cycles;
        self.transfers += 1;
        grant
    }

    /// Total cycles the bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total transfers granted.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Clears the accumulated counters (occupancy state is kept), for
    /// measurement warmup.
    pub fn reset_counters(&mut self) {
        self.busy_cycles = 0;
        self.transfers = 0;
    }

    /// Bus utilization over `elapsed` total cycles (clamped to 1.0; the bus
    /// may be booked past the end of simulation).
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialize() {
        let mut bus = Bus::new(4);
        assert_eq!(bus.request(Cycle::new(0)), Cycle::new(0));
        assert_eq!(bus.request(Cycle::new(0)), Cycle::new(4));
        assert_eq!(bus.request(Cycle::new(0)), Cycle::new(8));
        assert_eq!(bus.transfers(), 3);
        assert_eq!(bus.busy_cycles(), 12);
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut bus = Bus::new(2);
        bus.request(Cycle::new(0)); // busy 0..2
        bus.request(Cycle::new(10)); // busy 10..12
        assert_eq!(bus.busy_cycles(), 4);
        assert!((bus.utilization(12) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn is_idle_reflects_occupancy() {
        let mut bus = Bus::new(3);
        assert!(bus.is_idle(Cycle::new(5)));
        bus.request(Cycle::new(5)); // busy 5..8
        assert!(!bus.is_idle(Cycle::new(6)));
        assert!(bus.is_idle(Cycle::new(8)));
    }

    #[test]
    fn utilization_clamps() {
        let mut bus = Bus::new(100);
        bus.request(Cycle::new(0));
        assert_eq!(bus.utilization(10), 1.0);
        assert_eq!(bus.utilization(0), 0.0);
    }
}
