use fdip_types::Addr;

/// The fully-associative prefetch buffer of the 1999 FDIP design.
///
/// Prefetched blocks land here instead of the L1-I, so wrong prefetches
/// cannot pollute the cache. The fetch engine probes it in parallel with
/// the L1; a hit *promotes* the block into the L1 (removing it here).
/// Replacement is FIFO over a small number of entries (32 in the paper's
/// configuration).
///
/// # Examples
///
/// ```
/// use fdip_mem::PrefetchBuffer;
/// use fdip_types::Addr;
///
/// let mut pb = PrefetchBuffer::new(2, 64);
/// pb.insert(Addr::new(0x1000));
/// assert!(pb.contains(Addr::new(0x1004)));
/// assert!(pb.take(Addr::new(0x1000))); // promote to L1
/// assert!(!pb.contains(Addr::new(0x1000)));
/// ```
#[derive(Clone, Debug)]
pub struct PrefetchBuffer {
    /// Block base addresses, oldest first. A referenced block is *taken*
    /// (promoted to L1), so anything still here at eviction was never used.
    entries: Vec<Addr>,
    capacity: usize,
    block_bytes: u64,
    evicted_unreferenced: u64,
}

impl PrefetchBuffer {
    /// Creates a buffer of `capacity` blocks of `block_bytes` each.
    ///
    /// A zero-capacity buffer is legal and always misses — it models the
    /// "prefetch straight into L1" configuration.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn new(capacity: usize, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two());
        PrefetchBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
            block_bytes,
            evicted_unreferenced: 0,
        }
    }

    /// Buffer capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the buffer holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn base(&self, addr: Addr) -> Addr {
        addr.block_base(self.block_bytes)
    }

    /// Returns `true` if the block containing `addr` is buffered.
    pub fn contains(&self, addr: Addr) -> bool {
        let base = self.base(addr);
        self.entries.contains(&base)
    }

    /// Inserts the block containing `addr`, evicting the oldest entry when
    /// full. Returns the evicted block, if any. Duplicate inserts refresh
    /// nothing (FIFO).
    pub fn insert(&mut self, addr: Addr) -> Option<Addr> {
        if self.capacity == 0 {
            return None;
        }
        let base = self.base(addr);
        if self.contains(base) {
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            let old = self.entries.remove(0);
            self.evicted_unreferenced += 1;
            Some(old)
        } else {
            None
        };
        self.entries.push(base);
        evicted
    }

    /// Removes the block containing `addr` for promotion into the L1.
    /// Returns `true` if it was present.
    pub fn take(&mut self, addr: Addr) -> bool {
        let base = self.base(addr);
        if let Some(pos) = self.entries.iter().position(|a| *a == base) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Blocks that aged out without ever being fetched — useless
    /// prefetches.
    pub fn evicted_unreferenced(&self) -> u64 {
        self.evicted_unreferenced
    }

    /// Storage cost in bits (tag-only model: 46-bit block-granule tags).
    pub fn storage_bits(&self) -> u64 {
        // 48-bit VA minus block offset bits, plus a valid bit, per entry.
        let tag_bits = 48 - self.block_bytes.trailing_zeros() as u64;
        self.capacity as u64 * (tag_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction() {
        let mut pb = PrefetchBuffer::new(2, 64);
        pb.insert(Addr::new(0x000));
        pb.insert(Addr::new(0x040));
        let evicted = pb.insert(Addr::new(0x080));
        assert_eq!(evicted, Some(Addr::new(0x000)));
        assert!(!pb.contains(Addr::new(0x000)));
        assert_eq!(pb.evicted_unreferenced(), 1);
    }

    #[test]
    fn duplicates_do_not_grow() {
        let mut pb = PrefetchBuffer::new(4, 64);
        pb.insert(Addr::new(0x1000));
        pb.insert(Addr::new(0x1010)); // same block
        assert_eq!(pb.len(), 1);
    }

    #[test]
    fn take_removes() {
        let mut pb = PrefetchBuffer::new(4, 64);
        pb.insert(Addr::new(0x1000));
        assert!(pb.take(Addr::new(0x1030)));
        assert!(!pb.take(Addr::new(0x1000)));
        assert!(pb.is_empty());
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut pb = PrefetchBuffer::new(0, 64);
        assert_eq!(pb.insert(Addr::new(0x1000)), None);
        assert!(!pb.contains(Addr::new(0x1000)));
    }

    #[test]
    fn storage_accounting() {
        let pb = PrefetchBuffer::new(32, 64);
        // 48-6 = 42-bit tag + valid per entry.
        assert_eq!(pb.storage_bits(), 32 * 43);
    }
}
