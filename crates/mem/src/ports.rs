use fdip_types::Cycle;

/// The L1-I tag-port model behind Cache Probe Filtering.
///
/// The cache has a fixed number of tag ports per cycle. Demand fetches
/// consume ports first; CPF may only *steal idle ports* — the central
/// constraint of the 1999 filtering design. Callers must call
/// [`begin_cycle`](Self::begin_cycle) once per cycle before using ports.
///
/// # Examples
///
/// ```
/// use fdip_mem::TagPorts;
/// use fdip_types::Cycle;
///
/// let mut ports = TagPorts::new(2);
/// ports.begin_cycle(Cycle::new(7));
/// assert!(ports.try_use());  // fetch engine
/// assert!(ports.try_use());  // one idle port left for CPF
/// assert!(!ports.try_use()); // exhausted this cycle
/// ```
#[derive(Clone, Debug)]
pub struct TagPorts {
    per_cycle: u32,
    used: u32,
    current: Cycle,
    total_uses: u64,
    total_cycles: u64,
}

impl TagPorts {
    /// Creates a port model with `per_cycle` tag ports.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero.
    pub fn new(per_cycle: u32) -> Self {
        assert!(per_cycle > 0, "need at least one tag port");
        TagPorts {
            per_cycle,
            used: 0,
            current: Cycle::ZERO,
            total_uses: 0,
            total_cycles: 0,
        }
    }

    /// Ports available per cycle.
    pub fn per_cycle(&self) -> u32 {
        self.per_cycle
    }

    /// Starts accounting for a new cycle.
    pub fn begin_cycle(&mut self, now: Cycle) {
        self.current = now;
        self.used = 0;
        self.total_cycles += 1;
    }

    /// Ports still free this cycle.
    pub fn available(&self) -> u32 {
        self.per_cycle - self.used
    }

    /// Claims one port if any is free this cycle.
    pub fn try_use(&mut self) -> bool {
        if self.used < self.per_cycle {
            self.used += 1;
            self.total_uses += 1;
            true
        } else {
            false
        }
    }

    /// Average port occupancy (uses per port-cycle).
    pub fn occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_uses as f64 / (self.total_cycles * self.per_cycle as u64) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_replenish_each_cycle() {
        let mut p = TagPorts::new(1);
        p.begin_cycle(Cycle::new(0));
        assert!(p.try_use());
        assert!(!p.try_use());
        p.begin_cycle(Cycle::new(1));
        assert!(p.try_use());
    }

    #[test]
    fn available_counts_down() {
        let mut p = TagPorts::new(3);
        p.begin_cycle(Cycle::new(0));
        assert_eq!(p.available(), 3);
        p.try_use();
        p.try_use();
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn occupancy_statistic() {
        let mut p = TagPorts::new(2);
        p.begin_cycle(Cycle::new(0));
        p.try_use();
        p.begin_cycle(Cycle::new(1));
        p.try_use();
        p.try_use();
        // 3 uses over 2 cycles × 2 ports.
        assert!((p.occupancy() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one tag port")]
    fn zero_ports_rejected() {
        let _ = TagPorts::new(0);
    }
}
