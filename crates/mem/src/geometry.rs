use fdip_types::Addr;

/// Geometry of a set-associative cache.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `block_bytes` is not a power of two, or any
    /// dimension is zero.
    pub fn new(sets: usize, ways: usize, block_bytes: u64) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        CacheGeometry {
            sets,
            ways,
            block_bytes,
        }
    }

    /// Builds the geometry for a cache of `capacity_bytes` with the given
    /// associativity and block size.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a positive power of two.
    pub fn from_capacity(capacity_bytes: u64, ways: usize, block_bytes: u64) -> Self {
        let sets = capacity_bytes / (ways as u64 * block_bytes);
        assert!(sets > 0, "capacity too small for geometry");
        CacheGeometry::new(sets as usize, ways, block_bytes)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.block_bytes
    }

    /// Total number of blocks.
    pub fn blocks(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for an address.
    pub fn set_index(&self, addr: Addr) -> usize {
        (addr.block_index(self.block_bytes) % self.sets as u64) as usize
    }

    /// Tag for an address.
    pub fn tag(&self, addr: Addr) -> u64 {
        addr.block_index(self.block_bytes) / self.sets as u64
    }

    /// Reconstructs the block base address from a set index and tag.
    pub fn block_addr(&self, set: usize, tag: u64) -> Addr {
        Addr::new((tag * self.sets as u64 + set as u64) * self.block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_roundtrip() {
        let g = CacheGeometry::from_capacity(16 * 1024, 2, 64);
        assert_eq!(g.sets, 128);
        assert_eq!(g.capacity_bytes(), 16 * 1024);
        assert_eq!(g.blocks(), 256);
    }

    #[test]
    fn index_tag_reconstruct_block() {
        let g = CacheGeometry::new(64, 4, 32);
        for raw in [0u64, 0x1234_5660, 0xffff_0000] {
            let addr = Addr::new(raw).block_base(32);
            let set = g.set_index(addr);
            let tag = g.tag(addr);
            assert_eq!(g.block_addr(set, tag), addr);
        }
    }

    #[test]
    fn addresses_in_same_block_share_index_and_tag() {
        let g = CacheGeometry::new(64, 4, 64);
        let a = Addr::new(0x1000);
        let b = Addr::new(0x103c);
        assert_eq!(g.set_index(a), g.set_index(b));
        assert_eq!(g.tag(a), g.tag(b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheGeometry::new(96, 2, 64);
    }
}
