use std::collections::VecDeque;

use fdip_types::{Addr, Cycle};

/// Configuration of a [`StreamBufferSet`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StreamBufferConfig {
    /// Number of buffers.
    pub buffers: usize,
    /// Depth (blocks) of each buffer.
    pub depth: usize,
    /// Cache block size in bytes.
    pub block_bytes: u64,
}

impl Default for StreamBufferConfig {
    /// Four 8-deep buffers of 64 B blocks (the classic configuration).
    fn default() -> Self {
        StreamBufferConfig {
            buffers: 4,
            depth: 8,
            block_bytes: 64,
        }
    }
}

/// Result of probing the stream buffers on an L1 miss.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StreamHit {
    /// The block sits ready at a buffer head — deliver immediately.
    Ready,
    /// The block is at a buffer head but its fill is still in flight.
    Arriving(Cycle),
}

#[derive(Clone, Debug)]
struct StreamBuffer {
    /// Prefetched blocks in stream order; front is the head.
    entries: VecDeque<(Addr, Cycle)>,
    /// Next block address the stream will prefetch.
    next: Addr,
    /// Allocated at least once.
    live: bool,
}

/// A set of Jouppi-style sequential stream buffers — the second baseline
/// prefetcher of the 1999 comparison.
///
/// On an L1 miss the buffer *heads* are probed; a head hit delivers the
/// block and advances the stream. A miss in both L1 and the buffers
/// allocates a new stream (LRU buffer), starting at the next sequential
/// block. The owner drives fills: [`next_wanted`](Self::next_wanted)
/// exposes which block a buffer wants next, and
/// [`record_issue`](Self::record_issue) commits the issued fill — keeping
/// bus arbitration in the caller, where demand traffic can pre-empt it.
#[derive(Clone, Debug)]
pub struct StreamBufferSet {
    config: StreamBufferConfig,
    buffers: Vec<StreamBuffer>,
    /// LRU order: front = most recently used buffer index.
    recency: Vec<usize>,
    resets: u64,
    head_hits: u64,
}

impl StreamBufferSet {
    /// Creates an empty set.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` or `depth` is zero, or `block_bytes` is not a
    /// power of two.
    pub fn new(config: StreamBufferConfig) -> Self {
        assert!(config.buffers > 0 && config.depth > 0);
        assert!(config.block_bytes.is_power_of_two());
        StreamBufferSet {
            config,
            buffers: (0..config.buffers)
                .map(|_| StreamBuffer {
                    entries: VecDeque::with_capacity(config.depth),
                    next: Addr::ZERO,
                    live: false,
                })
                .collect(),
            recency: (0..config.buffers).collect(),
            resets: 0,
            head_hits: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &StreamBufferConfig {
        &self.config
    }

    /// Times a stream was torn down and re-allocated.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Head hits delivered.
    pub fn head_hits(&self) -> u64 {
        self.head_hits
    }

    fn touch(&mut self, idx: usize) {
        let pos = self
            .recency
            .iter()
            .position(|&i| i == idx)
            .expect("index tracked");
        self.recency.remove(pos);
        self.recency.insert(0, idx);
    }

    /// Probes all buffer heads for the block containing `addr`. On a hit
    /// the head is consumed and the stream advances; the result says
    /// whether the fill has arrived by `now`.
    pub fn probe_at(&mut self, now: Cycle, addr: Addr) -> Option<StreamHit> {
        let base = addr.block_base(self.config.block_bytes);
        let idx = self
            .buffers
            .iter()
            .position(|b| b.live && b.entries.front().map(|(a, _)| *a) == Some(base))?;
        let (_, ready) = self.buffers[idx].entries.pop_front().expect("head present");
        self.head_hits += 1;
        self.touch(idx);
        if ready.is_after(now) {
            Some(StreamHit::Arriving(ready))
        } else {
            Some(StreamHit::Ready)
        }
    }

    /// Allocates a new stream after a miss at `addr`: the LRU buffer is
    /// reset and will prefetch sequentially starting at the *next* block
    /// (the missing block itself is fetched on demand).
    pub fn allocate(&mut self, addr: Addr) {
        let idx = *self.recency.last().expect("at least one buffer");
        let buffer = &mut self.buffers[idx];
        if buffer.live {
            self.resets += 1;
        }
        buffer.entries.clear();
        buffer.next = addr.block_base(self.config.block_bytes) + self.config.block_bytes;
        buffer.live = true;
        self.touch(idx);
    }

    /// The next block some buffer wants prefetched, with the buffer's
    /// identity; `None` when every live buffer is full.
    ///
    /// Buffers are served in recency order (hottest stream first).
    pub fn next_wanted(&self) -> Option<(usize, Addr)> {
        for &idx in &self.recency {
            let b = &self.buffers[idx];
            if b.live && b.entries.len() < self.config.depth {
                return Some((idx, b.next));
            }
        }
        None
    }

    /// Commits an issued fill for `buffer` (from [`Self::next_wanted`]):
    /// records the entry and advances the stream cursor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or `block` is not the block the buffer
    /// wanted.
    pub fn record_issue(&mut self, buffer: usize, block: Addr, ready_at: Cycle) {
        let b = &mut self.buffers[buffer];
        assert!(b.entries.len() < self.config.depth, "buffer full");
        assert_eq!(block, b.next, "must issue the wanted block");
        b.entries.push_back((block, ready_at));
        b.next += self.config.block_bytes;
    }

    /// Storage in bits: each entry holds a block tag + data is not counted
    /// (tags-only model, matching the cache model).
    pub fn storage_bits(&self) -> u64 {
        let tag_bits = 48 - self.config.block_bytes.trailing_zeros() as u64 + 1;
        (self.config.buffers * self.config.depth) as u64 * tag_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> StreamBufferSet {
        StreamBufferSet::new(StreamBufferConfig {
            buffers: 2,
            depth: 2,
            block_bytes: 64,
        })
    }

    #[test]
    fn allocate_then_stream() {
        let mut s = set();
        s.allocate(Addr::new(0x1000));
        assert_eq!(s.next_wanted(), Some((1, Addr::new(0x1040))));
        s.record_issue(1, Addr::new(0x1040), Cycle::new(50));
        assert_eq!(s.next_wanted(), Some((1, Addr::new(0x1080))));
        s.record_issue(1, Addr::new(0x1080), Cycle::new(54));
        assert_eq!(s.next_wanted(), None, "buffer full");
    }

    #[test]
    fn head_hit_consumes_and_advances() {
        let mut s = set();
        s.allocate(Addr::new(0x1000));
        s.record_issue(1, Addr::new(0x1040), Cycle::new(50));
        s.record_issue(1, Addr::new(0x1080), Cycle::new(54));
        assert_eq!(
            s.probe_at(Cycle::new(60), Addr::new(0x1050)),
            Some(StreamHit::Ready)
        );
        // Head consumed: room for one more prefetch.
        assert_eq!(s.next_wanted(), Some((1, Addr::new(0x10c0))));
        assert_eq!(s.head_hits(), 1);
    }

    #[test]
    fn in_flight_head_reports_arrival() {
        let mut s = set();
        s.allocate(Addr::new(0x1000));
        s.record_issue(1, Addr::new(0x1040), Cycle::new(50));
        assert_eq!(
            s.probe_at(Cycle::new(10), Addr::new(0x1040)),
            Some(StreamHit::Arriving(Cycle::new(50)))
        );
    }

    #[test]
    fn non_head_blocks_miss() {
        let mut s = set();
        s.allocate(Addr::new(0x1000));
        s.record_issue(1, Addr::new(0x1040), Cycle::new(50));
        s.record_issue(1, Addr::new(0x1080), Cycle::new(54));
        // 0x1080 is second in the stream: head-only probing misses it.
        assert_eq!(s.probe_at(Cycle::new(60), Addr::new(0x1080)), None);
    }

    #[test]
    fn allocation_evicts_lru_stream_and_counts_resets() {
        let mut s = set();
        s.allocate(Addr::new(0x1000)); // buffer 1
        s.allocate(Addr::new(0x9000)); // buffer 0
        assert_eq!(s.resets(), 0, "fresh buffers are free");
        s.allocate(Addr::new(0x5000)); // evicts the 0x1000 stream (LRU)
        assert_eq!(s.resets(), 1);
        // The 0x1000 stream is gone.
        s.record_issue(
            s.next_wanted().unwrap().0,
            s.next_wanted().unwrap().1,
            Cycle::new(5),
        );
        assert_eq!(s.probe_at(Cycle::new(9), Addr::new(0x1040)), None);
    }

    #[test]
    fn hottest_stream_is_served_first() {
        let mut s = set();
        s.allocate(Addr::new(0x1000)); // buffer 1
        s.allocate(Addr::new(0x9000)); // buffer 0, now MRU
        let (idx, want) = s.next_wanted().unwrap();
        assert_eq!(want, Addr::new(0x9040));
        s.record_issue(idx, want, Cycle::new(5));
    }
}
