use fdip_types::{Addr, Cycle};

use crate::{
    Bus, Cache, CacheGeometry, FillFlags, HitInfo, MemStats, MissKind, Mshr, MshrFile,
    PrefetchBuffer, ReplacementPolicy, TagPorts, VictimCache,
};

/// Configuration of the two-level instruction memory hierarchy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    /// L1-I geometry.
    pub l1: CacheGeometry,
    /// L1-I replacement policy.
    pub l1_policy: ReplacementPolicy,
    /// Unified L2 geometry (only its instruction side is exercised).
    pub l2: CacheGeometry,
    /// Cycles from L1 miss issue to fill, given an L2 hit.
    pub l2_latency: u64,
    /// Additional cycles when the L2 also misses (memory access).
    pub mem_latency: u64,
    /// Bus occupancy per block transfer.
    pub bus_transfer_cycles: u64,
    /// Outstanding-miss capacity.
    pub mshrs: usize,
    /// Prefetch-buffer capacity in blocks; 0 = prefetch straight into L1.
    pub prefetch_buffer_blocks: usize,
    /// L1-I tag ports per cycle (CPF steals the idle ones).
    pub tag_ports: u32,
    /// MSHRs held back from prefetches so demand misses always find room.
    pub prefetch_mshr_reserve: usize,
    /// Fully-associative victim cache capacity in blocks (0 disables).
    pub victim_blocks: usize,
}

impl Default for HierarchyConfig {
    /// The reproduction's baseline machine: 16 KB 2-way L1-I with 64 B
    /// lines, 1 MB 8-way L2, 12-cycle L2, +120-cycle memory, 4-cycle bus
    /// transfers, 8 MSHRs, 32-block prefetch buffer, 2 tag ports.
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheGeometry::from_capacity(16 * 1024, 2, 64),
            l1_policy: ReplacementPolicy::Lru,
            l2: CacheGeometry::from_capacity(1024 * 1024, 8, 64),
            l2_latency: 12,
            mem_latency: 120,
            bus_transfer_cycles: 4,
            mshrs: 8,
            prefetch_buffer_blocks: 32,
            tag_ports: 2,
            prefetch_mshr_reserve: 2,
            victim_blocks: 0,
        }
    }
}

/// Result of a demand instruction fetch access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DemandOutcome {
    /// Hit in the L1-I.
    L1Hit {
        /// Line state at hit time.
        info: HitInfo,
    },
    /// Hit in the prefetch buffer; the block was promoted into the L1-I.
    PrefetchBufferHit,
    /// The block is already in flight; the fetch must wait.
    InFlight {
        /// When the fill arrives.
        ready_at: Cycle,
        /// The in-flight request was a prefetch (now upgraded) — a *late*
        /// prefetch.
        was_prefetch: bool,
    },
    /// A new miss was issued.
    Miss {
        /// When the fill arrives.
        ready_at: Cycle,
    },
    /// No MSHR was free; retry next cycle.
    MshrFull,
}

/// Result of a prefetch issue attempt.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PrefetchOutcome {
    /// The block is already buffered; nothing issued.
    InPrefetchBuffer,
    /// The block is already in flight; nothing issued.
    InFlight,
    /// Issued on the bus.
    Issued {
        /// When the fill arrives.
        ready_at: Cycle,
    },
    /// No MSHR free; nothing issued.
    NoMshr,
}

/// The L1-I / L2 / memory hierarchy with an explicit bus, MSHRs, tag
/// ports, and prefetch buffer — the machinery every prefetcher in the
/// reproduction talks to.
///
/// Call [`begin_cycle`](Self::begin_cycle) once per simulated cycle (it
/// applies arrived fills and re-arms the tag ports), then issue demand
/// accesses and prefetches for that cycle.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    bus: Bus,
    mshrs: MshrFile,
    prefetch_buffer: PrefetchBuffer,
    ports: TagPorts,
    stats: MemStats,
    /// Blocks whose fills landed since the last drain — the predecode tap
    /// used by BTB-fill extensions (Boomerang-style). Only recorded when
    /// [`set_fill_tracking`](Self::set_fill_tracking) armed it, so runs
    /// without a predecoder never accumulate (and never allocate) here.
    recent_fills: Vec<Addr>,
    track_fills: bool,
    /// Scratch buffer for the per-cycle MSHR drain; reused every cycle so
    /// `begin_cycle` allocates nothing in steady state.
    fill_scratch: Vec<Mshr>,
    victim: VictimCache,
}

impl MemoryHierarchy {
    /// Creates a hierarchy from its configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            config,
            l1: Cache::new(config.l1, config.l1_policy),
            l2: Cache::new(config.l2, ReplacementPolicy::Lru),
            bus: Bus::new(config.bus_transfer_cycles),
            mshrs: MshrFile::with_block_bytes(config.mshrs, config.l1.block_bytes),
            prefetch_buffer: PrefetchBuffer::new(
                config.prefetch_buffer_blocks,
                config.l1.block_bytes,
            ),
            ports: TagPorts::new(config.tag_ports),
            stats: MemStats::default(),
            recent_fills: Vec::new(),
            track_fills: false,
            fill_scratch: Vec::with_capacity(config.mshrs),
            victim: VictimCache::new(config.victim_blocks, config.l1.block_bytes),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Clears all statistics without touching cache/MSHR/bus *state* —
    /// used to exclude warmup from measurement.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.bus.reset_counters();
    }

    /// The L1–L2 bus (for utilization statistics and idle checks).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The tag-port model (CPF claims idle ports through this).
    pub fn ports_mut(&mut self) -> &mut TagPorts {
        &mut self.ports
    }

    /// Starts a new cycle: applies fills that have arrived and re-arms the
    /// tag ports. Must be called once per cycle, before any access.
    pub fn begin_cycle(&mut self, now: Cycle) {
        self.ports.begin_cycle(now);
        // Fast path: most cycles no fill arrives; the MSHR file tracks its
        // earliest `ready_at`, so skip the drain (and its whole loop)
        // without touching the entries at all.
        if !matches!(self.mshrs.next_ready(), Some(c) if !c.is_after(now)) {
            return;
        }
        let mut ready = std::mem::take(&mut self.fill_scratch);
        self.mshrs.take_ready_into(now, &mut ready);
        for fill in &ready {
            if self.track_fills {
                self.recent_fills.push(fill.block);
            }
            match fill.kind {
                MissKind::Demand => {
                    self.fill_l1(
                        fill.block,
                        FillFlags {
                            prefetched: false,
                            nlp_tagged: fill.nlp_tagged,
                        },
                    );
                }
                MissKind::Prefetch => {
                    if self.l1.probe(fill.block) {
                        self.stats.redundant_prefetch_fills += 1;
                    } else if self.prefetch_buffer.capacity() > 0 {
                        self.prefetch_buffer.insert(fill.block);
                    } else {
                        self.fill_l1(
                            fill.block,
                            FillFlags {
                                prefetched: true,
                                nlp_tagged: fill.nlp_tagged,
                            },
                        );
                    }
                }
            }
        }
        self.fill_scratch = ready;
    }

    fn fill_l1(&mut self, block: Addr, flags: FillFlags) {
        if let Some(evicted) = self.l1.fill(block, flags) {
            if evicted.prefetched_unreferenced {
                self.stats.useless_evictions += 1;
            }
            self.victim.insert(evicted.addr);
        }
    }

    /// Issues a demand fetch for the block containing `addr`.
    ///
    /// Consumes one tag port implicitly (the caller accounts ports; see
    /// [`TagPorts`]). Checks, in order: L1, prefetch buffer (promoting on
    /// hit), in-flight MSHRs (merging), then allocates a new miss.
    pub fn demand_access(&mut self, now: Cycle, addr: Addr) -> DemandOutcome {
        self.stats.l1_accesses += 1;
        if let Some(info) = self.l1.access(addr) {
            self.stats.l1_hits += 1;
            if info.was_prefetched && info.first_reference {
                self.stats.useful_prefetches += 1;
            }
            return DemandOutcome::L1Hit { info };
        }
        if self.victim.capacity() > 0 && self.victim.take(addr) {
            // Victim hit: the line swaps back into the L1 without a bus
            // transfer.
            self.stats.victim_hits += 1;
            self.stats.l1_hits += 1;
            let block = addr.block_base(self.config.l1.block_bytes);
            self.fill_l1(block, FillFlags::default());
            let info = self.l1.access(addr).expect("line just filled");
            return DemandOutcome::L1Hit { info };
        }
        if self.prefetch_buffer.take(addr) {
            self.stats.pb_hits += 1;
            self.stats.useful_prefetches += 1;
            let block = addr.block_base(self.config.l1.block_bytes);
            self.fill_l1(
                block,
                FillFlags {
                    prefetched: true,
                    nlp_tagged: false,
                },
            );
            // Mark referenced so this line never counts as pollution.
            let _ = self.l1.access(addr);
            return DemandOutcome::PrefetchBufferHit;
        }
        self.stats.l1_misses += 1;
        if let Some((ready_at, was_prefetch)) = self.mshrs.merge_demand(addr) {
            if was_prefetch {
                self.stats.late_prefetches += 1;
            }
            return DemandOutcome::InFlight {
                ready_at,
                was_prefetch,
            };
        }
        if self.mshrs.is_full() {
            return DemandOutcome::MshrFull;
        }
        let ready_at = self.issue_transfer(now, addr);
        self.stats.demand_transfers += 1;
        self.mshrs
            .allocate(addr, ready_at, MissKind::Demand)
            .expect("capacity and duplicates checked above");
        DemandOutcome::Miss { ready_at }
    }

    /// Issues a prefetch for the block containing `addr`. `nlp_tagged`
    /// marks the fill for tagged next-line prefetching.
    ///
    /// Does *not* check the L1 — an unfiltered prefetcher wastes bandwidth
    /// on blocks already present (exactly what CPF exists to prevent).
    /// Callers that probed first (CPF) simply skip present blocks.
    pub fn issue_prefetch(&mut self, now: Cycle, addr: Addr, nlp_tagged: bool) -> PrefetchOutcome {
        if self.prefetch_buffer.contains(addr) {
            return PrefetchOutcome::InPrefetchBuffer;
        }
        if self.mshrs.lookup(addr).is_some() {
            return PrefetchOutcome::InFlight;
        }
        if self.mshrs.len() + self.config.prefetch_mshr_reserve >= self.config.mshrs {
            return PrefetchOutcome::NoMshr;
        }
        let ready_at = self.issue_transfer(now, addr);
        self.stats.prefetches_issued += 1;
        self.stats.prefetch_transfers += 1;
        let result = if nlp_tagged {
            self.mshrs.allocate_nlp(addr, ready_at, MissKind::Prefetch)
        } else {
            self.mshrs.allocate(addr, ready_at, MissKind::Prefetch)
        };
        result.expect("capacity and duplicates checked above");
        PrefetchOutcome::Issued { ready_at }
    }

    /// Books the bus and the L2 (or memory) for one block transfer;
    /// returns the fill-arrival cycle.
    fn issue_transfer(&mut self, now: Cycle, addr: Addr) -> Cycle {
        let grant = self.bus.request(now);
        let latency = if self.l2.access(addr).is_some() {
            self.stats.l2_hits += 1;
            self.config.l2_latency
        } else {
            self.stats.l2_misses += 1;
            // The line is installed in L2 on the way in.
            self.l2.fill(addr, FillFlags::default());
            self.config.l2_latency + self.config.mem_latency
        };
        grant + latency
    }

    /// Installs a line delivered by an *external* prefetch structure (e.g.
    /// a stream buffer promoting its head into the L1). The line is marked
    /// prefetched so usefulness accounting works when the demand access
    /// touches it.
    pub fn install_line(&mut self, addr: Addr) {
        let block = addr.block_base(self.config.l1.block_bytes);
        self.fill_l1(
            block,
            FillFlags {
                prefetched: true,
                nlp_tagged: false,
            },
        );
    }

    /// Books the bus + L2 for a transfer whose fill is owned by an external
    /// structure (stream buffers hold their own fills). Counted as prefetch
    /// traffic. Returns the arrival cycle.
    pub fn issue_external_transfer(&mut self, now: Cycle, addr: Addr) -> Cycle {
        let ready = self.issue_transfer(now, addr);
        self.stats.prefetches_issued += 1;
        self.stats.prefetch_transfers += 1;
        ready
    }

    /// Tag probe for Cache Probe Filtering: is the block in the L1?
    /// (Port arbitration is the caller's job via [`Self::ports_mut`].)
    pub fn probe_l1(&self, addr: Addr) -> bool {
        self.l1.probe(addr)
    }

    /// Is the block in the prefetch buffer? (Probed alongside the L1.)
    pub fn probe_prefetch_buffer(&self, addr: Addr) -> bool {
        self.prefetch_buffer.contains(addr)
    }

    /// Is the block covered by an in-flight MSHR?
    pub fn in_flight(&self, addr: Addr) -> bool {
        self.mshrs.lookup(addr).is_some()
    }

    /// Returns `true` if the bus would accept a request at `now` without
    /// queuing.
    pub fn bus_idle(&self, now: Cycle) -> bool {
        self.bus.is_idle(now)
    }

    /// The victim cache (for ablation statistics).
    pub fn victim(&self) -> &VictimCache {
        &self.victim
    }

    /// Prefetch-buffer storage in bits.
    pub fn prefetch_buffer_storage_bits(&self) -> u64 {
        self.prefetch_buffer.storage_bits()
    }

    /// Unreferenced prefetch-buffer evictions plus L1 pollution evictions.
    pub fn total_useless_prefetches(&self) -> u64 {
        self.stats.useless_evictions + self.prefetch_buffer.evicted_unreferenced()
    }

    /// Arms (or disarms) fill tracking for the predecode tap. Off by
    /// default: without a consumer draining them, recorded fills would
    /// accumulate for the whole run, so only simulators that actually run
    /// a predecoder turn this on.
    pub fn set_fill_tracking(&mut self, on: bool) {
        self.track_fills = on;
        if on && self.recent_fills.capacity() < self.config.mshrs {
            self.recent_fills
                .reserve(self.config.mshrs - self.recent_fills.capacity());
        }
        if !on {
            self.recent_fills.clear();
        }
    }

    /// Drains the blocks filled since the last call — the raw material a
    /// predecoder (Boomerang-style BTB fill) works on — into `out`, which
    /// is cleared first. Records only appear while
    /// [`set_fill_tracking`](Self::set_fill_tracking) is armed.
    pub fn drain_recent_fills_into(&mut self, out: &mut Vec<Addr>) {
        out.clear();
        out.extend_from_slice(&self.recent_fills);
        self.recent_fills.clear();
    }

    /// Drains the blocks filled since the last call, allocating wrapper
    /// around [`drain_recent_fills_into`](Self::drain_recent_fills_into).
    pub fn take_recent_fills(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.recent_fills)
    }

    /// The next cycle at which hierarchy state changes on its own (the
    /// earliest outstanding fill), or `None` when nothing is in flight.
    /// This is what lets the simulator fast-forward over idle stretches
    /// without missing an event.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.mshrs.next_ready()
    }

    /// Would [`issue_prefetch`](Self::issue_prefetch) find a free MSHR
    /// right now? Mirrors its reserve check exactly, without mutating
    /// anything — pause analysis uses this to tell a throughput-limited
    /// prefetcher ("would issue": active) from an MSHR-starved one
    /// ("blocked until a fill lands": idle, bounded by the fill event).
    pub fn can_accept_prefetch(&self) -> bool {
        self.mshrs.len() + self.config.prefetch_mshr_reserve < self.config.mshrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_fill_then_hit() {
        let mut m = hierarchy();
        let a = Addr::new(0x4000);
        m.begin_cycle(Cycle::ZERO);
        let ready = match m.demand_access(Cycle::ZERO, a) {
            DemandOutcome::Miss { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        // L2 also misses cold: l2 + mem latency.
        assert_eq!(ready, Cycle::new(12 + 120));
        m.begin_cycle(ready);
        assert!(matches!(
            m.demand_access(ready, a),
            DemandOutcome::L1Hit { .. }
        ));
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn second_miss_to_same_block_merges() {
        let mut m = hierarchy();
        let a = Addr::new(0x4000);
        m.begin_cycle(Cycle::ZERO);
        m.demand_access(Cycle::ZERO, a);
        match m.demand_access(Cycle::ZERO, Addr::new(0x4004)) {
            DemandOutcome::InFlight { was_prefetch, .. } => assert!(!was_prefetch),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats().demand_transfers, 1, "no duplicate transfer");
    }

    #[test]
    fn l2_hit_is_fast_after_first_fetch() {
        let mut m = hierarchy();
        let a = Addr::new(0x8000);
        m.begin_cycle(Cycle::ZERO);
        m.demand_access(Cycle::ZERO, a);
        // Evict it from tiny L1 by filling its set; L2 retains it.
        // 16KB 2-way 64B → 128 sets; same set stride = 128*64 = 8192.
        let t = Cycle::new(200);
        m.begin_cycle(t);
        m.demand_access(t, Addr::new(0x8000 + 8192));
        m.demand_access(t, Addr::new(0x8000 + 2 * 8192));
        let t2 = Cycle::new(600);
        m.begin_cycle(t2);
        match m.demand_access(t2, a) {
            DemandOutcome::Miss { ready_at } => {
                assert_eq!(ready_at, t2 + 12, "L2 hit latency only");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prefetch_fills_buffer_then_promotes() {
        let mut m = hierarchy();
        let a = Addr::new(0xc000);
        m.begin_cycle(Cycle::ZERO);
        let ready = match m.issue_prefetch(Cycle::ZERO, a, false) {
            PrefetchOutcome::Issued { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        m.begin_cycle(ready);
        assert!(m.probe_prefetch_buffer(a));
        assert!(!m.probe_l1(a));
        assert!(matches!(
            m.demand_access(ready, a),
            DemandOutcome::PrefetchBufferHit
        ));
        assert!(m.probe_l1(a), "promoted to L1");
        assert_eq!(m.stats().useful_prefetches, 1);
        assert_eq!(m.stats().pb_hits, 1);
    }

    #[test]
    fn late_prefetch_is_counted_when_demand_merges() {
        let mut m = hierarchy();
        let a = Addr::new(0xc000);
        m.begin_cycle(Cycle::ZERO);
        m.issue_prefetch(Cycle::ZERO, a, false);
        let t = Cycle::new(3);
        m.begin_cycle(t);
        match m.demand_access(t, a) {
            DemandOutcome::InFlight { was_prefetch, .. } => assert!(was_prefetch),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats().late_prefetches, 1);
    }

    #[test]
    fn duplicate_prefetches_are_deduped() {
        let mut m = hierarchy();
        let a = Addr::new(0xc000);
        m.begin_cycle(Cycle::ZERO);
        assert!(matches!(
            m.issue_prefetch(Cycle::ZERO, a, false),
            PrefetchOutcome::Issued { .. }
        ));
        assert!(matches!(
            m.issue_prefetch(Cycle::ZERO, Addr::new(0xc020), false),
            PrefetchOutcome::InFlight
        ));
        assert_eq!(m.stats().prefetches_issued, 1);
    }

    #[test]
    fn prefetch_into_l1_when_no_buffer() {
        let mut m = MemoryHierarchy::new(HierarchyConfig {
            prefetch_buffer_blocks: 0,
            ..HierarchyConfig::default()
        });
        let a = Addr::new(0x1000);
        m.begin_cycle(Cycle::ZERO);
        let ready = match m.issue_prefetch(Cycle::ZERO, a, true) {
            PrefetchOutcome::Issued { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        m.begin_cycle(ready);
        assert!(m.probe_l1(a));
        match m.demand_access(ready, a) {
            DemandOutcome::L1Hit { info } => {
                assert!(info.was_prefetched);
                assert!(info.nlp_tagged, "nlp tag carried through the fill");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bus_contention_delays_second_transfer() {
        let mut m = hierarchy();
        m.begin_cycle(Cycle::ZERO);
        let r1 = match m.demand_access(Cycle::ZERO, Addr::new(0x0)) {
            DemandOutcome::Miss { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        let r2 = match m.demand_access(Cycle::ZERO, Addr::new(0x40)) {
            DemandOutcome::Miss { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        assert_eq!(r2 - r1, 4, "second transfer waits one bus slot");
    }

    #[test]
    fn mshr_exhaustion_reported() {
        let mut m = MemoryHierarchy::new(HierarchyConfig {
            mshrs: 1,
            ..HierarchyConfig::default()
        });
        m.begin_cycle(Cycle::ZERO);
        m.demand_access(Cycle::ZERO, Addr::new(0x0));
        assert!(matches!(
            m.demand_access(Cycle::ZERO, Addr::new(0x40)),
            DemandOutcome::MshrFull
        ));
        assert!(matches!(
            m.issue_prefetch(Cycle::ZERO, Addr::new(0x80), false),
            PrefetchOutcome::NoMshr
        ));
    }

    #[test]
    fn fill_tracking_is_off_by_default_and_gated() {
        let mut m = hierarchy();
        let a = Addr::new(0x4000);
        m.begin_cycle(Cycle::ZERO);
        let ready = match m.demand_access(Cycle::ZERO, a) {
            DemandOutcome::Miss { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        m.begin_cycle(ready);
        let mut drained = Vec::new();
        m.drain_recent_fills_into(&mut drained);
        assert!(drained.is_empty(), "untracked fills are not recorded");

        m.set_fill_tracking(true);
        let b = Addr::new(0x8000);
        let t = Cycle::new(500);
        m.begin_cycle(t);
        let ready = match m.demand_access(t, b) {
            DemandOutcome::Miss { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        m.begin_cycle(ready);
        m.drain_recent_fills_into(&mut drained);
        assert_eq!(drained, vec![b]);
        // Drain clears: a second drain is empty.
        m.drain_recent_fills_into(&mut drained);
        assert!(drained.is_empty());
    }

    #[test]
    fn next_event_cycle_reports_earliest_fill() {
        let mut m = hierarchy();
        assert_eq!(m.next_event_cycle(), None);
        m.begin_cycle(Cycle::ZERO);
        let ready = match m.demand_access(Cycle::ZERO, Addr::new(0x4000)) {
            DemandOutcome::Miss { ready_at } => ready_at,
            other => panic!("{other:?}"),
        };
        assert_eq!(m.next_event_cycle(), Some(ready));
        m.begin_cycle(ready);
        assert_eq!(m.next_event_cycle(), None, "fill applied and drained");
    }

    #[test]
    fn redundant_prefetch_fill_is_dropped() {
        let mut m = hierarchy();
        let a = Addr::new(0x1000);
        m.begin_cycle(Cycle::ZERO);
        // Prefetch a block, and demand-fetch it so it lands in L1 first.
        m.issue_prefetch(Cycle::ZERO, a, false);
        let t = Cycle::new(1);
        m.begin_cycle(t);
        m.demand_access(t, a); // merges, upgrades to demand → fills L1
        let far = Cycle::new(1000);
        m.begin_cycle(far);
        // Now prefetch it again while it *is* in L1: the fill is redundant.
        m.issue_prefetch(far, a, false);
        let done = Cycle::new(2000);
        m.begin_cycle(done);
        assert_eq!(m.stats().redundant_prefetch_fills, 1);
    }
}
