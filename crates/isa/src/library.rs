//! The committed program library: real programs, assembled on demand.
//!
//! Sources are embedded with `include_str!` so the library works offline,
//! inside self-exec'd isolation workers, and without any filesystem
//! coupling. Every program is covered by the `library_*` tests (assembles,
//! halts, computes the right answer, emits a valid trace).

use fdip_trace::Trace;

use crate::asm::assemble;
use crate::error::ExecError;
use crate::exec::program_trace;
use crate::program::Program;

/// Name/source pairs, in report order.
pub const PROGRAMS: &[(&str, &str)] = &[
    ("bubble", include_str!("../programs/bubble.fasm")),
    ("qsort", include_str!("../programs/qsort.fasm")),
    ("vm", include_str!("../programs/vm.fasm")),
    ("parse", include_str!("../programs/parse.fasm")),
    ("strhash", include_str!("../programs/strhash.fasm")),
    ("fib", include_str!("../programs/fib.fasm")),
];

/// The program names, in report order.
pub fn names() -> Vec<&'static str> {
    PROGRAMS.iter().map(|(n, _)| *n).collect()
}

/// The source text of a library program.
pub fn source(name: &str) -> Option<&'static str> {
    PROGRAMS.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
}

/// Assembles a library program.
///
/// # Panics
///
/// Panics if the committed source fails to assemble — that is a build
/// defect, caught by this crate's tests, not a runtime condition.
pub fn load(name: &str) -> Option<Program> {
    let src = source(name)?;
    Some(assemble(name, src).unwrap_or_else(|e| panic!("library program {name:?}: {e}")))
}

/// Executes a library program in driver-loop mode into a trace of at
/// least `target_len` records named `trace_name`.
///
/// Returns `None` for an unknown program name; execution errors in a
/// committed program are build defects and panic (same contract as
/// [`load`]).
pub fn trace(name: &str, trace_name: &str, target_len: usize) -> Option<Trace> {
    let program = load(name)?;
    match program_trace(&program, trace_name, target_len) {
        Ok(t) => Some(t),
        Err(e) => panic!("library program {name:?} failed to execute: {e}"),
    }
}

/// [`trace`] with a typed error instead of a panic (for CLI paths running
/// user-supplied programs through the same machinery).
pub fn try_trace(
    program: &Program,
    trace_name: &str,
    target_len: usize,
) -> Result<Trace, ExecError> {
    program_trace(program, trace_name, target_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Machine, DEFAULT_STEP_LIMIT};
    use crate::program::SymKind;

    fn data_at(m: &Machine<'_>, p: &Program, sym: &str) -> i64 {
        let s = p
            .symbols
            .iter()
            .find(|s| s.name == sym && s.kind == SymKind::Data)
            .unwrap_or_else(|| panic!("no data symbol {sym}"));
        m.data_word(s.value as usize).unwrap()
    }

    /// Runs `name` to halt, validates the emitted records, and hands the
    /// final machine state to `check`.
    fn run(name: &str, check: impl FnOnce(&Machine<'_>, &Program)) {
        let p = load(name).unwrap();
        let mut m = Machine::new(&p);
        let recs = m.run_to_halt(DEFAULT_STEP_LIMIT).unwrap();
        Trace::from_instrs(name, recs).validate().unwrap();
        check(&m, &p);
    }

    #[test]
    fn all_programs_assemble() {
        for (name, _) in PROGRAMS {
            let p = load(name).unwrap();
            assert!(!p.is_empty(), "{name}");
        }
        assert!(PROGRAMS.len() >= 5);
    }

    #[test]
    fn library_bubble_sorts() {
        run("bubble", |m, p| assert_eq!(data_at(m, p, "inversions"), 0));
    }

    #[test]
    fn library_qsort_sorts() {
        run("qsort", |m, p| assert_eq!(data_at(m, p, "inversions"), 0));
    }

    #[test]
    fn library_vm_computes_sum_of_squares() {
        // sum of i*i for i = 1..=40.
        run("vm", |m, p| assert_eq!(data_at(m, p, "globals"), 22140));
    }

    #[test]
    fn library_parse_evaluates_expression() {
        run("parse", |m, p| {
            assert_eq!(data_at(m, p, "result"), 2617);
            assert_eq!(data_at(m, p, "checksum"), 8 * 2617);
        });
    }

    #[test]
    fn library_strhash_finds_every_string() {
        run("strhash", |m, p| assert_eq!(data_at(m, p, "hits"), 8));
    }

    #[test]
    fn library_fib_computes() {
        run("fib", |m, p| {
            assert_eq!(data_at(m, p, "out"), 987);
            assert!(m.stats().max_call_depth >= 15);
        });
    }

    #[test]
    fn traces_wrap_to_any_length() {
        for (name, _) in PROGRAMS {
            let t = trace(name, name, 30_000).unwrap();
            assert!(t.len() >= 30_000, "{name}");
            t.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn unknown_program_is_none() {
        assert!(load("no-such-program").is_none());
        assert!(trace("no-such-program", "x", 100).is_none());
    }
}
