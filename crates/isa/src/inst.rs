//! The FISA instruction set: a minimal fixed-width RISC.
//!
//! Every instruction occupies one 4-byte slot ([`fdip_types::INST_BYTES`]),
//! matching the word-aligned ISA the trace model assumes. Control-flow
//! targets are stored as *instruction indices* into the program, not byte
//! addresses, so an assembled [`crate::Program`] can be executed at any
//! code base (scenario composition relies on this). Likewise, indirect
//! transfers (`jr`, `callr`) interpret the register value as an
//! instruction index, and data labels resolve to *word indices* into data
//! memory.

use std::fmt;

/// One of the 16 general-purpose registers, `r0`..`r15`.
///
/// `r0` is hardwired to zero: reads return 0 and writes are discarded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Reg(u8);

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Builds a register from its number, if in range.
    pub fn new(n: u64) -> Option<Reg> {
        (n < NUM_REGS as u64).then_some(Reg(n as u8))
    }

    /// The register number.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Two-operand ALU operations (register or immediate second source).
///
/// All arithmetic wraps modulo 2^64; shifts mask the count to 0..=63.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical left shift.
    Sll,
    /// Logical right shift.
    Srl,
    /// Set-less-than, signed: `rd = (ra < rb) as i64`.
    Slt,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Slt => (a < b) as i64,
        }
    }
}

/// Comparison of a conditional branch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BrCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
}

impl BrCond {
    /// Evaluates the comparison.
    pub fn holds(self, a: i64, b: i64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => a < b,
            BrCond::Ge => a >= b,
        }
    }
}

/// One decoded FISA instruction.
///
/// `target` fields are instruction indices into the owning program.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Stop execution.
    Halt,
    /// Do nothing.
    Nop,
    /// `op rd, ra, rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `opi rd, ra, imm` (also covers `li rd, imm` as `addi rd, r0, imm`).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        ra: Reg,
        /// Immediate second operand.
        imm: i64,
    },
    /// `ld rd, off(ra)`: load the data word at `ra + off`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base register (word index).
        ra: Reg,
        /// Word offset.
        off: i64,
    },
    /// `st rs, off(ra)`: store `rs` to the data word at `ra + off`.
    St {
        /// Value to store.
        rs: Reg,
        /// Base register (word index).
        ra: Reg,
        /// Word offset.
        off: i64,
    },
    /// Conditional direct branch `bcc ra, rb, target`.
    Br {
        /// Comparison.
        cond: BrCond,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional direct jump.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Direct call (pushes the return index on the executor's call stack).
    Call {
        /// Target instruction index.
        target: u32,
    },
    /// Indirect call through a register holding an instruction index.
    CallR {
        /// Register holding the target index.
        ra: Reg,
    },
    /// Indirect jump through a register holding an instruction index.
    Jr {
        /// Register holding the target index.
        ra: Reg,
    },
    /// Return to the most recent unmatched call.
    Ret,
}

impl Inst {
    /// `true` for the control-flow instructions (everything that emits a
    /// [`fdip_types::BranchRecord`] in the trace).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. }
                | Inst::Jmp { .. }
                | Inst::Call { .. }
                | Inst::CallR { .. }
                | Inst::Jr { .. }
                | Inst::Ret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(0), Some(Reg::ZERO));
        assert!(Reg::new(15).is_some());
        assert!(Reg::new(16).is_none());
        assert_eq!(Reg::new(7).unwrap().to_string(), "r7");
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN); // wraps
        assert_eq!(AluOp::Sub.apply(3, 5), -2);
        assert_eq!(AluOp::Mul.apply(-4, 3), -12);
        assert_eq!(AluOp::Sll.apply(1, 65), 2); // count masked to 1
        assert_eq!(AluOp::Srl.apply(-1, 63), 1);
        assert_eq!(AluOp::Slt.apply(-1, 0), 1);
        assert_eq!(AluOp::Slt.apply(0, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.holds(2, 2));
        assert!(BrCond::Ne.holds(2, 3));
        assert!(BrCond::Lt.holds(-5, 0));
        assert!(BrCond::Ge.holds(0, 0));
        assert!(!BrCond::Lt.holds(0, -5));
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::Jmp { target: 0 }.is_control());
        assert!(!Inst::Halt.is_control());
        assert!(!Inst::Nop.is_control());
    }
}
