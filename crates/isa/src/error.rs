//! Typed assembler and executor errors.
//!
//! Assembly never panics on malformed input: every failure mode is a
//! variant of [`AsmError`] carrying the [`Span`] of the offending source
//! text, mirroring the codec-hardening discipline of `fdip-trace`
//! (lowercase messages, no trailing period).

use std::fmt;

use fdip_types::Addr;

/// A source location: 1-based line, 1-based column.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Builds a span.
    pub const fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Why a source file failed to assemble.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// Generic token-level parse failure (bad number, stray character,
    /// unterminated string, missing comma, truncated line...).
    Parse {
        /// Where the bad token starts.
        span: Span,
        /// What went wrong.
        what: String,
    },
    /// A mnemonic that is not part of the ISA.
    UnknownMnemonic {
        /// Where the mnemonic starts.
        span: Span,
        /// The unrecognized word.
        found: String,
    },
    /// An instruction or directive with the wrong operand shape.
    BadOperands {
        /// Where the instruction starts.
        span: Span,
        /// The mnemonic or directive.
        mnemonic: String,
        /// The operand shape it wanted.
        expected: &'static str,
    },
    /// A symbol used but never defined.
    UndefinedSymbol {
        /// Where the reference occurs.
        span: Span,
        /// The symbol name.
        name: String,
    },
    /// A label or `.equ` name defined twice.
    DuplicateSymbol {
        /// Where the second definition occurs.
        span: Span,
        /// The symbol name.
        name: String,
        /// Where the first definition occurred.
        first: Span,
    },
    /// `.equ` definitions that reference each other in a cycle.
    SymbolCycle {
        /// Where the cycle was detected.
        span: Span,
        /// The names on the cycle, in reference order.
        chain: Vec<String>,
    },
    /// An identifier longer than [`crate::asm::MAX_IDENT_LEN`].
    IdentifierTooLong {
        /// Where the identifier starts.
        span: Span,
        /// Its length in bytes.
        len: usize,
    },
    /// A value outside its legal range (e.g. a register number, a
    /// misaligned `.org`, a negative repeat count).
    ValueOutOfRange {
        /// Where the value occurs.
        span: Span,
        /// What was being parsed.
        what: &'static str,
    },
    /// The assembled program exceeds a hard size limit.
    ProgramTooLarge {
        /// What overflowed: `"instructions"` or `"data words"`.
        what: &'static str,
        /// The observed count.
        count: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// A program with no instructions (nothing to execute).
    EmptyProgram,
}

impl AsmError {
    /// The source location of the error, if it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            AsmError::Parse { span, .. }
            | AsmError::UnknownMnemonic { span, .. }
            | AsmError::BadOperands { span, .. }
            | AsmError::UndefinedSymbol { span, .. }
            | AsmError::DuplicateSymbol { span, .. }
            | AsmError::SymbolCycle { span, .. }
            | AsmError::IdentifierTooLong { span, .. }
            | AsmError::ValueOutOfRange { span, .. } => Some(*span),
            AsmError::ProgramTooLarge { .. } | AsmError::EmptyProgram => None,
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Parse { span, what } => write!(f, "{span}: {what}"),
            AsmError::UnknownMnemonic { span, found } => {
                write!(f, "{span}: unknown mnemonic {found:?}")
            }
            AsmError::BadOperands {
                span,
                mnemonic,
                expected,
            } => write!(f, "{span}: {mnemonic} expects {expected}"),
            AsmError::UndefinedSymbol { span, name } => {
                write!(f, "{span}: undefined symbol {name:?}")
            }
            AsmError::DuplicateSymbol { span, name, first } => {
                write!(
                    f,
                    "{span}: duplicate symbol {name:?} (first defined at {first})"
                )
            }
            AsmError::SymbolCycle { span, chain } => {
                write!(f, "{span}: symbol cycle {}", chain.join(" -> "))
            }
            AsmError::IdentifierTooLong { span, len } => {
                write!(f, "{span}: identifier of {len} bytes exceeds limit")
            }
            AsmError::ValueOutOfRange { span, what } => {
                write!(f, "{span}: {what} out of range")
            }
            AsmError::ProgramTooLarge { what, count, max } => {
                write!(f, "program too large: {count} {what} (max {max})")
            }
            AsmError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Why execution of an assembled program stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the program's code region.
    PcOutOfRange {
        /// The offending PC.
        pc: Addr,
    },
    /// A load or store addressed outside data memory.
    DataOutOfRange {
        /// The offending word address.
        addr: i64,
        /// The PC of the load/store.
        pc: Addr,
    },
    /// `ret` with an empty call stack.
    ReturnUnderflow {
        /// The PC of the `ret`.
        pc: Addr,
    },
    /// Nested calls deeper than the executor's bound.
    CallDepthExceeded {
        /// The depth bound.
        max: usize,
        /// The PC of the overflowing call.
        pc: Addr,
    },
    /// The program ran `limit` instructions without halting.
    StepLimit {
        /// The step bound.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} left the code region"),
            ExecError::DataOutOfRange { addr, pc } => {
                write!(f, "data access at word {addr} out of range (pc {pc})")
            }
            ExecError::ReturnUnderflow { pc } => {
                write!(f, "ret with empty call stack (pc {pc})")
            }
            ExecError::CallDepthExceeded { max, pc } => {
                write!(f, "call depth exceeded {max} (pc {pc})")
            }
            ExecError::StepLimit { limit } => {
                write!(f, "no halt within {limit} steps")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_span() {
        let e = AsmError::UnknownMnemonic {
            span: Span::new(3, 7),
            found: "bogus".into(),
        };
        assert_eq!(e.to_string(), "3:7: unknown mnemonic \"bogus\"");
        assert_eq!(e.span(), Some(Span::new(3, 7)));
    }

    #[test]
    fn messages_are_lowercase_without_trailing_period() {
        let samples: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(AsmError::EmptyProgram),
            Box::new(AsmError::ProgramTooLarge {
                what: "instructions",
                count: 9,
                max: 4,
            }),
            Box::new(ExecError::StepLimit { limit: 10 }),
            Box::new(ExecError::PcOutOfRange { pc: Addr::new(4) }),
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.ends_with('.'), "{msg:?}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg:?}");
        }
    }
}
