//! The two-pass FISA assembler.
//!
//! Source syntax (one statement per line, `;` or `#` comments):
//!
//! ```text
//! .equ  N, 96              ; constants (numbers and other .equ only)
//!         li   r1, N
//! loop:   addi r1, r1, -1
//!         bne  r1, r0, loop
//!         call fn
//!         halt
//! fn:     ret
//! .data
//! arr:    .word 1, 2, fn   ; words may reference any symbol
//! buf:    .space 16
//! msg:    .ascii "hi"      ; one word per character
//! ```
//!
//! Pass 1 parses every line and lays out both sections (code labels get
//! instruction indices, data labels word indices); `.equ` constants are
//! resolved up front with cycle detection. Pass 2 evaluates operand
//! expressions against the full symbol table and materializes the
//! [`Program`]. All failures are typed [`AsmError`]s carrying spans —
//! malformed input never panics.

use std::collections::HashMap;

use crate::error::{AsmError, Span};
use crate::inst::{AluOp, BrCond, Inst, Reg};
use crate::program::{Program, SymKind, Symbol};

/// Longest accepted identifier, in bytes.
pub const MAX_IDENT_LEN: usize = 64;
/// Most instructions a program may assemble to.
pub const MAX_CODE_INSTS: usize = 1 << 20;
/// Largest initial data image, in words.
pub const MAX_DATA_WORDS: usize = 1 << 20;

/// Assembles `src` into a [`Program`] named `name`.
pub fn assemble(name: impl Into<String>, src: &str) -> Result<Program, AsmError> {
    Assembler::default().run(name.into(), src)
}

// ---------------------------------------------------------------------------
// Tokens

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Str(String),
    Comma,
    Colon,
    LParen,
    RParen,
    Plus,
    Minus,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    span: Span,
}

fn parse_err(span: Span, what: impl Into<String>) -> AsmError {
    AsmError::Parse {
        span,
        what: what.into(),
    }
}

/// Tokenizes one line. Comments (`;`/`#`) end the line except inside
/// string literals.
fn tokenize_line(line_no: u32, text: &str) -> Result<Vec<Spanned>, AsmError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let col = (i + 1) as u32;
        let span = Span::new(line_no, col);
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | '#' => break,
            ',' => {
                toks.push(Spanned {
                    tok: Tok::Comma,
                    span,
                });
                i += 1;
            }
            ':' => {
                toks.push(Spanned {
                    tok: Tok::Colon,
                    span,
                });
                i += 1;
            }
            '(' => {
                toks.push(Spanned {
                    tok: Tok::LParen,
                    span,
                });
                i += 1;
            }
            ')' => {
                toks.push(Spanned {
                    tok: Tok::RParen,
                    span,
                });
                i += 1;
            }
            '+' => {
                toks.push(Spanned {
                    tok: Tok::Plus,
                    span,
                });
                i += 1;
            }
            '-' => {
                toks.push(Spanned {
                    tok: Tok::Minus,
                    span,
                });
                i += 1;
            }
            '"' => {
                let (s, next) = scan_string(&chars, i + 1, span)?;
                toks.push(Spanned {
                    tok: Tok::Str(s),
                    span,
                });
                i = next;
            }
            '\'' => {
                let (ch, next) = scan_char(&chars, i + 1, span)?;
                toks.push(Spanned {
                    tok: Tok::Num(ch as i64),
                    span,
                });
                i = next;
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Spanned {
                    tok: Tok::Num(parse_number(&text, span)?),
                    span,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                if ident.len() > MAX_IDENT_LEN {
                    return Err(AsmError::IdentifierTooLong {
                        span,
                        len: ident.len(),
                    });
                }
                toks.push(Spanned {
                    tok: Tok::Ident(ident),
                    span,
                });
            }
            other => return Err(parse_err(span, format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

fn scan_string(chars: &[char], mut i: usize, open: Span) -> Result<(String, usize), AsmError> {
    let mut s = String::new();
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((s, i + 1)),
            '\\' => {
                let (c, next) = scan_escape(chars, i + 1, open)?;
                s.push(c);
                i = next;
            }
            c => {
                s.push(c);
                i += 1;
            }
        }
    }
    Err(parse_err(open, "unterminated string literal"))
}

fn scan_char(chars: &[char], i: usize, open: Span) -> Result<(char, usize), AsmError> {
    let (c, next) = match chars.get(i) {
        None | Some('\'') => return Err(parse_err(open, "empty character literal")),
        Some('\\') => scan_escape(chars, i + 1, open)?,
        Some(&c) => (c, i + 1),
    };
    match chars.get(next) {
        Some('\'') => Ok((c, next + 1)),
        _ => Err(parse_err(open, "unterminated character literal")),
    }
}

fn scan_escape(chars: &[char], i: usize, open: Span) -> Result<(char, usize), AsmError> {
    match chars.get(i) {
        Some('n') => Ok(('\n', i + 1)),
        Some('t') => Ok(('\t', i + 1)),
        Some('0') => Ok(('\0', i + 1)),
        Some('\\') => Ok(('\\', i + 1)),
        Some('\'') => Ok(('\'', i + 1)),
        Some('"') => Ok(('"', i + 1)),
        Some(c) => Err(parse_err(open, format!("unknown escape \\{c}"))),
        None => Err(parse_err(open, "truncated escape sequence")),
    }
}

fn parse_number(text: &str, span: Span) -> Result<i64, AsmError> {
    let value = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        // Decimal literals must fit in i64; negation is an expression op.
        text.parse::<i64>()
    };
    value.map_err(|_| parse_err(span, format!("bad number {text:?}")))
}

// ---------------------------------------------------------------------------
// Statements (pass 1 output)

/// An unresolved operand expression: a signed sum of terms.
#[derive(Clone, Debug)]
struct Expr {
    terms: Vec<(i64, Term)>, // (sign, term)
    span: Span,
}

#[derive(Clone, Debug)]
enum Term {
    Num(i64),
    Sym(String, Span),
}

#[derive(Clone, Debug)]
enum Operand {
    Expr(Expr),
    Mem { off: Expr, base: Reg },
    Reg(Reg),
}

#[derive(Clone, Debug)]
struct UInst {
    mnemonic: String,
    span: Span,
    ops: Vec<Operand>,
}

#[derive(Clone)]
enum Body {
    Inst(UInst),
    Word(Vec<Expr>),
    Space(Expr),
    Ascii(String),
    Section(SymKind), // Code or Data
    Equ(String, Expr, Span),
}

// ---------------------------------------------------------------------------
// The assembler proper

#[derive(Default)]
struct Assembler {
    symbols: HashMap<String, (SymKind, i64, Span)>,
    order: Vec<String>,
}

impl Assembler {
    fn run(mut self, name: String, src: &str) -> Result<Program, AsmError> {
        // Parse every line up front so symbol *names* (labels and `.equ`s)
        // are known before any value is needed.
        let mut lines: Vec<ParsedLine> = Vec::new();
        for (idx, line) in src.lines().enumerate() {
            let toks = tokenize_line((idx + 1) as u32, line)?;
            lines.push(parse_line(&toks)?);
        }

        // Register all definitions in source order (duplicate detection),
        // with placeholder values for now.
        let mut equs: Vec<(String, Expr, Span)> = Vec::new();
        {
            let mut section = SymKind::Code;
            for (labels, body) in &lines {
                for (label, span) in labels {
                    self.define(label.clone(), section, 0, *span)?;
                }
                match body {
                    Some(Body::Section(kind)) => section = *kind,
                    Some(Body::Equ(name, expr, span)) => {
                        self.define(name.clone(), SymKind::Const, 0, *span)?;
                        equs.push((name.clone(), expr.clone(), *span));
                    }
                    _ => {}
                }
            }
        }

        // Resolve `.equ` constants first (cycle-detected): they may only
        // reference numbers and other `.equ`s, never labels, so they are
        // computable before layout — and `.space` sizes may then use them.
        self.resolve_equs(&equs)?;

        // Layout: assign label values and collect the instruction stream
        // and deferred data initializers (word index, expr).
        let mut insts: Vec<UInst> = Vec::new();
        let mut data_init: Vec<(usize, Expr)> = Vec::new();
        let mut data_len = 0usize;
        let mut section = SymKind::Code;
        for (labels, body) in &lines {
            for (label, _) in labels {
                let value = match section {
                    SymKind::Code => insts.len() as i64,
                    _ => data_len as i64,
                };
                if let Some(entry) = self.symbols.get_mut(label) {
                    entry.1 = value;
                }
            }
            match body {
                None => {}
                Some(Body::Inst(u)) => {
                    insts.push(u.clone());
                    if insts.len() > MAX_CODE_INSTS {
                        return Err(AsmError::ProgramTooLarge {
                            what: "instructions",
                            count: insts.len(),
                            max: MAX_CODE_INSTS,
                        });
                    }
                }
                Some(Body::Word(exprs)) => {
                    for e in exprs {
                        data_init.push((data_len, e.clone()));
                        data_len += 1;
                    }
                    check_data_len(data_len)?;
                }
                Some(Body::Space(e)) => {
                    // `.space` sizes shape the layout itself, so they may
                    // reference only numbers and `.equ` constants.
                    let n = self.eval_space(e)?;
                    if !(0..=MAX_DATA_WORDS as i64).contains(&n) {
                        return Err(AsmError::ValueOutOfRange {
                            span: e.span,
                            what: ".space count",
                        });
                    }
                    data_len += n as usize;
                    check_data_len(data_len)?;
                }
                Some(Body::Ascii(s)) => {
                    for c in s.chars() {
                        data_init.push((
                            data_len,
                            Expr {
                                terms: vec![(1, Term::Num(c as i64))],
                                span: Span::new(0, 0),
                            },
                        ));
                        data_len += 1;
                    }
                    check_data_len(data_len)?;
                }
                Some(Body::Section(kind)) => section = *kind,
                Some(Body::Equ(..)) => {}
            }
        }
        if insts.is_empty() {
            return Err(AsmError::EmptyProgram);
        }

        // Pass 2: evaluate operand expressions and materialize.
        let n_insts = insts.len();
        let mut out = Vec::with_capacity(n_insts);
        for u in &insts {
            out.push(self.encode(u, n_insts)?);
        }
        let mut data = vec![0i64; data_len];
        for (word, expr) in &data_init {
            data[*word] = self.eval(expr)?;
        }
        let entry = match self.symbols.get("main") {
            Some((SymKind::Code, value, _)) => *value as u32,
            _ => 0,
        };
        let symbols = self
            .order
            .iter()
            .map(|name| {
                let (kind, value, _) = self.symbols[name];
                Symbol {
                    name: name.clone(),
                    kind,
                    value,
                }
            })
            .collect();
        Ok(Program {
            name,
            insts: out,
            data,
            entry,
            symbols,
        })
    }

    fn define(
        &mut self,
        name: String,
        kind: SymKind,
        value: i64,
        span: Span,
    ) -> Result<(), AsmError> {
        if parse_reg_name(&name).is_some() {
            return Err(parse_err(
                span,
                format!("register name {name:?} used as symbol"),
            ));
        }
        if let Some((_, _, first)) = self.symbols.get(&name) {
            return Err(AsmError::DuplicateSymbol {
                span,
                name,
                first: *first,
            });
        }
        self.order.push(name.clone());
        self.symbols.insert(name, (kind, value, span));
        Ok(())
    }

    /// Resolves `.equ` values by depth-first evaluation over the reference
    /// graph, reporting any cycle as the chain that closed it.
    fn resolve_equs(&mut self, equs: &[(String, Expr, Span)]) -> Result<(), AsmError> {
        let by_name: HashMap<&str, &(String, Expr, Span)> =
            equs.iter().map(|e| (e.0.as_str(), e)).collect();
        let mut done: HashMap<String, i64> = HashMap::new();
        let mut stack: Vec<String> = Vec::new();
        for (name, _, _) in equs {
            self.resolve_one(name, &by_name, &mut done, &mut stack)?;
        }
        for (name, value) in done {
            if let Some(entry) = self.symbols.get_mut(&name) {
                entry.1 = value;
            }
        }
        Ok(())
    }

    fn resolve_one(
        &self,
        name: &str,
        by_name: &HashMap<&str, &(String, Expr, Span)>,
        done: &mut HashMap<String, i64>,
        stack: &mut Vec<String>,
    ) -> Result<i64, AsmError> {
        if let Some(v) = done.get(name) {
            return Ok(*v);
        }
        let (_, expr, span) = by_name[name];
        if stack.iter().any(|n| n == name) {
            let mut chain: Vec<String> =
                stack[stack.iter().position(|n| n == name).unwrap()..].to_vec();
            chain.push(name.to_string());
            return Err(AsmError::SymbolCycle { span: *span, chain });
        }
        stack.push(name.to_string());
        let mut acc = 0i64;
        for (sign, term) in &expr.terms {
            let v = match term {
                Term::Num(n) => *n,
                Term::Sym(sym, sym_span) => match by_name.get(sym.as_str()) {
                    Some(_) => self.resolve_one(sym, by_name, done, stack)?,
                    None => {
                        return Err(match self.symbols.get(sym) {
                            // Labels are layout products; allowing them here
                            // would make `.space`-driven layout circular.
                            Some(_) => parse_err(
                                *sym_span,
                                format!(".equ may only reference numbers and other .equ symbols, not label {sym:?}"),
                            ),
                            None => AsmError::UndefinedSymbol {
                                span: *sym_span,
                                name: sym.clone(),
                            },
                        });
                    }
                },
            };
            acc = acc.wrapping_add(sign.wrapping_mul(v));
        }
        stack.pop();
        done.insert(name.to_string(), acc);
        Ok(acc)
    }

    /// Evaluates a `.space` count: numbers and `.equ` constants only.
    fn eval_space(&self, expr: &Expr) -> Result<i64, AsmError> {
        let mut acc = 0i64;
        for (sign, term) in &expr.terms {
            let v = match term {
                Term::Num(n) => *n,
                Term::Sym(name, span) => match self.symbols.get(name) {
                    Some((SymKind::Const, value, _)) => *value,
                    Some(_) => {
                        return Err(parse_err(
                            *span,
                            format!(".space count may not reference label {name:?}"),
                        ))
                    }
                    None => {
                        return Err(AsmError::UndefinedSymbol {
                            span: *span,
                            name: name.clone(),
                        })
                    }
                },
            };
            acc = acc.wrapping_add(sign.wrapping_mul(v));
        }
        Ok(acc)
    }

    fn eval(&self, expr: &Expr) -> Result<i64, AsmError> {
        let mut acc = 0i64;
        for (sign, term) in &expr.terms {
            let v = match term {
                Term::Num(n) => *n,
                Term::Sym(name, span) => match self.symbols.get(name) {
                    Some((_, value, _)) => *value,
                    None => {
                        return Err(AsmError::UndefinedSymbol {
                            span: *span,
                            name: name.clone(),
                        })
                    }
                },
            };
            acc = acc.wrapping_add(sign.wrapping_mul(v));
        }
        Ok(acc)
    }

    fn encode(&self, u: &UInst, n_insts: usize) -> Result<Inst, AsmError> {
        let bad = |expected: &'static str| AsmError::BadOperands {
            span: u.span,
            mnemonic: u.mnemonic.clone(),
            expected,
        };
        let m = u.mnemonic.as_str();
        if let Some(op) = alu3_op(m) {
            let [rd, ra, rb] = self.regs3(u).ok_or_else(|| bad("rd, ra, rb"))?;
            return Ok(Inst::Alu { op, rd, ra, rb });
        }
        if let Some(op) = alui_op(m) {
            let (rd, ra, imm) = self.reg_reg_imm(u)?.ok_or_else(|| bad("rd, ra, imm"))?;
            return Ok(Inst::AluImm { op, rd, ra, imm });
        }
        match m {
            "halt" if u.ops.is_empty() => Ok(Inst::Halt),
            "nop" if u.ops.is_empty() => Ok(Inst::Nop),
            "ret" if u.ops.is_empty() => Ok(Inst::Ret),
            "halt" | "nop" | "ret" => Err(bad("no operands")),
            "li" => match u.ops.as_slice() {
                [Operand::Reg(rd), rhs] => Ok(Inst::AluImm {
                    op: AluOp::Add,
                    rd: *rd,
                    ra: Reg::ZERO,
                    imm: self.operand_value(rhs)?.ok_or_else(|| bad("rd, imm"))?,
                }),
                _ => Err(bad("rd, imm")),
            },
            "mv" => match u.ops.as_slice() {
                [Operand::Reg(rd), Operand::Reg(ra)] => Ok(Inst::Alu {
                    op: AluOp::Add,
                    rd: *rd,
                    ra: *ra,
                    rb: Reg::ZERO,
                }),
                _ => Err(bad("rd, ra")),
            },
            "ld" | "st" => match u.ops.as_slice() {
                [Operand::Reg(r), mem] => {
                    let (off, base) = match mem {
                        Operand::Mem { off, base } => (self.eval(off)?, *base),
                        Operand::Expr(e) => (self.eval(e)?, Reg::ZERO),
                        Operand::Reg(..) => return Err(bad("rd, off(ra)")),
                    };
                    Ok(if m == "ld" {
                        Inst::Ld {
                            rd: *r,
                            ra: base,
                            off,
                        }
                    } else {
                        Inst::St {
                            rs: *r,
                            ra: base,
                            off,
                        }
                    })
                }
                _ => Err(bad("rd, off(ra)")),
            },
            "beq" | "bne" | "blt" | "bge" => {
                let cond = match m {
                    "beq" => BrCond::Eq,
                    "bne" => BrCond::Ne,
                    "blt" => BrCond::Lt,
                    _ => BrCond::Ge,
                };
                match u.ops.as_slice() {
                    [Operand::Reg(ra), Operand::Reg(rb), Operand::Expr(t)] => Ok(Inst::Br {
                        cond,
                        ra: *ra,
                        rb: *rb,
                        target: self.target(t, n_insts)?,
                    }),
                    _ => Err(bad("ra, rb, target")),
                }
            }
            "j" | "jmp" => match u.ops.as_slice() {
                [Operand::Expr(t)] => Ok(Inst::Jmp {
                    target: self.target(t, n_insts)?,
                }),
                _ => Err(bad("target")),
            },
            "call" => match u.ops.as_slice() {
                [Operand::Expr(t)] => Ok(Inst::Call {
                    target: self.target(t, n_insts)?,
                }),
                _ => Err(bad("target")),
            },
            "callr" => match u.ops.as_slice() {
                [Operand::Reg(ra)] => Ok(Inst::CallR { ra: *ra }),
                _ => Err(bad("ra")),
            },
            "jr" => match u.ops.as_slice() {
                [Operand::Reg(ra)] => Ok(Inst::Jr { ra: *ra }),
                _ => Err(bad("ra")),
            },
            _ => Err(AsmError::UnknownMnemonic {
                span: u.span,
                found: u.mnemonic.clone(),
            }),
        }
    }

    fn regs3(&self, u: &UInst) -> Option<[Reg; 3]> {
        match u.ops.as_slice() {
            [Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)] => Some([*a, *b, *c]),
            _ => None,
        }
    }

    fn reg_reg_imm(&self, u: &UInst) -> Result<Option<(Reg, Reg, i64)>, AsmError> {
        match u.ops.as_slice() {
            [Operand::Reg(a), Operand::Reg(b), rhs] => {
                Ok(self.operand_value(rhs)?.map(|imm| (*a, *b, imm)))
            }
            _ => Ok(None),
        }
    }

    fn operand_value(&self, op: &Operand) -> Result<Option<i64>, AsmError> {
        match op {
            Operand::Expr(e) => self.eval(e).map(Some),
            _ => Ok(None),
        }
    }

    fn target(&self, expr: &Expr, n_insts: usize) -> Result<u32, AsmError> {
        let v = self.eval(expr)?;
        if !(0..n_insts as i64).contains(&v) {
            return Err(AsmError::ValueOutOfRange {
                span: expr.span,
                what: "branch target",
            });
        }
        Ok(v as u32)
    }
}

fn check_data_len(len: usize) -> Result<(), AsmError> {
    if len > MAX_DATA_WORDS {
        return Err(AsmError::ProgramTooLarge {
            what: "data words",
            count: len,
            max: MAX_DATA_WORDS,
        });
    }
    Ok(())
}

fn parse_reg_name(name: &str) -> Option<Reg> {
    let digits = name.strip_prefix('r')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Reg::new(digits.parse::<u64>().ok()?)
}

fn alu3_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "slt" => AluOp::Slt,
        _ => return None,
    })
}

fn alui_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "addi" => AluOp::Add,
        "muli" => AluOp::Mul,
        "andi" => AluOp::And,
        "ori" => AluOp::Or,
        "xori" => AluOp::Xor,
        "slli" => AluOp::Sll,
        "srli" => AluOp::Srl,
        "slti" => AluOp::Slt,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Line parsing

type ParsedLine = (Vec<(String, Span)>, Option<Body>);

fn parse_line(toks: &[Spanned]) -> Result<ParsedLine, AsmError> {
    let mut labels = Vec::new();
    let mut i = 0;
    // Leading `ident:` pairs are labels.
    while i + 1 < toks.len() {
        match (&toks[i].tok, &toks[i + 1].tok) {
            (Tok::Ident(name), Tok::Colon) if !name.starts_with('.') => {
                labels.push((name.clone(), toks[i].span));
                i += 2;
            }
            _ => break,
        }
    }
    let rest = &toks[i..];
    if rest.is_empty() {
        return Ok((labels, None));
    }
    let (head, head_span) = match &rest[0].tok {
        Tok::Ident(name) => (name.as_str(), rest[0].span),
        Tok::Colon => return Err(parse_err(rest[0].span, "label without a name")),
        _ => return Err(parse_err(rest[0].span, "expected mnemonic or directive")),
    };
    let args = &rest[1..];
    let body = if let Some(directive) = head.strip_prefix('.') {
        parse_directive(directive, head_span, args)?
    } else {
        Body::Inst(UInst {
            mnemonic: head.to_string(),
            span: head_span,
            ops: parse_operands(args)?,
        })
    };
    Ok((labels, Some(body)))
}

fn parse_directive(name: &str, span: Span, args: &[Spanned]) -> Result<Body, AsmError> {
    let bad = |expected: &'static str| AsmError::BadOperands {
        span,
        mnemonic: format!(".{name}"),
        expected,
    };
    match name {
        "data" if args.is_empty() => Ok(Body::Section(SymKind::Data)),
        "code" | "text" if args.is_empty() => Ok(Body::Section(SymKind::Code)),
        "data" | "code" | "text" => Err(bad("no operands")),
        "word" => {
            let exprs = split_operands(args)?
                .into_iter()
                .map(parse_expr)
                .collect::<Result<Vec<_>, _>>()?;
            if exprs.is_empty() {
                return Err(bad("at least one expression"));
            }
            Ok(Body::Word(exprs))
        }
        "space" => Ok(Body::Space(
            parse_expr(args).map_err(|_| bad("a word count"))?,
        )),
        "ascii" => match args {
            [Spanned {
                tok: Tok::Str(s), ..
            }] => Ok(Body::Ascii(s.clone())),
            _ => Err(bad("a string literal")),
        },
        "equ" => {
            let parts = split_operands(args)?;
            match parts.as_slice() {
                [[Spanned {
                    tok: Tok::Ident(sym),
                    span: sym_span,
                }], expr_toks] => Ok(Body::Equ(sym.clone(), parse_expr(expr_toks)?, *sym_span)),
                _ => Err(bad("name, expression")),
            }
        }
        _ => Err(AsmError::UnknownMnemonic {
            span,
            found: format!(".{name}"),
        }),
    }
}

/// Splits a token run on commas. Rejects empty segments (`a,,b`).
fn split_operands(toks: &[Spanned]) -> Result<Vec<&[Spanned]>, AsmError> {
    if toks.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        if t.tok == Tok::Comma {
            if i == start {
                return Err(parse_err(t.span, "empty operand"));
            }
            out.push(&toks[start..i]);
            start = i + 1;
        }
    }
    if start == toks.len() {
        let last = toks.last().unwrap();
        return Err(parse_err(last.span, "trailing comma"));
    }
    out.push(&toks[start..]);
    Ok(out)
}

fn parse_operands(toks: &[Spanned]) -> Result<Vec<Operand>, AsmError> {
    split_operands(toks)?
        .into_iter()
        .map(parse_operand)
        .collect()
}

fn parse_operand(toks: &[Spanned]) -> Result<Operand, AsmError> {
    // A lone register name is a register operand.
    if let [Spanned {
        tok: Tok::Ident(name),
        span: _,
    }] = toks
    {
        if let Some(reg) = parse_reg_name(name) {
            return Ok(Operand::Reg(reg));
        }
    }
    // `expr ( reg )` is a memory operand.
    if toks.len() >= 3 && toks.last().unwrap().tok == Tok::RParen {
        if let Some(lp) = toks.iter().rposition(|t| t.tok == Tok::LParen) {
            let inner = &toks[lp + 1..toks.len() - 1];
            let base = match inner {
                [Spanned {
                    tok: Tok::Ident(name),
                    span,
                }] => parse_reg_name(name)
                    .ok_or_else(|| parse_err(*span, format!("expected register, got {name:?}")))?,
                _ => {
                    return Err(parse_err(
                        toks[lp].span,
                        "memory operand base must be a register",
                    ))
                }
            };
            let off = if lp == 0 {
                Expr {
                    terms: vec![(1, Term::Num(0))],
                    span: toks[0].span,
                }
            } else {
                parse_expr(&toks[..lp])?
            };
            return Ok(Operand::Mem { off, base });
        }
    }
    parse_expr(toks).map(Operand::Expr)
}

/// Parses `['-'|'+'] term (('+'|'-') term)*`.
fn parse_expr(toks: &[Spanned]) -> Result<Expr, AsmError> {
    let span = toks
        .first()
        .map(|t| t.span)
        .ok_or_else(|| parse_err(Span::new(0, 0), "empty expression"))?;
    let mut terms = Vec::new();
    let mut i = 0;
    let mut sign = 1i64;
    let mut expect_term = true;
    while i < toks.len() {
        let t = &toks[i];
        match (&t.tok, expect_term) {
            (Tok::Plus, true) => {}
            (Tok::Minus, true) => sign = -sign,
            (Tok::Num(n), true) => {
                terms.push((sign, Term::Num(*n)));
                sign = 1;
                expect_term = false;
            }
            (Tok::Ident(name), true) => {
                if parse_reg_name(name).is_some() {
                    return Err(parse_err(
                        t.span,
                        format!("register {name} is not valid in an expression"),
                    ));
                }
                terms.push((sign, Term::Sym(name.clone(), t.span)));
                sign = 1;
                expect_term = false;
            }
            (Tok::Plus, false) => expect_term = true,
            (Tok::Minus, false) => {
                sign = -1;
                expect_term = true;
            }
            _ => return Err(parse_err(t.span, "malformed expression")),
        }
        i += 1;
    }
    if expect_term {
        let last = toks.last().unwrap();
        return Err(parse_err(last.span, "expression ends with an operator"));
    }
    Ok(Expr { terms, span })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_minimal_loop() {
        let p = assemble(
            "t",
            "\
.equ N, 3
        li   r1, N
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.entry, 0);
        assert_eq!(
            p.insts[2],
            Inst::Br {
                cond: BrCond::Ne,
                ra: Reg::new(1).unwrap(),
                rb: Reg::ZERO,
                target: 1
            }
        );
        assert_eq!(p.insts[3], Inst::Halt);
    }

    #[test]
    fn main_label_sets_entry() {
        let p = assemble("t", "fn: ret\nmain: call fn\nhalt\n").unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn data_section_words_and_labels() {
        let p = assemble(
            "t",
            "\
        ld r1, arr(r0)
        ld r2, arr+2(r0)
        halt
.data
arr:    .word 10, 20, 30
buf:    .space 4
msg:    .ascii \"ab\"
",
        )
        .unwrap();
        assert_eq!(p.data, vec![10, 20, 30, 0, 0, 0, 0, 'a' as i64, 'b' as i64]);
        let sym = |n: &str| p.symbols.iter().find(|s| s.name == n).unwrap().value;
        assert_eq!(sym("arr"), 0);
        assert_eq!(sym("buf"), 3);
        assert_eq!(sym("msg"), 7);
        assert_eq!(
            p.insts[0],
            Inst::Ld {
                rd: Reg::new(1).unwrap(),
                ra: Reg::ZERO,
                off: 0
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Ld {
                rd: Reg::new(2).unwrap(),
                ra: Reg::ZERO,
                off: 2
            }
        );
    }

    #[test]
    fn word_may_reference_code_labels() {
        let p = assemble(
            "t",
            "\
main:   halt
h1:     ret
h2:     ret
.data
tab:    .word h1, h2
",
        )
        .unwrap();
        assert_eq!(p.data, vec![1, 2]);
    }

    #[test]
    fn equ_chains_resolve() {
        let p = assemble(
            "t",
            ".equ A, B + 1\n.equ B, C - 1\n.equ C, 10\nli r1, A\nhalt\n",
        )
        .unwrap();
        assert_eq!(
            p.insts[0],
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::new(1).unwrap(),
                ra: Reg::ZERO,
                imm: 10
            }
        );
    }

    #[test]
    fn equ_cycle_is_detected() {
        let err = assemble("t", ".equ A, B\n.equ B, A\nhalt\n").unwrap_err();
        match err {
            AsmError::SymbolCycle { chain, .. } => {
                assert!(chain.len() >= 2, "{chain:?}");
            }
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn char_and_hex_literals() {
        let p = assemble("t", "li r1, 'a'\nli r2, 0x10\nli r3, '\\n'\nhalt\n").unwrap();
        let imm = |i: usize| match p.insts[i] {
            Inst::AluImm { imm, .. } => imm,
            _ => panic!(),
        };
        assert_eq!(imm(0), 97);
        assert_eq!(imm(1), 16);
        assert_eq!(imm(2), 10);
    }

    #[test]
    fn branch_target_out_of_range() {
        let err = assemble("t", "j 99\nhalt\n").unwrap_err();
        assert!(matches!(
            err,
            AsmError::ValueOutOfRange {
                what: "branch target",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_label_reports_both_spans() {
        let err = assemble("t", "a: halt\na: halt\n").unwrap_err();
        match err {
            AsmError::DuplicateSymbol { span, first, .. } => {
                assert_eq!(first.line, 1);
                assert_eq!(span.line, 2);
            }
            other => panic!("expected duplicate, got {other}"),
        }
    }

    #[test]
    fn unknown_mnemonic_and_directive() {
        assert!(matches!(
            assemble("t", "frobnicate r1\n").unwrap_err(),
            AsmError::UnknownMnemonic { .. }
        ));
        assert!(matches!(
            assemble("t", ".frobnicate 1\n").unwrap_err(),
            AsmError::UnknownMnemonic { .. }
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble("t", "; nothing\n  # also nothing\nhalt ; stop\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            assemble("t", "; just a comment\n").unwrap_err(),
            AsmError::EmptyProgram
        );
        assert_eq!(assemble("t", "").unwrap_err(), AsmError::EmptyProgram);
    }
}
