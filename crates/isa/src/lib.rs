//! `fdip-isa`: an executable ISA front-end for the FDIP reproduction.
//!
//! Every workload the simulator fetched before this crate came from one
//! synthetic CFG generator. `fdip-isa` adds *real programs*: a two-pass
//! assembler for FISA (a minimal fixed-width RISC, [`asm`]), a functional
//! executor that emits the dynamic instruction stream as trace records
//! ([`exec`]), a committed program library — sorts, a bytecode VM, a
//! recursive-descent parser, string/hash routines ([`library`]) — and
//! multi-phase scenario composition stitching context switches and
//! interrupt-style transfers across programs ([`scenario`]).
//!
//! The emitted streams are ordinary [`fdip_trace::Trace`]s: they satisfy
//! the continuity invariant, round-trip through the binary codec, and
//! feed the simulator, harness cache, and experiment registry unchanged.
//!
//! ```
//! let program = fdip_isa::assemble(
//!     "demo",
//!     "main: li r1, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n",
//! )
//! .unwrap();
//! let trace = fdip_isa::program_trace(&program, "demo", 100).unwrap();
//! assert!(trace.len() >= 100);
//! trace.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod error;
pub mod exec;
pub mod inst;
pub mod library;
pub mod program;
pub mod scenario;

pub use asm::assemble;
pub use error::{AsmError, ExecError, Span};
pub use exec::{program_trace, ExecStats, Machine, DEFAULT_STEP_LIMIT};
pub use inst::{AluOp, BrCond, Inst, Reg};
pub use program::{Program, SymKind, Symbol};
