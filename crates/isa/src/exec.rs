//! The functional executor: runs an assembled [`Program`] and emits its
//! dynamic instruction stream as trace records.
//!
//! The machine is deliberately simple — 16 registers, a word-addressed
//! data memory, and an executor-managed call stack (so call/return pairing
//! holds by construction, matching the trace model's RAS semantics). Every
//! executed instruction produces exactly one [`TraceInstr`]; the emitted
//! stream satisfies [`fdip_trace::Trace::validate`]'s continuity invariant
//! because the machine *is* the control flow.
//!
//! Two emission modes exist:
//!
//! - [`Machine::run_to_halt`] executes one program run; `halt` emits a
//!   plain record and the stream ends (the `fdip run-prog` view).
//! - [`Machine::emit`] produces a workload trace of any target length by
//!   treating `halt` as a jump back to the entry point — a driver loop
//!   re-invoking the program with registers and data memory intact, so
//!   later runs see warmed state (a sorted array re-sorts, a seed cell
//!   advances).

use fdip_trace::Trace;
use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};

use crate::error::ExecError;
use crate::inst::{Inst, Reg, NUM_REGS};
use crate::program::Program;

/// Default code base address for single-program execution.
pub const DEFAULT_CODE_BASE: Addr = Addr::new(0x0040_0000);

/// Minimum data memory size in words (programs may declare more).
pub const DEFAULT_DATA_WORDS: usize = 1 << 16;

/// Deepest allowed call nesting.
pub const MAX_CALL_DEPTH: usize = 4096;

/// Default step budget for [`Machine::run_to_halt`].
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// Execution counters, accumulated across runs (wraps included).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub steps: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Control-flow instructions executed.
    pub branches: u64,
    /// Taken control-flow instructions.
    pub taken_branches: u64,
    /// Deepest call nesting observed.
    pub max_call_depth: usize,
    /// Completed program runs (halts) in wrap mode.
    pub wraps: u64,
}

/// An executing instance of a [`Program`].
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    base: Addr,
    regs: [i64; NUM_REGS],
    data: Vec<i64>,
    call_stack: Vec<u32>,
    pc: u32,
    stats: ExecStats,
}

impl<'p> Machine<'p> {
    /// Builds a machine at [`DEFAULT_CODE_BASE`].
    pub fn new(program: &'p Program) -> Machine<'p> {
        Machine::with_base(program, DEFAULT_CODE_BASE)
    }

    /// Builds a machine whose code is loaded at `base` (must be
    /// instruction-aligned; scenario composition loads phases at disjoint
    /// bases).
    pub fn with_base(program: &'p Program, base: Addr) -> Machine<'p> {
        debug_assert!(base.is_inst_aligned());
        let mut data = program.data.clone();
        if data.len() < DEFAULT_DATA_WORDS {
            data.resize(DEFAULT_DATA_WORDS, 0);
        }
        Machine {
            program,
            base,
            regs: [0; NUM_REGS],
            data,
            call_stack: Vec::new(),
            pc: program.entry,
            stats: ExecStats::default(),
        }
    }

    /// The address of instruction index `idx`.
    fn addr(&self, idx: u32) -> Addr {
        self.base.add_insts(idx as u64)
    }

    /// The PC of the instruction the machine will execute next.
    pub fn next_pc_addr(&self) -> Addr {
        self.addr(self.pc)
    }

    /// Execution counters so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Reads data-memory word `idx`, if in range (for result inspection).
    pub fn data_word(&self, idx: usize) -> Option<i64> {
        self.data.get(idx).copied()
    }

    fn read(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    fn write(&mut self, r: Reg, v: i64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    fn mem_index(&self, ra: Reg, off: i64, pc: Addr) -> Result<usize, ExecError> {
        let addr = self.read(ra).wrapping_add(off);
        if !(0..self.data.len() as i64).contains(&addr) {
            return Err(ExecError::DataOutOfRange { addr, pc });
        }
        Ok(addr as usize)
    }

    fn indirect_target(&self, ra: Reg) -> Result<u32, ExecError> {
        let v = self.read(ra);
        if !(0..self.program.insts.len() as i64).contains(&v) {
            return Err(ExecError::PcOutOfRange {
                pc: Addr::new(self.base.raw().wrapping_add((v as u64).wrapping_mul(4))),
            });
        }
        Ok(v as u32)
    }

    fn push_call(&mut self, ret_to: u32, pc: Addr) -> Result<(), ExecError> {
        if self.call_stack.len() >= MAX_CALL_DEPTH {
            return Err(ExecError::CallDepthExceeded {
                max: MAX_CALL_DEPTH,
                pc,
            });
        }
        self.call_stack.push(ret_to);
        self.stats.max_call_depth = self.stats.max_call_depth.max(self.call_stack.len());
        Ok(())
    }

    /// Executes one instruction and returns its trace record plus whether
    /// it was a `halt`. With `wrap`, `halt` becomes a taken jump back to
    /// the entry point (the driver loop) instead of a plain record.
    fn step(&mut self, wrap: bool) -> Result<(TraceInstr, bool), ExecError> {
        let pc_addr = self.addr(self.pc);
        let inst = match self.program.insts.get(self.pc as usize) {
            Some(inst) => *inst,
            None => return Err(ExecError::PcOutOfRange { pc: pc_addr }),
        };
        self.stats.steps += 1;
        if inst.is_control() {
            self.stats.branches += 1;
        }
        let branch = |class: BranchClass, taken: bool, target: Addr| {
            TraceInstr::branch(pc_addr, BranchRecord::new(class, taken, target))
        };
        let record = match inst {
            Inst::Halt => {
                if wrap {
                    self.stats.wraps += 1;
                    self.pc = self.program.entry;
                    self.call_stack.clear();
                    let rec = TraceInstr::branch(
                        pc_addr,
                        BranchRecord::new(
                            BranchClass::UncondDirect,
                            true,
                            self.addr(self.program.entry),
                        ),
                    );
                    return Ok((rec, true));
                }
                return Ok((TraceInstr::plain(pc_addr), true));
            }
            Inst::Nop => TraceInstr::plain(pc_addr),
            Inst::Alu { op, rd, ra, rb } => {
                let v = op.apply(self.read(ra), self.read(rb));
                self.write(rd, v);
                TraceInstr::plain(pc_addr)
            }
            Inst::AluImm { op, rd, ra, imm } => {
                let v = op.apply(self.read(ra), imm);
                self.write(rd, v);
                TraceInstr::plain(pc_addr)
            }
            Inst::Ld { rd, ra, off } => {
                let idx = self.mem_index(ra, off, pc_addr)?;
                self.stats.loads += 1;
                self.write(rd, self.data[idx]);
                TraceInstr::plain(pc_addr)
            }
            Inst::St { rs, ra, off } => {
                let idx = self.mem_index(ra, off, pc_addr)?;
                self.stats.stores += 1;
                self.data[idx] = self.read(rs);
                TraceInstr::plain(pc_addr)
            }
            Inst::Br {
                cond,
                ra,
                rb,
                target,
            } => {
                let taken = cond.holds(self.read(ra), self.read(rb));
                let rec = branch(BranchClass::CondDirect, taken, self.addr(target));
                self.pc = if taken { target } else { self.pc + 1 };
                if taken {
                    self.stats.taken_branches += 1;
                }
                return Ok((rec, false));
            }
            Inst::Jmp { target } => {
                let rec = branch(BranchClass::UncondDirect, true, self.addr(target));
                self.pc = target;
                self.stats.taken_branches += 1;
                return Ok((rec, false));
            }
            Inst::Call { target } => {
                self.push_call(self.pc + 1, pc_addr)?;
                let rec = branch(BranchClass::Call, true, self.addr(target));
                self.pc = target;
                self.stats.taken_branches += 1;
                return Ok((rec, false));
            }
            Inst::CallR { ra } => {
                let target = self.indirect_target(ra)?;
                self.push_call(self.pc + 1, pc_addr)?;
                let rec = branch(BranchClass::IndirectCall, true, self.addr(target));
                self.pc = target;
                self.stats.taken_branches += 1;
                return Ok((rec, false));
            }
            Inst::Jr { ra } => {
                let target = self.indirect_target(ra)?;
                let rec = branch(BranchClass::IndirectJump, true, self.addr(target));
                self.pc = target;
                self.stats.taken_branches += 1;
                return Ok((rec, false));
            }
            Inst::Ret => {
                let target = match self.call_stack.pop() {
                    Some(t) => t,
                    None => return Err(ExecError::ReturnUnderflow { pc: pc_addr }),
                };
                let rec = branch(BranchClass::Return, true, self.addr(target));
                self.pc = target;
                self.stats.taken_branches += 1;
                return Ok((rec, false));
            }
        };
        self.pc += 1;
        Ok((record, false))
    }

    /// Appends exactly `n` records to `out`, wrapping through `halt` as
    /// many times as needed (the driver-loop workload view).
    pub fn emit(&mut self, n: usize, out: &mut Vec<TraceInstr>) -> Result<(), ExecError> {
        out.reserve(n);
        for _ in 0..n {
            let (rec, _) = self.step(true)?;
            out.push(rec);
        }
        Ok(())
    }

    /// Executes one full program run (entry to `halt`), returning the
    /// emitted records. Fails with [`ExecError::StepLimit`] if the program
    /// does not halt within `limit` steps.
    pub fn run_to_halt(&mut self, limit: u64) -> Result<Vec<TraceInstr>, ExecError> {
        let mut out = Vec::new();
        for _ in 0..limit {
            let (rec, halted) = self.step(false)?;
            out.push(rec);
            if halted {
                return Ok(out);
            }
        }
        Err(ExecError::StepLimit { limit })
    }
}

/// Executes `program` in driver-loop mode until at least `target_len`
/// records exist, and packages them as a named [`Trace`].
pub fn program_trace(
    program: &Program,
    trace_name: &str,
    target_len: usize,
) -> Result<Trace, ExecError> {
    let mut m = Machine::new(program);
    let mut out = Vec::with_capacity(target_len);
    m.emit(target_len, &mut out)?;
    Ok(Trace::from_instrs(trace_name, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn prog(src: &str) -> Program {
        assemble("t", src).unwrap()
    }

    #[test]
    fn straight_line_halts() {
        let p = prog("li r1, 5\naddi r1, r1, 2\nhalt\n");
        let mut m = Machine::new(&p);
        let recs = m.run_to_halt(100).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.branch.is_none()));
        assert_eq!(m.read(Reg::new(1).unwrap()), 7);
    }

    #[test]
    fn loop_emits_valid_trace() {
        let p = prog("li r1, 4\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n");
        let mut m = Machine::new(&p);
        let recs = m.run_to_halt(100).unwrap();
        Trace::from_instrs("t", recs).validate().unwrap();
        assert_eq!(m.stats().taken_branches, 3); // 3 taken, 1 fall-through
        assert_eq!(m.stats().branches, 4);
    }

    #[test]
    fn call_ret_pair() {
        let p = prog("main: call fn\nhalt\nfn: ret\n");
        let mut m = Machine::new(&p);
        let recs = m.run_to_halt(100).unwrap();
        let t = Trace::from_instrs("t", recs);
        t.validate().unwrap();
        assert_eq!(m.stats().max_call_depth, 1);
        let classes: Vec<_> = t
            .instrs()
            .iter()
            .filter_map(|r| r.branch.map(|b| b.class))
            .collect();
        assert_eq!(classes, vec![BranchClass::Call, BranchClass::Return]);
    }

    #[test]
    fn indirect_jump_through_table() {
        let p = prog(
            "\
main:   ld r1, tab(r0)
        jr r1
spot:   halt
.data
tab:    .word spot
",
        );
        let mut m = Machine::new(&p);
        let recs = m.run_to_halt(100).unwrap();
        assert_eq!(recs[1].branch.unwrap().class, BranchClass::IndirectJump);
        Trace::from_instrs("t", recs).validate().unwrap();
    }

    #[test]
    fn wrap_mode_jumps_back_to_entry() {
        let p = prog("main: addi r1, r1, 1\nhalt\n");
        let t = program_trace(&p, "w", 10).unwrap();
        t.validate().unwrap();
        assert_eq!(t.len(), 10);
        // Every second record is the halt-as-driver-loop jump.
        let b = t.instrs()[1].branch.unwrap();
        assert_eq!(b.class, BranchClass::UncondDirect);
        assert_eq!(b.target, DEFAULT_CODE_BASE);
    }

    #[test]
    fn wrap_preserves_machine_state() {
        // r1 accumulates across wraps: state persists through the driver
        // loop.
        let p = prog("main: addi r1, r1, 1\nhalt\n");
        let mut m = Machine::new(&p);
        let mut out = Vec::new();
        m.emit(10, &mut out).unwrap();
        assert_eq!(m.read(Reg::new(1).unwrap()), 5);
        assert_eq!(m.stats().wraps, 5);
    }

    #[test]
    fn data_bounds_are_typed_errors() {
        let p = prog("li r1, -1\nld r2, 0(r1)\nhalt\n");
        let err = Machine::new(&p).run_to_halt(100).unwrap_err();
        assert!(matches!(err, ExecError::DataOutOfRange { addr: -1, .. }));
    }

    #[test]
    fn bad_indirect_target_is_typed() {
        let p = prog("li r1, 999\njr r1\nhalt\n");
        let err = Machine::new(&p).run_to_halt(100).unwrap_err();
        assert!(matches!(err, ExecError::PcOutOfRange { .. }));
    }

    #[test]
    fn ret_underflow_is_typed() {
        let p = prog("ret\nhalt\n");
        let err = Machine::new(&p).run_to_halt(100).unwrap_err();
        assert!(matches!(err, ExecError::ReturnUnderflow { .. }));
    }

    #[test]
    fn step_limit_fires_on_infinite_loop() {
        let p = prog("loop: j loop\nhalt\n");
        let err = Machine::new(&p).run_to_halt(50).unwrap_err();
        assert_eq!(err, ExecError::StepLimit { limit: 50 });
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let p = prog("li r0, 77\nadd r1, r0, r0\nhalt\n");
        let mut m = Machine::new(&p);
        m.run_to_halt(100).unwrap();
        assert_eq!(m.read(Reg::ZERO), 0);
        assert_eq!(m.read(Reg::new(1).unwrap()), 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let p = prog("main: addi r1, r1, 3\nbne r1, r0, skip\nnop\nskip: halt\n");
        let a = program_trace(&p, "a", 500).unwrap();
        let b = program_trace(&p, "a", 500).unwrap();
        assert_eq!(a.instrs(), b.instrs());
    }
}
