//! Multi-phase scenario composition: context-switch interleavings and
//! interrupt-style control transfers stitched from library programs.
//!
//! Each phase is a library program loaded at its own disjoint code base
//! with its own data memory. The composer round-robins between phases in
//! seed-jittered quanta; at every switch it injects an interrupt-style
//! transfer: the instruction the outgoing phase would have executed next
//! is *pre-empted* into an indirect jump to a small fixed kernel
//! trampoline (a burst of straight-line work standing in for
//! save/restore), whose final indirect jump lands on the incoming phase's
//! resume PC. Because the trampoline's exit is an indirect jump — not a
//! call/return pair — the return-address stack is untouched, matching how
//! real interrupt entry/exit bypasses the RAS.
//!
//! The pre-empted PC later re-executes as its real instruction when the
//! phase is resumed, so one static PC aliases two roles across the trace
//! — exactly the trap-replay interference real interrupted streams show,
//! and intentionally kept (DESIGN.md discusses the trade-off). The
//! continuity invariant holds throughout: every injected record's target
//! is the next record's PC by construction.

use fdip_trace::Trace;
use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};

use crate::error::ExecError;
use crate::exec::Machine;
use crate::library;

/// One phase of a scenario: a library program and its time slice.
#[derive(Copy, Clone, Debug)]
pub struct Phase {
    /// Library program name.
    pub program: &'static str,
    /// Nominal records emitted per slice (jittered ±25% by seed).
    pub quantum: u32,
}

/// A named multi-phase composition.
#[derive(Copy, Clone, Debug)]
pub struct ScenarioDef {
    /// Workload name, e.g. `cs-sort-vm`.
    pub name: &'static str,
    /// One-line description for listings.
    pub describe: &'static str,
    /// The phases, round-robined in order.
    pub phases: &'static [Phase],
    /// Straight-line instructions in the kernel trampoline.
    pub kernel_work: u32,
}

/// Code base of the kernel trampoline region.
pub const KERNEL_BASE: Addr = Addr::new(0x0008_0000);

/// Byte stride between phase code bases (far larger than any program).
pub const PHASE_BASE_STRIDE: u64 = 0x0100_0000;

/// The committed scenario catalogue.
pub const SCENARIOS: &[ScenarioDef] = &[
    ScenarioDef {
        name: "cs-sort-vm",
        describe: "context switches between bubble sort and the bytecode vm",
        phases: &[
            Phase {
                program: "bubble",
                quantum: 1500,
            },
            Phase {
                program: "vm",
                quantum: 1100,
            },
        ],
        kernel_work: 24,
    },
    ScenarioDef {
        name: "cs-quad",
        describe: "four-way context switch: qsort, parse, strhash, fib",
        phases: &[
            Phase {
                program: "qsort",
                quantum: 900,
            },
            Phase {
                program: "parse",
                quantum: 700,
            },
            Phase {
                program: "strhash",
                quantum: 800,
            },
            Phase {
                program: "fib",
                quantum: 600,
            },
        ],
        kernel_work: 24,
    },
    ScenarioDef {
        name: "irq-vm",
        describe: "vm foreground with frequent short parser interrupts",
        phases: &[
            Phase {
                program: "vm",
                quantum: 4000,
            },
            Phase {
                program: "parse",
                quantum: 150,
            },
        ],
        kernel_work: 12,
    },
];

/// The scenario names, in catalogue order.
pub fn names() -> Vec<&'static str> {
    SCENARIOS.iter().map(|s| s.name).collect()
}

/// Resolves a scenario by name.
pub fn find(name: &str) -> Option<&'static ScenarioDef> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// splitmix64: the workspace-standard cheap seed mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Jitters `quantum` by ±25% as a function of `(seed, slice)` so distinct
/// seeds produce distinct interleavings and switch points drift instead
/// of beating against program loop periods.
fn jittered(quantum: u32, seed: u64, slice: u64) -> usize {
    let r = splitmix64(seed ^ slice.wrapping_mul(0x9e37_79b9)) as u32;
    let q = quantum.max(4);
    let spread = q / 2; // jitter range [q - q/4, q + q/4]
    (q - q / 4 + r % spread.max(1)).max(1) as usize
}

/// Composes `def` into a trace of at least `target_len` records.
pub fn compose(
    def: &ScenarioDef,
    seed: u64,
    trace_name: &str,
    target_len: usize,
) -> Result<Trace, ExecError> {
    let programs: Vec<_> = def
        .phases
        .iter()
        .map(|ph| {
            library::load(ph.program).unwrap_or_else(|| {
                panic!("scenario {:?}: unknown program {:?}", def.name, ph.program)
            })
        })
        .collect();
    let mut machines: Vec<Machine<'_>> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| Machine::with_base(p, Addr::new(PHASE_BASE_STRIDE * (i as u64 + 1))))
        .collect();
    let mut out: Vec<TraceInstr> = Vec::with_capacity(target_len + 64);
    let mut cur = 0usize;
    let mut slice = 0u64;
    while out.len() < target_len {
        let quantum = jittered(def.phases[cur].quantum, seed, slice);
        machines[cur].emit(quantum, &mut out)?;
        slice += 1;
        if out.len() >= target_len {
            break;
        }
        // Interrupt-style transfer: pre-empt the outgoing phase's next
        // instruction into the kernel trampoline...
        let preempt_pc = machines[cur].next_pc_addr();
        out.push(TraceInstr::branch(
            preempt_pc,
            BranchRecord::new(BranchClass::IndirectJump, true, KERNEL_BASE),
        ));
        for j in 0..def.kernel_work {
            out.push(TraceInstr::plain(KERNEL_BASE.add_insts(j as u64)));
        }
        // ...whose exit lands on the incoming phase's resume PC.
        cur = (cur + 1) % def.phases.len();
        let resume = machines[cur].next_pc_addr();
        out.push(TraceInstr::branch(
            KERNEL_BASE.add_insts(def.kernel_work as u64),
            BranchRecord::new(BranchClass::IndirectJump, true, resume),
        ));
    }
    Ok(Trace::from_instrs(trace_name, out))
}

/// Composes the named scenario (convenience over [`find`] + [`compose`]).
pub fn trace(name: &str, seed: u64, trace_name: &str, target_len: usize) -> Option<Trace> {
    let def = find(name)?;
    match compose(def, seed, trace_name, target_len) {
        Ok(t) => Some(t),
        Err(e) => panic!("scenario {name:?} failed to execute: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique_and_resolve() {
        let mut ns = names();
        assert!(ns.len() >= 3);
        ns.sort();
        ns.dedup();
        assert_eq!(ns.len(), SCENARIOS.len());
        for def in SCENARIOS {
            assert!(find(def.name).is_some());
            for ph in def.phases {
                assert!(
                    library::source(ph.program).is_some(),
                    "{}: {}",
                    def.name,
                    ph.program
                );
            }
        }
    }

    #[test]
    fn composed_traces_validate() {
        for def in SCENARIOS {
            let t = compose(def, 7, def.name, 20_000).unwrap();
            assert!(t.len() >= 20_000);
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
    }

    #[test]
    fn phases_occupy_disjoint_footprints() {
        let t = compose(find("cs-sort-vm").unwrap(), 1, "t", 10_000).unwrap();
        let mut saw_phase = [false; 2];
        let mut saw_kernel = false;
        for r in t.instrs() {
            let raw = r.pc.raw();
            if raw >= PHASE_BASE_STRIDE * 2 {
                saw_phase[1] = true;
            } else if raw >= PHASE_BASE_STRIDE {
                saw_phase[0] = true;
            } else {
                assert!(
                    (KERNEL_BASE.raw()..KERNEL_BASE.raw() + 0x1000).contains(&raw),
                    "stray pc {:#x}",
                    raw
                );
                saw_kernel = true;
            }
        }
        assert!(saw_phase.iter().all(|&b| b) && saw_kernel);
    }

    #[test]
    fn seeds_change_the_interleaving() {
        let def = find("cs-sort-vm").unwrap();
        let a = compose(def, 1, "t", 10_000).unwrap();
        let b = compose(def, 2, "t", 10_000).unwrap();
        assert_ne!(a.instrs(), b.instrs());
    }

    #[test]
    fn composition_is_deterministic() {
        let def = find("cs-quad").unwrap();
        let a = compose(def, 5, "t", 15_000).unwrap();
        let b = compose(def, 5, "t", 15_000).unwrap();
        assert_eq!(a.instrs(), b.instrs());
    }

    #[test]
    fn kernel_exit_bypasses_the_ras() {
        // Every injected record is an IndirectJump: RAS depth is untouched
        // by switches, so call/return pairing inside phases still holds
        // (validate() above) and no scenario record is a Call/Return at a
        // kernel PC.
        let t = compose(find("irq-vm").unwrap(), 3, "t", 10_000).unwrap();
        for r in t.instrs() {
            if r.pc.raw() < PHASE_BASE_STRIDE {
                if let Some(b) = r.branch {
                    assert_eq!(b.class, BranchClass::IndirectJump);
                }
            }
        }
    }
}
