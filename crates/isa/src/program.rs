//! An assembled, relocatable FISA program.

use crate::inst::Inst;

/// Which namespace a symbol's value indexes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SymKind {
    /// A code label: value is an instruction index.
    Code,
    /// A data label: value is a data-memory word index.
    Data,
    /// A `.equ` constant: value is the evaluated expression.
    Const,
}

impl SymKind {
    /// Short tag for listings.
    pub fn tag(self) -> &'static str {
        match self {
            SymKind::Code => "code",
            SymKind::Data => "data",
            SymKind::Const => "equ",
        }
    }
}

/// One resolved symbol, in definition order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Namespace.
    pub kind: SymKind,
    /// Resolved value.
    pub value: i64,
}

/// An assembled program: position-independent code plus an initial data
/// image.
///
/// Control-flow targets inside [`Inst`] are instruction indices, so the
/// same `Program` executes identically at any code base address — the
/// scenario composer loads each phase at a disjoint base.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Program name (report label and default trace name).
    pub name: String,
    /// The instruction stream.
    pub insts: Vec<Inst>,
    /// Initial data-memory image, in words.
    pub data: Vec<i64>,
    /// Entry point: the `main` label if defined, else instruction 0.
    pub entry: u32,
    /// Resolved symbol table, in definition order.
    pub symbols: Vec<Symbol>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions (never produced by the
    /// assembler, which rejects empty programs).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}
