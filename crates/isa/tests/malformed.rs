//! Malformed-input hardening for the assembler, mirroring the PR 2 codec
//! discipline: every bad input produces a typed [`AsmError`] — never a
//! panic — and spans point at the offending source.

use fdip_isa::{assemble, AsmError};

fn err(src: &str) -> AsmError {
    match assemble("t", src) {
        Err(e) => e,
        Ok(_) => panic!("expected error for {src:?}"),
    }
}

#[test]
fn unknown_mnemonics() {
    assert!(
        matches!(err("frob r1, r2\n"), AsmError::UnknownMnemonic { found, .. } if found == "frob")
    );
    assert!(
        matches!(err(".section data\n"), AsmError::UnknownMnemonic { found, .. } if found == ".section")
    );
}

#[test]
fn wrong_operand_shapes() {
    for src in [
        "add r1, r2\nhalt\n",    // missing operand
        "add r1, r2, 5\nhalt\n", // imm where reg expected
        "addi r1, r2\nhalt\n",   // missing imm
        "li r1\nhalt\n",         // missing imm
        "ld r1\nhalt\n",         // missing address
        "beq r1, r2\nhalt\n",    // missing target
        "beq r1, 3, 0\nhalt\n",  // imm where reg expected
        "j r1, r2\nhalt\n",      // too many operands
        "jr 5\nhalt\n",          // imm where reg expected
        "ret r1\nhalt\n",        // operand on ret
        "halt r1\n",             // operand on halt
        ".word\nhalt\n",         // .word with no values
        ".ascii 5\nhalt\n",      // .ascii with a number
        ".equ 5, 5\nhalt\n",     // .equ without a name
        ".data 7\nhalt\n",       // .data takes nothing
    ] {
        assert!(
            matches!(err(src), AsmError::BadOperands { .. }),
            "wanted BadOperands for {src:?}, got {}",
            err(src)
        );
    }
}

#[test]
fn undefined_and_duplicate_symbols() {
    assert!(matches!(
        err("j nowhere\nhalt\n"),
        AsmError::UndefinedSymbol { name, .. } if name == "nowhere"
    ));
    assert!(matches!(
        err("ld r1, missing(r2)\nhalt\n"),
        AsmError::UndefinedSymbol { .. }
    ));
    let e = err("x: halt\n.equ x, 4\n");
    assert!(
        matches!(e, AsmError::DuplicateSymbol { ref name, .. } if name == "x"),
        "{e}"
    );
    assert!(matches!(
        err("a: nop\nb: nop\na: halt\n"),
        AsmError::DuplicateSymbol { first, .. } if first.line == 1
    ));
}

#[test]
fn equ_label_cycles_are_typed() {
    // Direct cycle.
    let e = err(".equ a, b\n.equ b, a\nhalt\n");
    match e {
        AsmError::SymbolCycle { chain, .. } => assert!(chain.len() >= 2),
        other => panic!("expected cycle, got {other}"),
    }
    // Longer cycle through three names.
    assert!(matches!(
        err(".equ a, b + 1\n.equ b, c + 1\n.equ c, a + 1\nhalt\n"),
        AsmError::SymbolCycle { .. }
    ));
    // Self-reference.
    assert!(matches!(
        err(".equ a, a + 1\nhalt\n"),
        AsmError::SymbolCycle { .. }
    ));
}

#[test]
fn overlong_identifiers() {
    let long = "x".repeat(65);
    assert!(matches!(
        err(&format!("{long}: halt\n")),
        AsmError::IdentifierTooLong { len: 65, .. }
    ));
    // At the limit is fine.
    let ok = "y".repeat(64);
    assert!(assemble("t", &format!("{ok}: halt\n")).is_ok());
}

#[test]
fn truncated_inputs() {
    // Source ending mid string literal.
    assert!(matches!(
        err(".ascii \"abc\nhalt\n"),
        AsmError::Parse { .. }
    ));
    // Source ending mid escape.
    assert!(matches!(err(".ascii \"abc\\"), AsmError::Parse { .. }));
    // Source ending mid character literal.
    assert!(matches!(err("li r1, 'a\nhalt\n"), AsmError::Parse { .. }));
    // Expression cut off at end of file.
    assert!(matches!(err("li r1, 5 +"), AsmError::Parse { .. }));
    // A file that stops after a label introducer.
    assert!(matches!(err("main:\n:"), AsmError::Parse { .. }));
}

#[test]
fn range_violations() {
    assert!(matches!(
        err("j 5\nhalt\n"),
        AsmError::ValueOutOfRange {
            what: "branch target",
            ..
        }
    ));
    assert!(matches!(
        err("beq r1, r2, -1\nhalt\n"),
        AsmError::ValueOutOfRange {
            what: "branch target",
            ..
        }
    ));
    assert!(matches!(
        err(".space -4\nhalt\n"),
        AsmError::ValueOutOfRange {
            what: ".space count",
            ..
        }
    ));
    assert!(matches!(
        err(".space 9999999999\nhalt\n"),
        AsmError::ValueOutOfRange { .. }
    ));
    // r16 is not a register — it parses as an (undefined, reserved) symbol.
    let e = err("li r16, 5\nhalt\n");
    assert!(
        matches!(e, AsmError::Parse { .. } | AsmError::BadOperands { .. }),
        "{e}"
    );
}

#[test]
fn register_names_are_reserved() {
    assert!(matches!(err("r3: halt\n"), AsmError::Parse { .. }));
    assert!(matches!(err(".equ r12, 5\nhalt\n"), AsmError::Parse { .. }));
    assert!(matches!(
        err("li r1, r2 + 1\nhalt\n"),
        AsmError::Parse { .. }
    ));
}

#[test]
fn stray_characters_and_bad_numbers() {
    assert!(matches!(
        err("li r1, 5 @ 3\nhalt\n"),
        AsmError::Parse { .. }
    ));
    assert!(matches!(err("li r1, 0xzz\nhalt\n"), AsmError::Parse { .. }));
    assert!(matches!(err("li r1, 12ab\nhalt\n"), AsmError::Parse { .. }));
    assert!(matches!(
        err("li r1, 99999999999999999999\nhalt\n"),
        AsmError::Parse { .. }
    ));
    assert!(matches!(err("li r1, 5 5\nhalt\n"), AsmError::Parse { .. }));
    assert!(matches!(
        err("halt extra, , tokens\n"),
        AsmError::Parse { .. }
    ));
}

#[test]
fn empty_programs() {
    assert_eq!(err(""), AsmError::EmptyProgram);
    assert_eq!(
        err("\n\n; only comments\n.data\nw: .word 1\n"),
        AsmError::EmptyProgram
    );
}

#[test]
fn space_may_use_equ_but_not_labels() {
    assert!(assemble("t", ".equ N, 8\nhalt\n.data\nbuf: .space N\n").is_ok());
    assert!(matches!(
        err("halt\n.data\na: .word 1\nbuf: .space a\n"),
        AsmError::Parse { .. }
    ));
}

#[test]
fn fuzzed_mutations_never_panic() {
    // Deterministically mutate a valid program; assembly must return
    // Ok or a typed error — never panic (the suite passing at all proves
    // no panic, since panics abort the test).
    let base = fdip_isa::library::source("bubble").unwrap();
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let bytes: Vec<u8> = base.bytes().collect();
    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..400 {
        let mut m = bytes.clone();
        for _ in 0..(rng() % 8 + 1) {
            let pos = (rng() as usize) % m.len();
            match rng() % 3 {
                0 => m[pos] = (rng() % 128) as u8,
                1 => {
                    m.truncate(pos); // truncated file
                }
                _ => m.insert(pos, b"();+-,\"'x0"[(rng() % 10) as usize]),
            }
            if m.is_empty() {
                break;
            }
        }
        let src = String::from_utf8_lossy(&m);
        match assemble("fuzz", &src) {
            Ok(_) => ok += 1,
            Err(e) => {
                let _ = e.to_string(); // Display must not panic either
                failed += 1;
            }
        }
    }
    // Sanity: the corpus actually exercised both outcomes.
    assert!(failed > 0, "ok={ok} failed={failed}");
}

#[test]
fn spans_point_at_the_offense() {
    let e = err("nop\nnop\n  badop r1\nhalt\n");
    assert_eq!(e.span().unwrap().line, 3);
    assert_eq!(e.span().unwrap().col, 3);
}
