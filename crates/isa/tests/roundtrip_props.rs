//! Property suite for the assembler/executor round trip: random
//! well-formed FISA programs assemble to identical [`Program`]s, execute
//! deterministically, and re-emit byte-identical binary traces across two
//! independent runs.

use fdip_isa::{assemble, program_trace, Program};
use fdip_trace::write_binary;
use proptest::prelude::*;

/// One straight-line ALU step in a generated program body.
#[derive(Clone, Debug)]
struct AluStep {
    op: &'static str,
    rd: u8,
    ra: u8,
    imm: i64,
}

fn alu_step() -> impl Strategy<Value = AluStep> {
    (
        prop_oneof![
            Just("addi"),
            Just("slti"),
            Just("xori"),
            Just("andi"),
            Just("ori"),
            Just("muli"),
        ],
        1u8..8,
        1u8..8,
        -100i64..100,
    )
        .prop_map(|(op, rd, ra, imm)| AluStep { op, rd, ra, imm })
}

/// Shape of a random well-formed program. Every field renders to source
/// text deterministically, so equal shapes produce equal sources.
#[derive(Clone, Debug)]
struct Shape {
    data: Vec<i64>,
    prologue: Vec<AluStep>,
    loop_count: u8,
    body: Vec<AluStep>,
    funcs: Vec<Vec<AluStep>>,
}

fn shape() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec(-1000i64..1000, 1..8),
        prop::collection::vec(alu_step(), 1..6),
        1u8..24,
        prop::collection::vec(alu_step(), 1..6),
        prop::collection::vec(prop::collection::vec(alu_step(), 1..4), 0..3),
    )
        .prop_map(|(data, prologue, loop_count, body, funcs)| Shape {
            data,
            prologue,
            loop_count,
            body,
            funcs,
        })
}

/// Renders a [`Shape`] to FISA source. The program sums a data array,
/// runs a counted loop of ALU work (calling each generated function once
/// per iteration), and stores the accumulated result.
fn render(s: &Shape) -> String {
    let mut src = String::new();
    src.push_str(&format!(".equ N, {}\n", s.loop_count));
    src.push_str("main:\n");
    for st in &s.prologue {
        src.push_str(&format!("  {} r{}, r{}, {}\n", st.op, st.rd, st.ra, st.imm));
    }
    // Sum the data array so loads and a data-dependent loop appear.
    src.push_str(&format!("  li r9, {}\n", s.data.len()));
    src.push_str("  li r10, 0\n  li r11, 0\nsumloop:\n");
    src.push_str("  ld r12, arr(r10)\n  add r11, r11, r12\n");
    src.push_str("  addi r10, r10, 1\n  bne r10, r9, sumloop\n");
    // Counted main loop with calls.
    src.push_str("  li r6, N\nmainloop:\n");
    for st in &s.body {
        src.push_str(&format!("  {} r{}, r{}, {}\n", st.op, st.rd, st.ra, st.imm));
    }
    for i in 0..s.funcs.len() {
        src.push_str(&format!("  call fn{i}\n"));
    }
    src.push_str("  addi r6, r6, -1\n  bne r6, r0, mainloop\n");
    src.push_str("  add r1, r1, r11\n  st r1, out(r0)\n  halt\n");
    for (i, f) in s.funcs.iter().enumerate() {
        src.push_str(&format!("fn{i}:\n"));
        for st in f {
            src.push_str(&format!("  {} r{}, r{}, {}\n", st.op, st.rd, st.ra, st.imm));
        }
        src.push_str("  ret\n");
    }
    src.push_str(".data\narr:\n");
    for v in &s.data {
        src.push_str(&format!("  .word {v}\n"));
    }
    src.push_str("out: .word 0\n");
    src
}

fn assemble_shape(s: &Shape) -> Program {
    let src = render(s);
    assemble("prop", &src).unwrap_or_else(|e| panic!("generated source failed: {e}\n{src}"))
}

fn binary_bytes(p: &Program, target_len: usize) -> Vec<u8> {
    let t = program_trace(p, "prop", target_len).expect("generated program failed to execute");
    t.validate().expect("emitted trace violates continuity");
    let mut buf = Vec::new();
    write_binary(&mut buf, &t).expect("binary encode failed");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Assembling the same source twice yields the identical `Program`.
    #[test]
    fn assembly_is_deterministic(s in shape()) {
        let a = assemble_shape(&s);
        let b = assemble_shape(&s);
        prop_assert_eq!(a, b);
    }

    /// Two independent assemble+execute+encode runs are byte-identical,
    /// and the emitted stream is a valid trace of the requested length.
    #[test]
    fn execution_round_trips_byte_identically(s in shape(), len in 64usize..2048) {
        let first = binary_bytes(&assemble_shape(&s), len);
        let second = binary_bytes(&assemble_shape(&s), len);
        prop_assert_eq!(first, second);
    }

    /// Decoding what the executor encoded reproduces the records exactly.
    #[test]
    fn codec_preserves_executor_output(s in shape()) {
        let p = assemble_shape(&s);
        let t = program_trace(&p, "prop", 512).unwrap();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = fdip_trace::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(t, back);
    }
}
