//! Criterion microbenchmarks of the simulator's building blocks: BTB
//! lookups across organizations, cache accesses, direction predictors, and
//! the trace codec. These establish that paper-scale parameter sweeps are
//! computationally feasible (the experiment binaries are the actual
//! table/figure generators).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use fdip_bpred::{Bimodal, DirectionPredictor, Gshare, Hybrid};
use fdip_btb::{
    BasicBlockBtb, Btb, BtbConfig, ConventionalBtb, PartitionConfig, PartitionedBtb, TagScheme,
};
use fdip_mem::{Cache, CacheGeometry, FillFlags, ReplacementPolicy};
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::{read_binary, write_binary};
use fdip_types::{Addr, BranchClass};

fn bench_btbs(c: &mut Criterion) {
    let mut group = c.benchmark_group("btb_lookup_install");
    group.throughput(Throughput::Elements(1));
    let pcs: Vec<Addr> = (0..4096u64).map(|i| Addr::from_inst_index(i * 7)).collect();

    let mut conventional = ConventionalBtb::new(BtbConfig::new(256, 8, TagScheme::Full));
    group.bench_function("conventional", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let pc = pcs[i % pcs.len()];
            i += 1;
            conventional.install(pc, BranchClass::CondDirect, pc.add_insts(3));
            black_box(conventional.lookup(pc))
        });
    });

    let mut partitioned = PartitionedBtb::new(PartitionConfig::from_bb_entries(2048));
    group.bench_function("partitioned", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let pc = pcs[i % pcs.len()];
            i += 1;
            partitioned.install(pc, BranchClass::CondDirect, pc.add_insts(3));
            black_box(partitioned.lookup(pc))
        });
    });

    let mut ftb = BasicBlockBtb::new(BtbConfig::new(256, 8, TagScheme::Full));
    group.bench_function("basic_block", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let pc = pcs[i % pcs.len()];
            i += 1;
            ftb.install(pc, 6, BranchClass::CondDirect, pc.add_insts(9));
            black_box(ftb.lookup(pc))
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let mut cache = Cache::new(
        CacheGeometry::from_capacity(16 * 1024, 2, 64),
        ReplacementPolicy::Lru,
    );
    group.bench_function("access_fill_mix", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let addr = Addr::new((i * 192) % (1 << 20));
            i += 1;
            if cache.access(addr).is_none() {
                cache.fill(addr, FillFlags::default());
            }
            black_box(&cache);
        });
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("direction_predictors");
    group.throughput(Throughput::Elements(1));
    let predictors: Vec<(&str, Box<dyn DirectionPredictor>)> = vec![
        ("bimodal", Box::new(Bimodal::new(14))),
        ("gshare", Box::new(Gshare::new(14, 12))),
        ("hybrid", Box::new(Hybrid::new(14, 14, 12, 14))),
    ];
    for (name, mut p) in predictors {
        group.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                let pc = Addr::from_inst_index(i % 509);
                let taken = !i.is_multiple_of(3);
                i += 1;
                let predicted = p.predict(pc);
                p.spec_update(pc, predicted);
                p.commit(pc, taken);
                black_box(predicted)
            });
        });
    }
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    let trace = GeneratorConfig::profile(Profile::Client)
        .seed(1)
        .target_len(100_000)
        .generate();
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("generate_100k", |b| {
        b.iter(|| {
            black_box(
                GeneratorConfig::profile(Profile::Client)
                    .seed(1)
                    .target_len(100_000)
                    .generate(),
            )
        });
    });
    let mut encoded = Vec::new();
    write_binary(&mut encoded, &trace).unwrap();
    group.bench_function("binary_encode_100k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_binary(&mut buf, &trace).unwrap();
            black_box(buf)
        });
    });
    group.bench_function("binary_decode_100k", |b| {
        b.iter(|| black_box(read_binary(&encoded[..]).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btbs,
    bench_cache,
    bench_predictors,
    bench_trace
);
criterion_main!(benches);
