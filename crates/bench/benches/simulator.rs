//! Criterion benchmarks of end-to-end simulation throughput — one per
//! front-end configuration class — measuring simulated instructions per
//! second of wall-clock. These bound how long the paper-scale experiment
//! sweeps take.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use fdip::{BtbVariant, CpfMode, FrontendConfig, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};

const SIM_LEN: usize = 60_000;

fn bench_simulator(c: &mut Criterion) {
    let trace = GeneratorConfig::profile(Profile::Server)
        .seed(5)
        .target_len(SIM_LEN)
        .generate();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);

    let configs: Vec<(&str, FrontendConfig)> = vec![
        ("baseline", FrontendConfig::default()),
        (
            "fdip",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "fdip_cpf",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Both)),
        ),
        (
            "fdip_x",
            FrontendConfig::default()
                .with_btb(BtbVariant::partitioned(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "ftb_fdip",
            FrontendConfig::default()
                .with_btb(BtbVariant::basic_block(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "stream",
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::StreamBuffers(Default::default())),
        ),
        (
            "pif",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::Pif(Default::default())),
        ),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(Simulator::run_trace(&config, &trace)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
