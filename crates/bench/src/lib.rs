//! Shared plumbing for the experiment binaries: resolve an experiment in
//! the registry, run it on the process-wide harness at the scale requested
//! on the command line, print its tables and charts, and persist CSVs plus
//! the machine-readable JSON document under `results/`.
//!
//! Every binary accepts `--quick` / `--medium` / `--full` (default full).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use fdip_sim::experiments::{self, Experiment, ExperimentResult};
use fdip_sim::harness::Harness;
use fdip_sim::persist::write_atomic_str;
use fdip_sim::Scale;

/// Runs experiment `id` at the argv-selected scale, prints the result, and
/// persists it. Used by every `exp_*` binary.
///
/// # Panics
///
/// Panics if `id` is not in the registry.
pub fn run_and_print(id: &str) {
    let scale = Scale::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("[{id}] {e}");
        std::process::exit(2);
    });
    let exp = experiments::find(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    eprintln!(
        "[{id}] {} (trace_len={}, suites x{})",
        exp.title(),
        scale.trace_len,
        scale.workloads_per_suite
    );
    let start = std::time::Instant::now();
    let result = exp.run(Harness::global(), scale);
    print!("{}", result.to_text());
    eprintln!("[{id}] done in {:.1}s", start.elapsed().as_secs_f64());
    if let Err(e) = persist(exp, &result) {
        eprintln!("[{id}] warning: could not write results/: {e}");
    }
}

/// Writes each table as `results/<id>_<k>.csv`, the full text render as
/// `results/<id>.txt`, a markdown render as `results/<id>.md`, and the
/// versioned machine-readable document as `results/<id>.json`.
///
/// Every file goes through [`fdip_sim::persist::write_atomic`]'s
/// temp + fsync + rename path, so a crash (or `kill -9`) mid-persist
/// leaves each document whole-or-absent, never torn.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn persist(exp: &dyn Experiment, result: &ExperimentResult) -> std::io::Result<()> {
    let id = exp.id();
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let mut markdown = String::new();
    for (k, table) in result.tables.iter().enumerate() {
        write_atomic_str(&dir.join(format!("{id}_{k}.csv")), &table.to_csv())?;
        markdown.push_str(&table.to_markdown());
        markdown.push('\n');
    }
    write_atomic_str(&dir.join(format!("{id}.txt")), &result.to_text())?;
    write_atomic_str(&dir.join(format!("{id}.md")), &markdown)?;
    write_atomic_str(
        &dir.join(format!("{id}.json")),
        &result.to_json(id, exp.title()).to_string_pretty(),
    )?;
    Ok(())
}

/// `results/` next to the workspace root when run via cargo, else the
/// current directory.
pub fn results_dir() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default();
    if manifest.is_empty() {
        PathBuf::from("results")
    } else {
        PathBuf::from(manifest).join("../../results")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_writes_csv_text_and_json() {
        let exp = experiments::find("x2").unwrap();
        let result = exp.run(Harness::global(), Scale::quick());
        persist(exp, &result).unwrap();
        let dir = results_dir();
        assert!(dir.join("x2_0.csv").exists());
        assert!(dir.join("x2.txt").exists());
        let json = std::fs::read_to_string(dir.join("x2.json")).unwrap();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"id\": \"x2\""));
    }
}
