//! Shared plumbing for the experiment binaries: resolve an experiment by
//! id, run it at the scale requested on the command line, print its tables
//! and charts, and persist CSVs under `results/`.
//!
//! Every binary accepts `--quick` / `--medium` / `--full` (default full).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use fdip_sim::experiments::{self, ExperimentResult};
use fdip_sim::Scale;

/// Runs experiment `id` at the argv-selected scale, prints the result, and
/// writes CSVs. Used by every `exp_*` binary.
///
/// # Panics
///
/// Panics if `id` is not in the registry.
pub fn run_and_print(id: &str) {
    let scale = Scale::from_args(std::env::args().skip(1));
    let (_, title, runner) = experiments::all()
        .into_iter()
        .find(|(i, _, _)| *i == id)
        .unwrap_or_else(|| panic!("unknown experiment {id}"));
    eprintln!("[{id}] {title} (trace_len={}, suites x{})", scale.trace_len, scale.workloads_per_suite);
    let start = std::time::Instant::now();
    let result = runner(scale);
    print!("{}", result.to_text());
    eprintln!("[{id}] done in {:.1}s", start.elapsed().as_secs_f64());
    if let Err(e) = persist(id, &result) {
        eprintln!("[{id}] warning: could not write results/: {e}");
    }
}

/// Writes each table as `results/<id>_<k>.csv` and the full text render as
/// `results/<id>.txt`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn persist(id: &str, result: &ExperimentResult) -> std::io::Result<()> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let mut markdown = String::new();
    for (k, table) in result.tables.iter().enumerate() {
        fs::write(dir.join(format!("{id}_{k}.csv")), table.to_csv())?;
        markdown.push_str(&table.to_markdown());
        markdown.push('\n');
    }
    fs::write(dir.join(format!("{id}.txt")), result.to_text())?;
    fs::write(dir.join(format!("{id}.md")), markdown)?;
    Ok(())
}

/// `results/` next to the workspace root when run via cargo, else the
/// current directory.
pub fn results_dir() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default();
    if manifest.is_empty() {
        PathBuf::from("results")
    } else {
        PathBuf::from(manifest).join("../../results")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_sim::report::Table;

    #[test]
    fn persist_writes_csv_and_text() {
        let mut table = Table::new("t", &["a"]);
        table.row(["1".to_string()]);
        let result = ExperimentResult::tables(vec![table]);
        persist("selftest", &result).unwrap();
        let dir = results_dir();
        assert!(dir.join("selftest_0.csv").exists());
        assert!(dir.join("selftest.txt").exists());
        let _ = std::fs::remove_file(dir.join("selftest_0.csv"));
        let _ = std::fs::remove_file(dir.join("selftest.txt"));
    }
}
