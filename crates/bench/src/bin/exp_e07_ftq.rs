//! Regenerates experiment `e07` (see DESIGN.md for the experiment
//! index). Accepts `--quick` / `--medium` / `--full`.

fn main() {
    fdip_bench::run_and_print("e07");
}
