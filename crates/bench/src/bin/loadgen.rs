//! `fdip-loadgen`: drives an in-process `fdip-serve` server over real TCP
//! and reports throughput and latency percentiles for four phases:
//!
//! 1. **cold** — N distinct `/v1/run` requests (fresh seeds), every one a
//!    harness cache miss that generates and simulates a trace;
//! 2. **warm** — concurrent keep-alive clients replaying those N seeds,
//!    served from the shared cell cache (the event loop multiplexes all
//!    clients on one thread; compute workers only do cache lookups);
//! 3. **coalesce** — a burst of byte-identical cold requests: one
//!    simulation runs, every other client rides along as a follower;
//! 4. **saturation** — a burst of distinct pre-warmed requests against a
//!    1-worker, depth-2 queue whose seat is held by a deliberately slow
//!    cell: the queue absorbs 2, the rest are shed `429`-free with `503`,
//!    and the shed responses must come back fast (the old blocking-shed
//!    accept loop serialized them).
//!
//! The report is printed and persisted as `results/BENCH_serve.json`.
//! Flags: `--quick` shrinks the workload; `--check` exits nonzero unless
//! warm throughput clears the event-loop floor (10x the 925 rps
//! thread-per-connection baseline), warm is ≥2x cold, the coalesce burst
//! shared one simulation, saturation shed with a bounded p99, and the
//! server's `/metrics` counters reconcile with what this client observed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use fdip_serve::{ServeConfig, Server, ShutdownHandle};
use fdip_types::Json;

/// The committed warm throughput of the blocking thread-per-connection
/// server (PR 2, results/BENCH_serve.json at the time) and the floor the
/// event loop must clear.
const BASELINE_WARM_RPS: f64 = 925.0;
const WARM_RPS_FLOOR: f64 = BASELINE_WARM_RPS * 10.0;
/// Shed responses must come back under this even while the compute seat
/// is held — the regression gate for the blocking-shed bug.
const SHED_P99_FLOOR_MS: f64 = 1_000.0;

struct RunningServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_server(config: ServeConfig) -> RunningServer {
    let server = Server::bind(config).expect("bind loadgen server");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    RunningServer {
        addr,
        handle,
        thread,
    }
}

fn stop_server(server: RunningServer) {
    server.handle.shutdown();
    server
        .thread
        .join()
        .expect("server thread panicked")
        .expect("server run() errored");
}

/// One request on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_request(addr, method, path, body).expect("request failed")
}

/// Like [`request`], but surfaces connection errors instead of panicking —
/// under deliberate overload a shed connection may be reset before the
/// client manages to read the 503.
fn try_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    read_response(&mut BufReader::new(stream))
}

fn read_response<R: Read>(reader: &mut BufReader<R>) -> std::io::Result<(u16, String)> {
    use std::io::{Error, ErrorKind};
    let bad = |what: &str| Error::new(ErrorKind::InvalidData, what.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn run_body(seed: u64, trace_len: usize) -> String {
    format!(
        r#"{{"workload": {{"profile": "microloop", "seed": {seed}}}, "trace_len": {trace_len}}}"#
    )
}

/// Like [`run_body`] but with `pad` spaces of intra-JSON whitespace: the
/// same simulation identity (cache hit) with distinct body bytes, so
/// concurrent clients exercise the cache instead of coalescing with each
/// other.
fn run_body_padded(seed: u64, trace_len: usize, pad: usize) -> String {
    format!(
        r#"{{"workload": {{"profile": "microloop", "seed": {seed}}}, "trace_len": {trace_len}{:pad$}}}"#,
        ""
    )
}

struct PhaseReport {
    requests: usize,
    seconds: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl PhaseReport {
    fn from_latencies(mut latencies: Vec<Duration>, seconds: f64) -> PhaseReport {
        latencies.sort();
        PhaseReport {
            requests: latencies.len(),
            seconds,
            rps: latencies.len() as f64 / seconds.max(1e-9),
            p50_ms: percentile_ms(&latencies, 0.50),
            p99_ms: percentile_ms(&latencies, 0.99),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::uint(self.requests as u64)),
            ("seconds", Json::num(self.seconds)),
            ("rps", Json::num(self.rps)),
            ("p50_ms", Json::num(self.p50_ms)),
            ("p99_ms", Json::num(self.p99_ms)),
        ])
    }
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Issues `/v1/run` for seeds `0..n` sequentially, asserting 200s.
fn cold_phase(addr: SocketAddr, n: usize, trace_len: usize) -> PhaseReport {
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(n);
    for seed in 0..n as u64 {
        let body = run_body(seed, trace_len);
        let req_start = Instant::now();
        let (status, resp) = request(addr, "POST", "/v1/run", &body);
        assert_eq!(status, 200, "run seed {seed}: {resp}");
        latencies.push(req_start.elapsed());
    }
    PhaseReport::from_latencies(latencies, started.elapsed().as_secs_f64())
}

/// `clients` keep-alive connections in parallel, each issuing
/// `per_client` request/response round trips over the (cache-warm)
/// seeds `0..n`.
fn warm_phase(
    addr: SocketAddr,
    clients: usize,
    per_client: usize,
    n: usize,
    trace_len: usize,
) -> PhaseReport {
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("warm connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let mut w = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let body = run_body_padded(((c + i) % n) as u64, trace_len, c);
                    let req = format!(
                        "POST /v1/run HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let req_start = Instant::now();
                    w.write_all(req.as_bytes()).expect("warm write");
                    let (status, resp) = read_response(&mut reader).expect("warm read");
                    assert_eq!(status, 200, "warm client {c} request {i}: {resp}");
                    latencies.push(req_start.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("warm client panicked"));
    }
    PhaseReport::from_latencies(all, started.elapsed().as_secs_f64())
}

/// Parses one counter value out of a Prometheus text document.
fn metric_value(text: &str, line_prefix: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(line_prefix))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {line_prefix:?} missing from scrape"))
}

/// Installs a deterministic slow-cell fault for `seed` so a phase can
/// hold a compute seat for an exact duration regardless of host speed.
fn hold_seat_with_fault(seed: u64, millis: u64) {
    let plan = fdip_sim::fault::FaultPlan::parse(&format!("slow@microloop~s{seed}/run:{millis}"))
        .expect("fault plan");
    fdip_sim::harness::Harness::global().set_fault_plan(Some(plan));
}

fn clear_fault() {
    fdip_sim::harness::Harness::global().set_fault_plan(None);
}

/// Coalescing: `burst` byte-identical cold requests in flight at once.
/// The leader's cell is slowed so every follower arrives while it runs;
/// all must answer 200 with identical bodies. Returns the number the
/// server reports as coalesced.
fn coalesce_phase(addr: SocketAddr, burst: usize, seed: u64, trace_len: usize) -> u64 {
    let (status, scrape) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let before = metric_value(&scrape, "fdip_serve_coalesced_total ");
    hold_seat_with_fault(seed, 800);
    let clients: Vec<_> = (0..burst)
        .map(|_| {
            let body = run_body(seed, trace_len);
            std::thread::spawn(move || request(addr, "POST", "/v1/run", &body))
        })
        .collect();
    let mut bodies = Vec::new();
    for client in clients {
        let (status, body) = client.join().expect("coalesce client panicked");
        assert_eq!(status, 200, "coalesce: {body}");
        bodies.push(body);
    }
    clear_fault();
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "coalesced responses diverged"
    );
    let (status, scrape) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    metric_value(&scrape, "fdip_serve_coalesced_total ") - before
}

/// Saturation: a deterministically slow cell holds the single compute
/// seat, then `burst` *distinct* pre-warmed requests arrive at once. The
/// depth-2 queue absorbs 2; the rest are shed 503 — and those sheds must
/// come back immediately, not serialized behind the seat.
///
/// Returns (completed_200, shed, shed latencies).
fn saturation_phase(
    addr: SocketAddr,
    burst: usize,
    trace_len: usize,
) -> (usize, usize, Vec<Duration>) {
    hold_seat_with_fault(9_000, 2_000);
    let holder = {
        let body = run_body(9_000, trace_len);
        std::thread::spawn(move || request(addr, "POST", "/v1/run", &body))
    };
    std::thread::sleep(Duration::from_millis(300)); // the seat is now held

    let clients: Vec<_> = (0..burst as u64)
        .map(|seed| {
            let body = run_body(seed, trace_len); // warm: distinct, all cached
            std::thread::spawn(move || {
                let started = Instant::now();
                (
                    try_request(addr, "POST", "/v1/run", &body),
                    started.elapsed(),
                )
            })
        })
        .collect();

    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut shed_latencies = Vec::new();
    for client in clients {
        let (outcome, latency) = client.join().expect("client thread panicked");
        match outcome {
            Ok((200, _)) => completed += 1,
            Ok((503, _)) | Err(_) => {
                shed += 1;
                shed_latencies.push(latency);
            }
            Ok((other, body)) => panic!("unexpected status {other} during saturation: {body}"),
        }
    }
    let (status, body) = holder.join().expect("holder thread panicked");
    assert_eq!(status, 200, "seat holder: {body}");
    clear_fault();
    shed_latencies.sort();
    (completed, shed, shed_latencies)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check = argv.iter().any(|a| a == "--check");
    if let Some(bad) = argv.iter().find(|a| *a != "--quick" && *a != "--check") {
        eprintln!("usage: fdip-loadgen [--quick] [--check] (got {bad:?})");
        std::process::exit(2);
    }

    let (n, trace_len, burst, warm_clients, warm_per_client) = if quick {
        (8, 20_000, 12, 8, 250)
    } else {
        (12, 60_000, 16, 8, 1_500)
    };

    // ---- cold / warm / coalesce phases on one server --------------------
    let server = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        timeout_ms: 120_000,
        ..ServeConfig::default()
    });
    eprintln!(
        "[loadgen] server on {} ({} cold requests x {} instrs)",
        server.addr, n, trace_len
    );

    let cold = cold_phase(server.addr, n, trace_len);
    eprintln!(
        "[loadgen] cold: {:.2} rps, p50 {:.1}ms, p99 {:.1}ms",
        cold.rps, cold.p50_ms, cold.p99_ms
    );
    let warm = warm_phase(server.addr, warm_clients, warm_per_client, n, trace_len);
    eprintln!(
        "[loadgen] warm: {:.2} rps over {} keep-alive clients, p50 {:.2}ms, p99 {:.2}ms",
        warm.rps, warm_clients, warm.p50_ms, warm.p99_ms
    );
    let warm_over_cold = warm.rps / cold.rps.max(1e-9);
    eprintln!(
        "[loadgen] warm/cold {:.1}x; warm vs {:.0} rps blocking baseline: {:.1}x",
        warm_over_cold,
        BASELINE_WARM_RPS,
        warm.rps / BASELINE_WARM_RPS
    );

    let coalesce_burst = burst;
    let coalesced = coalesce_phase(server.addr, coalesce_burst, 9_100, trace_len);
    eprintln!(
        "[loadgen] coalesce: {coalesce_burst} identical requests, {coalesced} rode along on 1 simulation"
    );

    // ---- reconcile /metrics against client-observed responses ----------
    let (status, scrape) = request(server.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let server_200 = metric_value(&scrape, "fdip_serve_requests_total{status=\"200\"} ");
    // Every run request plus the coalesce phase's two scrapes, before
    // this one.
    let client_200 = (n + warm_clients * warm_per_client + coalesce_burst + 2) as u64;
    let reconciled = server_200 == client_200;
    eprintln!(
        "[loadgen] /metrics 200s: server {server_200}, client {client_200} ({})",
        if reconciled { "reconciled" } else { "MISMATCH" }
    );
    // The fleet-recovery families must always render, and without a fleet
    // configured every one of them must be zero (hedging provably inert).
    let fleet_counters_inert = [
        "fdip_serve_node_readmissions_total ",
        "fdip_serve_cells_hedged_total ",
        "fdip_serve_hedge_wins_total ",
    ]
    .iter()
    .all(|family| scrape.contains(family) && metric_value(&scrape, family) == 0)
        && scrape.contains("fdip_serve_fleet_node_health");
    eprintln!(
        "[loadgen] fleet recovery counters: {}",
        if fleet_counters_inert {
            "present and zero (no fleet configured)"
        } else {
            "MISSING OR NONZERO"
        }
    );
    stop_server(server);

    // ---- saturation on a 1-worker, depth-2 server -----------------------
    let tight = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 2,
        timeout_ms: 60_000,
        ..ServeConfig::default()
    });
    // Pre-warm every burst seed (the process-global cell cache is shared,
    // so seeds 0..n are already hot from the cold phase).
    for seed in 0..burst as u64 {
        let (status, _) = request(tight.addr, "POST", "/v1/run", &run_body(seed, trace_len));
        assert_eq!(status, 200);
    }
    let (completed, shed, shed_latencies) = saturation_phase(tight.addr, burst, trace_len);
    let shed_p50 = percentile_ms(&shed_latencies, 0.50);
    let shed_p99 = percentile_ms(&shed_latencies, 0.99);
    eprintln!(
        "[loadgen] saturation: offered {burst}, completed {completed}, shed {shed} \
         (queue depth 2); shed p50 {shed_p50:.1}ms, p99 {shed_p99:.1}ms"
    );
    let (status, scrape) = request(tight.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let server_shed = metric_value(&scrape, "fdip_serve_shed_total ");
    let shed_reconciled = server_shed == shed as u64;
    stop_server(tight);

    // ---- persist --------------------------------------------------------
    let doc = Json::obj([
        ("schema_version", Json::uint(2)),
        ("id", Json::str("BENCH_serve")),
        ("quick", Json::Bool(quick)),
        ("trace_len", Json::uint(trace_len as u64)),
        ("cold", cold.to_json()),
        ("warm", warm.to_json()),
        ("warm_clients", Json::uint(warm_clients as u64)),
        ("warm_over_cold", Json::num(warm_over_cold)),
        ("baseline_warm_rps", Json::num(BASELINE_WARM_RPS)),
        (
            "coalesce",
            Json::obj([
                ("offered", Json::uint(coalesce_burst as u64)),
                ("coalesced", Json::uint(coalesced)),
            ]),
        ),
        (
            "saturation",
            Json::obj([
                ("offered", Json::uint(burst as u64)),
                ("completed", Json::uint(completed as u64)),
                ("shed", Json::uint(shed as u64)),
                ("shed_p50_ms", Json::num(shed_p50)),
                ("shed_p99_ms", Json::num(shed_p99)),
                ("queue_depth", Json::uint(2)),
            ]),
        ),
        (
            "metrics_reconciliation",
            Json::obj([
                ("server_200", Json::uint(server_200)),
                ("client_200", Json::uint(client_200)),
                ("server_shed", Json::uint(server_shed)),
                ("client_shed", Json::uint(shed as u64)),
                ("reconciled", Json::Bool(reconciled && shed_reconciled)),
            ]),
        ),
    ]);
    let dir = fdip_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_serve.json");
    fdip_sim::persist::write_atomic_str(&path, &doc.to_string_pretty())
        .expect("write BENCH_serve.json");
    eprintln!("[loadgen] wrote {}", path.display());

    if check {
        let mut failures = Vec::new();
        if warm.rps < WARM_RPS_FLOOR {
            failures.push(format!(
                "warm throughput {:.0} rps under the event-loop floor of {WARM_RPS_FLOOR:.0} \
                 (10x the {BASELINE_WARM_RPS:.0} rps blocking baseline)",
                warm.rps
            ));
        }
        if warm_over_cold < 2.0 {
            failures.push(format!(
                "warm throughput only {warm_over_cold:.2}x cold (need >= 2x)"
            ));
        }
        if coalesced == 0 {
            failures.push("no requests coalesced during the identical burst".to_string());
        }
        if shed == 0 {
            failures.push("saturation shed no connections".to_string());
        }
        if shed_p99 > SHED_P99_FLOOR_MS {
            failures.push(format!(
                "shed p99 {shed_p99:.0}ms exceeds {SHED_P99_FLOOR_MS:.0}ms — \
                 sheds are waiting on the compute seat"
            ));
        }
        if !(reconciled && shed_reconciled) {
            failures.push("metrics do not reconcile with client observations".to_string());
        }
        if !fleet_counters_inert {
            failures.push(
                "fleet recovery counters missing or nonzero on a fleetless server".to_string(),
            );
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("[loadgen] CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("[loadgen] all checks passed");
    }
}
