//! `fdip-loadgen`: drives an in-process `fdip-serve` server over real TCP
//! and reports throughput and latency percentiles for three phases:
//!
//! 1. **cold** — N distinct `/v1/run` requests (fresh seeds), every one a
//!    harness cache miss that generates and simulates a trace;
//! 2. **warm** — the same N requests again, served from the shared cell
//!    cache (the warm/cold throughput ratio is the cache's value);
//! 3. **saturation** — a burst of connections against a 1-worker,
//!    depth-2 queue: the overflow is shed with `503`, demonstrating
//!    bounded memory under overload.
//!
//! The report is printed and persisted as `results/BENCH_serve.json`.
//! Flags: `--quick` shrinks the workload; `--check` exits nonzero unless
//! warm throughput is ≥2x cold, the saturation phase shed connections,
//! and the server's `/metrics` counters reconcile with what this client
//! observed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use fdip_serve::{ServeConfig, Server, ShutdownHandle};
use fdip_types::Json;

struct RunningServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_server(config: ServeConfig) -> RunningServer {
    let server = Server::bind(config).expect("bind loadgen server");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    RunningServer {
        addr,
        handle,
        thread,
    }
}

fn stop_server(server: RunningServer) {
    server.handle.shutdown();
    server
        .thread
        .join()
        .expect("server thread panicked")
        .expect("server run() errored");
}

/// One request on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_request(addr, method, path, body).expect("request failed")
}

/// Like [`request`], but surfaces connection errors instead of panicking —
/// under deliberate overload a shed connection may be reset before the
/// client manages to read the 503.
fn try_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    read_response(&mut BufReader::new(stream))
}

fn read_response<R: Read>(reader: &mut BufReader<R>) -> std::io::Result<(u16, String)> {
    use std::io::{Error, ErrorKind};
    let bad = |what: &str| Error::new(ErrorKind::InvalidData, what.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn run_body(seed: u64, trace_len: usize) -> String {
    format!(
        r#"{{"workload": {{"profile": "microloop", "seed": {seed}}}, "trace_len": {trace_len}}}"#
    )
}

struct PhaseReport {
    requests: usize,
    seconds: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl PhaseReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::uint(self.requests as u64)),
            ("seconds", Json::num(self.seconds)),
            ("rps", Json::num(self.rps)),
            ("p50_ms", Json::num(self.p50_ms)),
            ("p99_ms", Json::num(self.p99_ms)),
        ])
    }
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Issues `/v1/run` for seeds `0..n` sequentially, asserting 200s.
fn run_phase(addr: SocketAddr, n: usize, trace_len: usize) -> PhaseReport {
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(n);
    for seed in 0..n as u64 {
        let body = run_body(seed, trace_len);
        let req_start = Instant::now();
        let (status, resp) = request(addr, "POST", "/v1/run", &body);
        assert_eq!(status, 200, "run seed {seed}: {resp}");
        latencies.push(req_start.elapsed());
    }
    let seconds = started.elapsed().as_secs_f64();
    latencies.sort();
    PhaseReport {
        requests: n,
        seconds,
        rps: n as f64 / seconds.max(1e-9),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
    }
}

/// Parses one counter value out of a Prometheus text document.
fn metric_value(text: &str, line_prefix: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(line_prefix))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {line_prefix:?} missing from scrape"))
}

/// Saturation: hold the single worker with a parked keep-alive
/// connection, then offer `burst` connections to a depth-2 queue. The
/// queue absorbs 2, the rest are shed 503 by the accept loop; releasing
/// the worker drains the queued ones. Returns (completed_200, shed).
///
/// A shed connection counts whether the client read the 503 or only saw
/// the reset that follows it (the accept loop closes as soon as the
/// response is written, so a racing client write can clobber it).
fn saturation_phase(addr: SocketAddr, burst: usize, trace_len: usize) -> (usize, usize) {
    // Park the worker on an idle keep-alive connection.
    let held = TcpStream::connect(addr).expect("connect held");
    held.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut w = held.try_clone().unwrap();
    w.write_all(b"GET /healthz HTTP/1.1\r\nhost: loadgen\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let mut held_reader = BufReader::new(held);
    let (status, _) = read_response(&mut held_reader).expect("held response");
    assert_eq!(status, 200);

    let clients: Vec<_> = (0..burst)
        .map(|_| {
            let body = run_body(0, trace_len); // warm: seed 0 is cached
            std::thread::spawn(move || try_request(addr, "POST", "/v1/run", &body))
        })
        .collect();

    // Let every connection reach the accept loop, then free the worker.
    std::thread::sleep(Duration::from_millis(500));
    drop(held_reader);
    drop(w);

    let mut completed = 0usize;
    let mut shed = 0usize;
    for client in clients {
        match client.join().expect("client thread panicked") {
            Ok((200, _)) => completed += 1,
            Ok((503, _)) | Err(_) => shed += 1,
            Ok((other, body)) => panic!("unexpected status {other} during saturation: {body}"),
        }
    }
    (completed, shed)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check = argv.iter().any(|a| a == "--check");
    if let Some(bad) = argv.iter().find(|a| *a != "--quick" && *a != "--check") {
        eprintln!("usage: fdip-loadgen [--quick] [--check] (got {bad:?})");
        std::process::exit(2);
    }

    let (n, trace_len, burst) = if quick {
        (8, 20_000, 12)
    } else {
        (12, 60_000, 16)
    };

    // ---- cold / warm phases on a plain server ---------------------------
    let server = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        timeout_ms: 120_000,
        ..ServeConfig::default()
    });
    eprintln!(
        "[loadgen] server on {} ({} requests x {} instrs)",
        server.addr, n, trace_len
    );

    let cold = run_phase(server.addr, n, trace_len);
    eprintln!(
        "[loadgen] cold: {:.2} rps, p50 {:.1}ms, p99 {:.1}ms",
        cold.rps, cold.p50_ms, cold.p99_ms
    );
    let warm = run_phase(server.addr, n, trace_len);
    eprintln!(
        "[loadgen] warm: {:.2} rps, p50 {:.1}ms, p99 {:.1}ms",
        warm.rps, warm.p50_ms, warm.p99_ms
    );
    let warm_over_cold = warm.rps / cold.rps.max(1e-9);
    eprintln!("[loadgen] warm/cold throughput: {warm_over_cold:.1}x");

    // ---- reconcile /metrics against client-observed responses ----------
    let (status, scrape) = request(server.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let server_200 = metric_value(&scrape, "fdip_serve_requests_total{status=\"200\"} ");
    let client_200 = (2 * n) as u64; // every run request, before the scrape itself
    let reconciled = server_200 == client_200;
    eprintln!(
        "[loadgen] /metrics 200s: server {server_200}, client {client_200} ({})",
        if reconciled { "reconciled" } else { "MISMATCH" }
    );
    stop_server(server);

    // ---- saturation on a 1-worker, depth-2 server -----------------------
    let tight = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 2,
        timeout_ms: 60_000,
        ..ServeConfig::default()
    });
    // Pre-warm the cell this phase requests so queued work drains fast.
    let (status, _) = request(tight.addr, "POST", "/v1/run", &run_body(0, trace_len));
    assert_eq!(status, 200);
    let (completed, shed) = saturation_phase(tight.addr, burst, trace_len);
    eprintln!(
        "[loadgen] saturation: offered {burst}, completed {completed}, shed {shed} (queue depth 2)"
    );
    let (status, scrape) = request(tight.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let server_shed = metric_value(&scrape, "fdip_serve_shed_total ");
    let shed_reconciled = server_shed == shed as u64;
    stop_server(tight);

    // ---- persist --------------------------------------------------------
    let doc = Json::obj([
        ("schema_version", Json::uint(1)),
        ("id", Json::str("BENCH_serve")),
        ("quick", Json::Bool(quick)),
        ("trace_len", Json::uint(trace_len as u64)),
        ("cold", cold.to_json()),
        ("warm", warm.to_json()),
        ("warm_over_cold", Json::num(warm_over_cold)),
        (
            "saturation",
            Json::obj([
                ("offered", Json::uint(burst as u64)),
                ("completed", Json::uint(completed as u64)),
                ("shed", Json::uint(shed as u64)),
                ("queue_depth", Json::uint(2)),
            ]),
        ),
        (
            "metrics_reconciliation",
            Json::obj([
                ("server_200", Json::uint(server_200)),
                ("client_200", Json::uint(client_200)),
                ("server_shed", Json::uint(server_shed)),
                ("client_shed", Json::uint(shed as u64)),
                ("reconciled", Json::Bool(reconciled && shed_reconciled)),
            ]),
        ),
    ]);
    let dir = fdip_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_serve.json");
    fdip_sim::persist::write_atomic_str(&path, &doc.to_string_pretty())
        .expect("write BENCH_serve.json");
    eprintln!("[loadgen] wrote {}", path.display());

    if check {
        let mut failures = Vec::new();
        if warm_over_cold < 2.0 {
            failures.push(format!(
                "warm throughput only {warm_over_cold:.2}x cold (need >= 2x)"
            ));
        }
        if shed == 0 {
            failures.push("saturation shed no connections".to_string());
        }
        if !(reconciled && shed_reconciled) {
            failures.push("metrics do not reconcile with client observations".to_string());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("[loadgen] CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("[loadgen] all checks passed");
    }
}
