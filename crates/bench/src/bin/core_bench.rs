//! `core_bench`: core-simulator throughput tracking — simulated
//! instructions per wall-clock second for each prefetcher configuration
//! class, persisted as `results/BENCH_core.json`. This is the core-sim
//! analogue of `BENCH_serve.json`: the file is committed, so the perf
//! trajectory of `Simulator::step()` is visible in history and CI can
//! catch regressions.
//!
//! Methodology is the criterion shim's ([`criterion::measure`]): each
//! configuration is auto-calibrated, then the median of `SAMPLES` samples
//! of `Simulator::run_trace` over a Server-profile trace is reported.
//!
//! Flags: `--quick` / `--medium` / `--full` select the trace length
//! (default full; unknown flags are an error). `--check` validates the
//! committed `BENCH_core.json` against the fresh measurement *before*
//! rewriting it: the run fails if the committed document does not match
//! the schema or if any configuration at this scale regressed more than
//! [`MAX_REGRESSION`] in instrs/sec.

use std::path::Path;

use criterion::{black_box, measure};
use fdip::{run_batch, BtbVariant, CpfMode, FrontendConfig, PrefetcherKind, Simulator};
use fdip_sim::Scale;
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_types::Json;

/// Maximum tolerated fractional drop in instrs/sec vs the committed
/// baseline before `--check` fails (0.30 = 30%).
const MAX_REGRESSION: f64 = 0.30;

/// Measured seed-state (pre-optimization) throughput of the `fdip`
/// configuration at full scale on the reference machine, recorded before
/// the allocation-free / event-skipping rewrite landed. Kept so the
/// headline speedup stays auditable; reported (not gated) because wall
/// clock is machine-dependent.
const PRE_PR_FULL_FDIP_INSTRS_PER_SEC: f64 = 6_385_492.0;

/// Minimum speedup of the lockstep batched sweep over the same N configs
/// run solo before `--check` fails. Gated at full scale only (short
/// traces under-amortize the walk capture); quick/medium record the
/// multiple without enforcing it.
///
/// The floor reflects the measured structural ceiling of walk sharing on
/// this sweep, not an aspiration: batching eliminates repeated BPU walks,
/// and the BPU is ~25-30% of a solo run here (the non-BPU per-cycle work —
/// fetch, cache, MSHR, prefetch engines — is per-config and irreducible by
/// sharing), while 2 of the 7 sweep configs use distinct BTB variants and
/// thus distinct walk keys, capping the saving at 4 of 7 walks. Measured
/// multiple on the reference machine: ~1.2x; the floor sits below it with
/// noise margin so `--check` catches regressions in the batching machinery
/// (e.g. a replay path that silently falls back to live prediction).
const MIN_SWEEP_MULTIPLE: f64 = 1.1;

/// The configuration classes tracked over time. Mirrors the criterion
/// `simulator` bench so the two views stay comparable.
fn configs() -> Vec<(&'static str, FrontendConfig)> {
    vec![
        ("baseline", FrontendConfig::default()),
        (
            "fdip",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "fdip_cpf",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Both)),
        ),
        (
            "fdip_x",
            FrontendConfig::default()
                .with_btb(BtbVariant::partitioned(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "ftb_fdip",
            FrontendConfig::default()
                .with_btb(BtbVariant::basic_block(2048))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "stream",
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::StreamBuffers(Default::default())),
        ),
        (
            "pif",
            FrontendConfig::default().with_prefetcher(PrefetcherKind::Pif(Default::default())),
        ),
    ]
}

struct ConfigResult {
    name: &'static str,
    median_ns_per_run: f64,
    instrs_per_sec: f64,
    /// Simulated cycles per wall-clock second — separates "the config
    /// needs more cycles" from "each cycle costs more" when a rate moves.
    cycles_per_sec: f64,
}

fn scale_label(argv: &[String]) -> &'static str {
    argv.iter()
        .find_map(|a| match a.as_str() {
            "--quick" => Some("quick"),
            "--medium" => Some("medium"),
            "--full" => Some("full"),
            _ => None,
        })
        .unwrap_or("full")
}

/// Extracts `scales.<label>.configs` as (name → instrs_per_sec), erroring
/// on any schema violation.
fn committed_rates(doc: &Json, label: &str) -> Result<Vec<(String, f64)>, String> {
    let schema = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if schema != 1 {
        return Err(format!("unsupported schema_version {schema}"));
    }
    if doc.get("id").and_then(Json::as_str) != Some("BENCH_core") {
        return Err("id is not \"BENCH_core\"".to_string());
    }
    let scales = doc.get("scales").ok_or("missing scales object")?;
    let Some(entry) = scales.get(label) else {
        return Ok(Vec::new()); // no baseline for this scale yet
    };
    let configs = entry
        .get("configs")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("scales.{label}.configs is not an array"))?;
    let mut rates = Vec::new();
    for c in configs {
        let name = c
            .get("name")
            .and_then(Json::as_str)
            .ok_or("config entry missing name")?;
        let rate = c
            .get("instrs_per_sec")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("config {name:?} missing instrs_per_sec"))?;
        rates.push((name.to_string(), rate));
    }
    Ok(rates)
}

/// The lockstep-batch measurement over the whole config sweep.
struct SweepResult {
    configs: usize,
    /// Sum of the per-config solo medians — the sequential sweep cost.
    solo_ns: f64,
    /// Median wall-clock of one `run_batch` over the same configs.
    batch_ns: f64,
}

impl SweepResult {
    /// Solo-over-batch speedup (the "batching multiple").
    fn multiple(&self) -> f64 {
        if self.batch_ns > 0.0 {
            self.solo_ns / self.batch_ns
        } else {
            0.0
        }
    }
}

fn scale_entry(
    trace_len: usize,
    samples: usize,
    results: &[ConfigResult],
    sweep: &SweepResult,
) -> Json {
    Json::obj([
        ("trace_len", Json::uint(trace_len as u64)),
        ("samples", Json::uint(samples as u64)),
        (
            "configs",
            Json::arr(results.iter().map(|r| {
                Json::obj([
                    ("name", Json::str(r.name)),
                    ("median_ns_per_run", Json::num(r.median_ns_per_run)),
                    ("instrs_per_sec", Json::num(r.instrs_per_sec)),
                    ("cycles_per_sec", Json::num(r.cycles_per_sec)),
                ])
            })),
        ),
        (
            "sweep",
            Json::obj([
                ("configs", Json::uint(sweep.configs as u64)),
                ("solo_ns", Json::num(sweep.solo_ns)),
                ("batch_ns", Json::num(sweep.batch_ns)),
                ("batch_multiple", Json::num(sweep.multiple())),
            ]),
        ),
    ])
}

/// Merges this run's scale entry into the existing document (other scales'
/// entries are preserved), in fixed label order so reruns are diff-stable.
fn merged_doc(old: Option<&Json>, label: &str, entry: Json) -> Json {
    let mut scales: Vec<(&'static str, Json)> = Vec::new();
    for known in ["quick", "medium", "full"] {
        if known == label {
            scales.push((known, entry.clone()));
        } else if let Some(kept) = old.and_then(|d| d.get("scales")).and_then(|s| s.get(known)) {
            scales.push((known, kept.clone()));
        }
    }
    Json::obj([
        ("schema_version", Json::uint(1)),
        ("id", Json::str("BENCH_core")),
        (
            "pre_pr_baseline",
            Json::obj([
                ("scale", Json::str("full")),
                ("config", Json::str("fdip")),
                ("instrs_per_sec", Json::num(PRE_PR_FULL_FDIP_INSTRS_PER_SEC)),
            ]),
        ),
        ("scales", Json::obj(scales)),
    ])
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let check = argv.iter().any(|a| a == "--check");
    let scale_args: Vec<String> = argv.iter().filter(|a| *a != "--check").cloned().collect();
    let scale = Scale::from_args(scale_args).unwrap_or_else(|e| {
        eprintln!("usage: core_bench [--quick|--medium|--full] [--check] ({e})");
        std::process::exit(2);
    });
    let label = scale_label(&argv);
    let samples = if label == "full" { 3 } else { 5 };

    let trace = GeneratorConfig::profile(Profile::Server)
        .seed(5)
        .target_len(scale.trace_len)
        .generate();
    eprintln!(
        "[core_bench] scale {label}: {} instrs/run, {samples} samples per config",
        trace.len()
    );

    let mut results = Vec::new();
    for (name, config) in configs() {
        let cycles = Simulator::run_trace(&config, &trace).cycles;
        let m = measure(samples, |b| {
            b.iter(|| black_box(Simulator::run_trace(&config, &trace)))
        });
        let rate = m.rate(trace.len() as u64);
        let cycle_rate = m.rate(cycles);
        eprintln!(
            "[core_bench] {name:<10} {:>12.0} ns/run  {:>10.0} instrs/sec  {:>10.0} cycles/sec",
            m.median_nanos, rate, cycle_rate
        );
        results.push(ConfigResult {
            name,
            median_ns_per_run: m.median_nanos,
            instrs_per_sec: rate,
            cycles_per_sec: cycle_rate,
        });
    }

    // The lockstep batched sweep: all configs over the shared trace walk,
    // against the sum of the solo medians measured above.
    let sweep_configs: Vec<FrontendConfig> = configs().into_iter().map(|(_, c)| c).collect();
    let batch_m = measure(samples, |b| {
        b.iter(|| black_box(run_batch(&sweep_configs, &trace)))
    });
    let sweep = SweepResult {
        configs: sweep_configs.len(),
        solo_ns: results.iter().map(|r| r.median_ns_per_run).sum(),
        batch_ns: batch_m.median_nanos,
    };
    eprintln!(
        "[core_bench] sweep      {:>12.0} ns batched vs {:>12.0} ns solo ({} configs, {:.2}x)",
        sweep.batch_ns,
        sweep.solo_ns,
        sweep.configs,
        sweep.multiple(),
    );

    if label == "full" && PRE_PR_FULL_FDIP_INSTRS_PER_SEC > 0.0 {
        if let Some(fdip) = results.iter().find(|r| r.name == "fdip") {
            eprintln!(
                "[core_bench] fdip vs pre-PR baseline: {:.2}x ({:.0} vs {:.0} instrs/sec)",
                fdip.instrs_per_sec / PRE_PR_FULL_FDIP_INSTRS_PER_SEC,
                fdip.instrs_per_sec,
                PRE_PR_FULL_FDIP_INSTRS_PER_SEC,
            );
        }
    }

    // Read the committed document before overwriting it: --check compares
    // the fresh measurement against what is in the tree.
    let dir = fdip_bench::results_dir();
    let path = dir.join("BENCH_core.json");
    let committed = read_doc(&path);
    let verdict = check.then(|| {
        let doc = match &committed {
            Some(doc) => doc,
            None => return Err(format!("{} missing or unparsable", path.display())),
        };
        let rates = committed_rates(doc, label)?;
        if rates.is_empty() {
            return Err(format!("no committed baseline for scale {label:?}"));
        }
        let mut failures = Vec::new();
        for (name, committed_rate) in &rates {
            let Some(fresh) = results.iter().find(|r| r.name == name.as_str()) else {
                failures.push(format!("committed config {name:?} no longer measured"));
                continue;
            };
            let floor = committed_rate * (1.0 - MAX_REGRESSION);
            if fresh.instrs_per_sec < floor {
                failures.push(format!(
                    "{name}: {:.0} instrs/sec is below {:.0} \
                     ({:.0}% regression limit vs committed {:.0})",
                    fresh.instrs_per_sec,
                    floor,
                    MAX_REGRESSION * 100.0,
                    committed_rate,
                ));
            }
        }
        if label == "full" && sweep.multiple() < MIN_SWEEP_MULTIPLE {
            failures.push(format!(
                "sweep: batched {}-config multiple {:.2}x is below the \
                 {MIN_SWEEP_MULTIPLE}x floor ({:.0} ns batched vs {:.0} ns solo)",
                sweep.configs,
                sweep.multiple(),
                sweep.batch_ns,
                sweep.solo_ns,
            ));
        }
        if failures.is_empty() {
            Ok(rates.len())
        } else {
            Err(failures.join("; "))
        }
    });

    std::fs::create_dir_all(&dir).expect("create results dir");
    let doc = merged_doc(
        committed.as_ref(),
        label,
        scale_entry(trace.len(), samples, &results, &sweep),
    );
    fdip_sim::persist::write_atomic_str(&path, &doc.to_string_pretty())
        .expect("write BENCH_core.json");
    eprintln!("[core_bench] wrote {}", path.display());

    match verdict {
        None => {}
        Some(Ok(n)) => eprintln!("[core_bench] check passed ({n} configs within budget)"),
        Some(Err(why)) => {
            eprintln!("[core_bench] CHECK FAILED: {why}");
            std::process::exit(1);
        }
    }
}

fn read_doc(path: &Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()
}
