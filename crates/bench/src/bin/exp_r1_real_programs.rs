//! Regenerates experiment `r1` (see DESIGN.md for the experiment
//! index). Accepts `--quick` / `--medium` / `--full`.

fn main() {
    fdip_bench::run_and_print("r1");
}
