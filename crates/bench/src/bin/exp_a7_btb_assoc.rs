//! Regenerates experiment `a7` (see DESIGN.md for the experiment
//! index). Accepts `--quick` / `--medium` / `--full`.

fn main() {
    fdip_bench::run_and_print("a7");
}
