//! Runs the whole experiment catalogue in order, printing every table and
//! figure and persisting CSVs under `results/`. Accepts `--quick` /
//! `--medium` / `--full`.

use fdip_sim::experiments;

fn main() {
    let scale = fdip_sim::Scale::from_args(std::env::args().skip(1));
    let start = std::time::Instant::now();
    for (id, title, runner) in experiments::all() {
        eprintln!("[{id}] {title} ...");
        let t = std::time::Instant::now();
        let result = runner(scale);
        println!("{}", "=".repeat(72));
        print!("{}", result.to_text());
        eprintln!("[{id}] {:.1}s", t.elapsed().as_secs_f64());
        if let Err(e) = fdip_bench::persist(id, &result) {
            eprintln!("[{id}] warning: could not write results/: {e}");
        }
    }
    eprintln!("total {:.1}s", start.elapsed().as_secs_f64());
}
