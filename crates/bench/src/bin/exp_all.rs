//! Runs the whole experiment catalogue in order, printing every table and
//! figure and persisting CSV + JSON under `results/`. Accepts `--quick` /
//! `--medium` / `--full`, a `--faults SPEC` fault-injection plan (also read
//! from `$FDIP_FAULTS`), `--journal PATH` to override the default cell
//! journal at `results/journal.jsonl`, `--isolate[=N]` to run every
//! cell in supervised worker processes (a crash or hang costs one worker
//! and one FAILED row, never the run), `--fleet ADDR,ADDR,...` to dispatch
//! isolated cells to remote `fdip workerd` daemons (a killed or partitioned
//! node costs a re-dispatch, never the run), `--fleet-heartbeat-ms N` and
//! `--hedge-after-ms MS|auto|0` to tune fleet liveness detection and
//! hedged dispatch, `--cache DIR` to share a
//! persistent on-disk result cache across runs and machines, and
//! `--batch[=on|off]` to control the lockstep multi-config batch pass (on
//! by default; output is byte-identical either way).
//!
//! All experiments share the process-wide harness, so each suite trace is
//! generated once and each distinct (workload, config, trace length) cell
//! is simulated once across the entire catalogue; the cache counters are
//! reported at the end.
//!
//! Every finished cell is appended to the journal, so a run that is killed
//! part-way (OOM, SIGKILL, power loss) resumes from where it stopped: on
//! restart the journaled cells are preloaded into the cell cache and only
//! the remainder is simulated. The journal is deleted after a run in which
//! every cell succeeded; it is kept when any cell failed so the failures
//! can be retried cheaply.

use std::path::PathBuf;

use fdip_sim::experiments;
use fdip_sim::fault::FaultPlan;
use fdip_sim::harness::Harness;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Argv with `flag` and its value argument removed (for flags that
/// `Scale::from_args` does not know about).
fn strip_valued_flag(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == flag {
            skip_value = true;
            continue;
        }
        out.push(a.clone());
    }
    out
}

fn main() {
    // Supervisor-spawned worker processes (FDIP_WORKER=1) exit here.
    fdip_sim::worker::maybe_worker_entry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut isolate: Option<usize> = None;
    let mut batch: Option<bool> = None;
    let mut scale_args = Vec::with_capacity(args.len());
    let stripped = [
        "--faults",
        "--journal",
        "--fleet",
        "--cache",
        "--fleet-heartbeat-ms",
        "--hedge-after-ms",
    ]
    .iter()
    .fold(args.clone(), |acc, flag| strip_valued_flag(&acc, flag));
    for a in stripped {
        if a == "--isolate" {
            isolate = Some(fdip_sim::supervisor::default_worker_count());
        } else if let Some(n) = a.strip_prefix("--isolate=") {
            isolate = match n.parse::<usize>() {
                Ok(w) if w > 0 => Some(w),
                _ => {
                    eprintln!("bad --isolate={n:?} (want a positive worker count)");
                    std::process::exit(2);
                }
            };
        } else if a == "--batch" {
            batch = Some(true);
        } else if let Some(v) = a.strip_prefix("--batch=") {
            batch = match v {
                "on" => Some(true),
                "off" => Some(false),
                _ => {
                    eprintln!(
                        "unrecognized --batch value {v:?} \
                         (accepted forms: --batch, --batch=on, --batch=off)"
                    );
                    std::process::exit(2);
                }
            };
        } else {
            scale_args.push(a);
        }
    }
    let scale = fdip_sim::Scale::from_args(scale_args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let harness = Harness::global();
    if let Some(on) = batch {
        harness.set_batching(on);
    }
    // Fleet tuning flags are validated before anything dials: a zero or
    // garbage value is a usage error, never a half-configured fleet.
    let fleet_heartbeat_ms = flag_value(&args, "--fleet-heartbeat-ms").map(|raw| {
        match raw.parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                eprintln!("bad --fleet-heartbeat-ms {raw:?} (want a positive millisecond count)");
                std::process::exit(2);
            }
        }
    });
    let hedge = flag_value(&args, "--hedge-after-ms").map(|raw| {
        fdip_sim::fleet::HedgePolicy::parse(&raw).unwrap_or_else(|e| {
            eprintln!("bad --hedge-after-ms: {e}");
            std::process::exit(2);
        })
    });
    let fleet_addrs = flag_value(&args, "--fleet");
    if let Some(addrs) = &fleet_addrs {
        if isolate.is_none() {
            eprintln!("--fleet requires --isolate (cells run in remote worker daemons)");
            std::process::exit(2);
        }
        let list: Vec<String> = addrs
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if list.is_empty() {
            eprintln!("--fleet needs at least one HOST:PORT address");
            std::process::exit(2);
        }
        let mut fleet_config = fdip_sim::fleet::FleetConfig::new(list);
        if let Some(ms) = fleet_heartbeat_ms {
            fleet_config.heartbeat_timeout = std::time::Duration::from_millis(ms);
        }
        if let Some(policy) = hedge {
            fleet_config.hedge = policy;
        }
        let fleet = harness.enable_fleet(fleet_config).unwrap_or_else(|e| {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        });
        let nodes: Vec<String> = fleet
            .nodes()
            .iter()
            .map(|(addr, seats)| format!("{addr} x{seats}"))
            .collect();
        eprintln!(
            "fleet: {} node(s), {} worker seat(s): {}",
            fleet.nodes().len(),
            fleet.workers(),
            nodes.join(", ")
        );
    } else if let Some(workers) = isolate {
        let supervisor = harness.enable_isolation(fdip_sim::supervisor::SupervisorConfig {
            workers,
            ..fdip_sim::supervisor::SupervisorConfig::default()
        });
        eprintln!("isolation: {} worker process(es)", supervisor.workers());
    }
    if let Some(dir) = flag_value(&args, "--cache").map(PathBuf::from) {
        match harness.attach_cache(&dir) {
            Ok(summary) => eprintln!(
                "cell cache {}: {} entr{} restored, {} corrupt",
                dir.display(),
                summary.entries,
                if summary.entries == 1 { "y" } else { "ies" },
                summary.corrupt
            ),
            Err(e) => eprintln!(
                "warning: cell cache {} unavailable ({e}); running without it",
                dir.display()
            ),
        }
    }

    let plan = match flag_value(&args, "--faults") {
        Some(spec) => Some(FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        })),
        None => FaultPlan::from_env().unwrap_or_else(|e| {
            eprintln!("bad FDIP_FAULTS spec: {e}");
            std::process::exit(2);
        }),
    };
    if let Some(plan) = &plan {
        if plan.requires_fleet() && fleet_addrs.is_none() {
            eprintln!(
                "fault plan injects network faults (drop/partition/slowlink/truncframe), \
                 which only make sense against remote workers; rerun with \
                 --fleet ADDR,... (plus --isolate)"
            );
            std::process::exit(2);
        }
        if plan.requires_isolation() && isolate.is_none() {
            eprintln!(
                "fault plan injects abort/hang/bigalloc faults, which take the whole \
                 process down; rerun with --isolate[=N] to contain them in worker processes"
            );
            std::process::exit(2);
        }
        eprintln!(
            "fault plan: {} site(s), seed {}",
            plan.site_count(),
            plan.seed()
        );
    }
    harness.set_fault_plan(plan);

    let journal_path = flag_value(&args, "--journal")
        .map(PathBuf::from)
        .unwrap_or_else(|| fdip_bench::results_dir().join("journal.jsonl"));
    if let Some(parent) = journal_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match harness.attach_journal(&journal_path) {
        Ok(summary) => eprintln!(
            "journal {}: restored {} cell(s), skipped {} line(s), {} corrupt",
            journal_path.display(),
            summary.restored,
            summary.skipped,
            summary.corrupt
        ),
        Err(e) => eprintln!(
            "warning: journal {} unavailable ({e}); running without resume",
            journal_path.display()
        ),
    }

    let start = std::time::Instant::now();
    for exp in experiments::all() {
        let id = exp.id();
        eprintln!("[{id}] {} ...", exp.title());
        let t = std::time::Instant::now();
        let result = exp.run(harness, scale);
        println!("{}", "=".repeat(72));
        print!("{}", result.to_text());
        eprintln!("[{id}] {:.1}s", t.elapsed().as_secs_f64());
        if let Err(e) = fdip_bench::persist(exp, &result) {
            eprintln!("[{id}] warning: could not write results/: {e}");
        }
    }
    let stats = harness.stats();
    eprintln!(
        "harness: {} traces generated ({} shared), {} cells simulated \
         ({} batched, {} hits, {} restored from journal), {} retries, {} timeouts, {} failed",
        stats.traces_generated,
        stats.traces_shared,
        stats.cells_simulated,
        stats.cells_batched,
        stats.cell_hits,
        stats.journal_restored,
        stats.cell_retries,
        stats.cell_timeouts,
        stats.cells_failed,
    );
    if harness.isolation_enabled() {
        eprintln!(
            "isolation: {} worker restart(s), {} kill(s), {} crash-loop pause(s)",
            stats.worker_restarts, stats.worker_kills, stats.worker_crash_loops,
        );
    }
    if harness.fleet_enabled() {
        eprintln!(
            "fleet: {} worker seat(s), {} node loss(es), {} cell(s) re-dispatched, \
             {} remote cache hit(s), {} readmission(s), {} hedged ({} won)",
            stats.fleet_workers,
            stats.node_losses,
            stats.cells_redispatched,
            stats.remote_cache_hits,
            stats.node_readmissions,
            stats.cells_hedged,
            stats.hedge_wins,
        );
    }
    eprintln!("total {:.1}s", start.elapsed().as_secs_f64());

    harness.detach_journal();
    if stats.cells_failed == 0 {
        let _ = std::fs::remove_file(&journal_path);
    } else {
        eprintln!(
            "warning: {} cell(s) FAILED; journal kept at {} for resume",
            stats.cells_failed,
            journal_path.display()
        );
    }
}
