//! Runs the whole experiment catalogue in order, printing every table and
//! figure and persisting CSV + JSON under `results/`. Accepts `--quick` /
//! `--medium` / `--full`.
//!
//! All experiments share the process-wide harness, so each suite trace is
//! generated once and each distinct (workload, config, trace length) cell
//! is simulated once across the entire catalogue; the cache counters are
//! reported at the end.

use fdip_sim::experiments;
use fdip_sim::harness::Harness;

fn main() {
    let scale = fdip_sim::Scale::from_args(std::env::args().skip(1));
    let harness = Harness::global();
    let start = std::time::Instant::now();
    for exp in experiments::all() {
        let id = exp.id();
        eprintln!("[{id}] {} ...", exp.title());
        let t = std::time::Instant::now();
        let result = exp.run(harness, scale);
        println!("{}", "=".repeat(72));
        print!("{}", result.to_text());
        eprintln!("[{id}] {:.1}s", t.elapsed().as_secs_f64());
        if let Err(e) = fdip_bench::persist(exp, &result) {
            eprintln!("[{id}] warning: could not write results/: {e}");
        }
    }
    let stats = harness.stats();
    eprintln!(
        "harness: {} traces generated ({} shared), {} cells simulated ({} cache hits)",
        stats.traces_generated, stats.trace_hits, stats.cells_simulated, stats.cell_hits
    );
    eprintln!("total {:.1}s", start.elapsed().as_secs_f64());
}
