//! Chaos soak benchmark: drives [`fdip_sim::chaos::run_chaos`] and
//! persists the recovery metrics (MTTR, readmissions, hedge counts,
//! byte-identity per round) as `results/BENCH_chaos.json`.
//!
//! `--quick` runs 3 rounds (CI smoke); the default is 5. `--check` turns
//! the soak's gates into an exit status: any violated gate prints a
//! `CHECK FAILED:` line and exits 1.

use fdip_sim::chaos::{run_chaos, ChaosConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    // The soak self-execs this binary as its worker daemons
    // (FDIP_WORKERD_LISTEN in the environment); those invocations never
    // reach the benchmark driver.
    fdip_sim::worker::maybe_worker_entry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let defaults = ChaosConfig::default();
    let rounds = match flag_value(&args, "--rounds") {
        None => {
            if quick {
                3
            } else {
                defaults.rounds
            }
        }
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --rounds {raw:?} (want a positive round count)");
                std::process::exit(2);
            }
        },
    };
    let seed = match flag_value(&args, "--seed") {
        None => defaults.seed,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("bad --seed {raw:?} (want an integer)");
                std::process::exit(2);
            }
        },
    };

    let config = ChaosConfig {
        rounds,
        seed,
        ..defaults
    };
    eprintln!(
        "[chaos] {} round(s), seed {}, experiments {}",
        config.rounds,
        config.seed,
        config.experiments.join(",")
    );
    let report = run_chaos(&config).unwrap_or_else(|e| {
        eprintln!("[chaos] soak infrastructure failed: {e}");
        std::process::exit(2);
    });
    eprint!("{}", report.to_text());

    let dir = fdip_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_chaos.json");
    fdip_sim::persist::write_atomic_str(&path, &report.to_json().to_string_pretty())
        .expect("write BENCH_chaos.json");
    eprintln!("[chaos] wrote {}", path.display());

    if check && !report.passed() {
        for f in &report.failures {
            eprintln!("[chaos] CHECK FAILED: {f}");
        }
        std::process::exit(1);
    }
    if check {
        eprintln!("[chaos] all checks passed");
    }
}
