//! Regenerates experiment `r2` (see DESIGN.md for the experiment
//! index). Accepts `--quick` / `--medium` / `--full`.

fn main() {
    fdip_bench::run_and_print("r2");
}
