/// How big an experiment run should be.
///
/// The same experiment code serves paper-scale runs (`full`), interactive
/// exploration (`medium`), and CI smoke tests (`quick`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Scale {
    /// Dynamic instructions per trace.
    pub trace_len: usize,
    /// Workloads per suite (distinct seeds).
    pub workloads_per_suite: usize,
}

impl Scale {
    /// Paper-scale: 4 workloads per suite, 2M instructions each.
    pub fn full() -> Scale {
        Scale {
            trace_len: 2_000_000,
            workloads_per_suite: 4,
        }
    }

    /// Interactive: 2 workloads per suite, 500K instructions.
    pub fn medium() -> Scale {
        Scale {
            trace_len: 500_000,
            workloads_per_suite: 2,
        }
    }

    /// Smoke-test: 1 workload per suite, 60K instructions.
    pub fn quick() -> Scale {
        Scale {
            trace_len: 60_000,
            workloads_per_suite: 1,
        }
    }

    /// Parses `--quick` / `--medium` / `--full` style argv, defaulting to
    /// full (benchmark binaries use this). The first scale flag wins, as
    /// before, but every argument is still inspected: an unrecognized
    /// `--*` flag is an error rather than a silent fall-through to the
    /// 2M-instruction full-scale default. Non-flag (positional) arguments
    /// are ignored; callers with their own flag vocabulary must strip it
    /// before delegating here.
    ///
    /// # Errors
    ///
    /// Returns [`ScaleArgError`] naming the offending flag and listing the
    /// accepted ones.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Scale, ScaleArgError> {
        let mut chosen: Option<Scale> = None;
        for arg in args {
            match arg.as_str() {
                "--quick" => chosen = chosen.or(Some(Scale::quick())),
                "--medium" => chosen = chosen.or(Some(Scale::medium())),
                "--full" => chosen = chosen.or(Some(Scale::full())),
                flag if flag.starts_with("--") => {
                    return Err(ScaleArgError { flag: arg });
                }
                _ => {}
            }
        }
        Ok(chosen.unwrap_or_else(Scale::full))
    }
}

/// An unrecognized `--*` flag passed to [`Scale::from_args`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaleArgError {
    /// The flag as given on the command line.
    pub flag: String,
}

impl std::fmt::Display for ScaleArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized flag {:?} (accepted scale flags: --quick, --medium, --full)",
            self.flag
        )
    }
}

impl std::error::Error for ScaleArgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_scales() {
        assert!(Scale::quick().trace_len < Scale::medium().trace_len);
        assert!(Scale::medium().trace_len < Scale::full().trace_len);
    }

    #[test]
    fn from_args_parses() {
        let q = Scale::from_args(["--quick".to_string()]);
        assert_eq!(q, Ok(Scale::quick()));
        let f = Scale::from_args(["whatever".to_string()]);
        assert_eq!(f, Ok(Scale::full()));
        let m = Scale::from_args(["x".to_string(), "--medium".to_string()]);
        assert_eq!(m, Ok(Scale::medium()));
        // First scale flag wins, as in the pre-Result parser.
        let first = Scale::from_args(["--quick".to_string(), "--full".to_string()]);
        assert_eq!(first, Ok(Scale::quick()));
    }

    #[test]
    fn from_args_rejects_unknown_flags() {
        // The motivating typo: `--qiuck` must not silently run full-scale.
        let err = Scale::from_args(["--qiuck".to_string()]).unwrap_err();
        assert_eq!(err.flag, "--qiuck");
        let msg = err.to_string();
        assert!(msg.contains("--qiuck"), "{msg}");
        for accepted in ["--quick", "--medium", "--full"] {
            assert!(msg.contains(accepted), "{msg} should list {accepted}");
        }
        // A valid flag does not excuse a bogus one elsewhere in argv.
        let err = Scale::from_args(["--quick".to_string(), "--bogus".to_string()]).unwrap_err();
        assert_eq!(err.flag, "--bogus");
    }
}
