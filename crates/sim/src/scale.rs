/// How big an experiment run should be.
///
/// The same experiment code serves paper-scale runs (`full`), interactive
/// exploration (`medium`), and CI smoke tests (`quick`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Scale {
    /// Dynamic instructions per trace.
    pub trace_len: usize,
    /// Workloads per suite (distinct seeds).
    pub workloads_per_suite: usize,
}

impl Scale {
    /// Paper-scale: 4 workloads per suite, 2M instructions each.
    pub fn full() -> Scale {
        Scale {
            trace_len: 2_000_000,
            workloads_per_suite: 4,
        }
    }

    /// Interactive: 2 workloads per suite, 500K instructions.
    pub fn medium() -> Scale {
        Scale {
            trace_len: 500_000,
            workloads_per_suite: 2,
        }
    }

    /// Smoke-test: 1 workload per suite, 60K instructions.
    pub fn quick() -> Scale {
        Scale {
            trace_len: 60_000,
            workloads_per_suite: 1,
        }
    }

    /// Parses `--quick` / `--medium` / `--full` style argv, defaulting to
    /// full (benchmark binaries use this).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
        for arg in args {
            match arg.as_str() {
                "--quick" => return Scale::quick(),
                "--medium" => return Scale::medium(),
                "--full" => return Scale::full(),
                _ => {}
            }
        }
        Scale::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_scales() {
        assert!(Scale::quick().trace_len < Scale::medium().trace_len);
        assert!(Scale::medium().trace_len < Scale::full().trace_len);
    }

    #[test]
    fn from_args_parses() {
        let q = Scale::from_args(["--quick".to_string()]);
        assert_eq!(q, Scale::quick());
        let f = Scale::from_args(["whatever".to_string()]);
        assert_eq!(f, Scale::full());
        let m = Scale::from_args(["x".to_string(), "--medium".to_string()]);
        assert_eq!(m, Scale::medium());
    }
}
