//! The cell journal: a crash-tolerant record of completed simulations.
//!
//! A journaled run appends one JSONL line per *computed* cell — workload,
//! trace length, config fingerprint, and the finished [`SimStats`] — and
//! flushes after each line, so a `SIGKILL` loses at most one torn tail
//! line. On restart, [`read_entries`] replays the journal and the harness
//! preloads every valid entry into its cell cache; the resumed run then
//! re-simulates only the cells that never finished.
//!
//! Reading is deliberately paranoid, because the journal is exactly the
//! file most likely to be half-written: lines are length-bounded
//! ([`MAX_LINE_BYTES`]) and read without buffering oversize garbage, each
//! line is schema-checked ([`JOURNAL_SCHEMA_VERSION`]) and field-checked,
//! and anything malformed — torn tail, corrupt JSON, foreign schema — is
//! counted, warned about, and skipped. A corrupt journal can cost
//! re-simulation; it can never poison results or abort a resume.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use fdip::SimStats;
use fdip_types::{FromJson, Json, ToJson};

/// Journal line format version; bump on any incompatible change so a
/// resume never trusts lines written by a different format.
pub const JOURNAL_SCHEMA_VERSION: u64 = 1;

/// Upper bound on one journal line. A real entry is a few KiB; anything
/// larger is corruption and is skipped without ever being buffered.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// One completed cell, as recorded in (and replayed from) the journal.
///
/// The `config` field is the *content fingerprint*
/// ([`config_fingerprint`](crate::harness::config_fingerprint)), not a
/// display label, so a replayed entry hits the cell cache under any label.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Workload name.
    pub workload: String,
    /// Trace length the cell was simulated at.
    pub trace_len: usize,
    /// Config content fingerprint.
    pub config: String,
    /// The finished statistics.
    pub stats: SimStats,
}

impl ToJson for JournalEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::uint(JOURNAL_SCHEMA_VERSION)),
            ("workload", Json::str(&self.workload)),
            ("trace_len", Json::uint(self.trace_len as u64)),
            ("config", Json::str(&self.config)),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl JournalEntry {
    fn parse(line: &str) -> Option<JournalEntry> {
        let doc = Json::parse(line).ok()?;
        if doc.get("schema_version")?.as_u64()? != JOURNAL_SCHEMA_VERSION {
            return None;
        }
        Some(JournalEntry {
            workload: String::from_json(doc.get("workload")?)?,
            trace_len: usize::try_from(doc.get("trace_len")?.as_u64()?).ok()?,
            config: String::from_json(doc.get("config")?)?,
            stats: SimStats::from_json(doc.get("stats")?)?,
        })
    }
}

/// What a journal replay recovered, reported to the user at resume time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Valid entries preloaded into the cell cache.
    pub restored: usize,
    /// Malformed / torn / foreign-schema lines skipped (with a warning).
    pub skipped: usize,
}

/// An open journal being appended to. One line per completed cell,
/// flushed immediately; appends are serialized under a lock.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry as a single flushed JSONL line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let line = entry.to_json().to_string();
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }
}

/// Reads the next `\n`-terminated line into `line`, bounding it at
/// [`MAX_LINE_BYTES`]. Returns `Ok(None)` at a clean EOF; `Ok(Some(fits))`
/// otherwise, where `fits` is false for an oversize line (its bytes are
/// discarded, never buffered) *or* an unterminated tail — a torn write
/// from a killed run — which the caller must treat as corrupt.
fn next_line(reader: &mut impl BufRead, line: &mut Vec<u8>) -> io::Result<Option<bool>> {
    line.clear();
    let mut fits = true;
    let mut seen_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if seen_any { Some(false) } else { None });
        }
        seen_any = true;
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if fits && line.len() + pos <= MAX_LINE_BYTES {
                    line.extend_from_slice(&chunk[..pos]);
                } else {
                    fits = false;
                }
                reader.consume(pos + 1);
                return Ok(Some(fits));
            }
            None => {
                let len = chunk.len();
                if fits && line.len() + len <= MAX_LINE_BYTES {
                    line.extend_from_slice(chunk);
                } else {
                    fits = false;
                    line.clear();
                }
                reader.consume(len);
            }
        }
    }
}

/// Replays a journal, returning the valid entries in file order plus the
/// count of skipped lines. A missing file is an empty journal, not an
/// error. See the module docs for the hardening rules.
///
/// # Errors
///
/// Only on real I/O failure while reading; corruption is never an error.
pub fn read_entries(path: &Path) -> io::Result<(Vec<JournalEntry>, usize)> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(err) => return Err(err),
    };
    let mut reader = BufReader::new(file);
    let mut line = Vec::new();
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    let mut lineno = 0usize;
    while let Some(fits) = next_line(&mut reader, &mut line)? {
        lineno += 1;
        if !fits {
            skipped += 1;
            eprintln!(
                "warning: {}:{lineno}: oversize or torn journal line skipped",
                path.display()
            );
            continue;
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            skipped += 1;
            eprintln!(
                "warning: {}:{lineno}: non-UTF-8 journal line skipped",
                path.display()
            );
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        match JournalEntry::parse(text) {
            Some(entry) => entries.push(entry),
            None => {
                skipped += 1;
                eprintln!(
                    "warning: {}:{lineno}: malformed journal line skipped",
                    path.display()
                );
            }
        }
    }
    Ok((entries, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fdip-journal-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample(workload: &str) -> JournalEntry {
        JournalEntry {
            workload: workload.to_string(),
            trace_len: 8_000,
            config: "FrontendConfig { .. }".to_string(),
            stats: SimStats {
                cycles: 1234,
                instructions: 8_000,
                ..SimStats::default()
            },
        }
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = temp_path("roundtrip");
        let journal = Journal::open_append(&path).unwrap();
        journal.append(&sample("w1")).unwrap();
        journal.append(&sample("w2")).unwrap();
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(entries, vec![sample("w1"), sample("w2")]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let (entries, skipped) = read_entries(&temp_path("missing")).unwrap();
        assert!(entries.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn torn_tail_is_skipped_but_earlier_lines_survive() {
        let path = temp_path("torn");
        let good = sample("w1").to_json().to_string();
        // A killed process tears the last line mid-write: no trailing
        // newline, truncated JSON.
        let torn = &good[..good.len() / 2];
        std::fs::write(&path, format!("{good}\n{torn}")).unwrap();
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(entries, vec![sample("w1")]);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_point_recovers_cleanly() {
        // Mirrors the trace reader's malformed-input sweep: a journal cut
        // at any byte never errors and never yields a bogus entry.
        let path = temp_path("truncate");
        let full = format!("{}\n{}\n", sample("w1").to_json(), sample("w2").to_json());
        for cut in 0..full.len() {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let (entries, _) = read_entries(&path).unwrap();
            assert!(entries.len() <= 2);
            for e in &entries {
                assert!(e == &sample("w1") || e == &sample("w2"), "cut at {cut}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_foreign_lines_are_counted_and_skipped() {
        let path = temp_path("corrupt");
        let good = sample("w1").to_json().to_string();
        let foreign = good.replace(r#""schema_version":1"#, r#""schema_version":99"#);
        let contents = format!("not json at all\n{{\"schema_version\":1}}\n{foreign}\n\n{good}\n");
        std::fs::write(&path, contents).unwrap();
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(entries, vec![sample("w1")]);
        // Garbage, field-less, and foreign-schema lines; the blank line is
        // tolerated silently.
        assert_eq!(skipped, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversize_line_is_skipped_without_buffering() {
        let path = temp_path("oversize");
        let good = sample("w1").to_json().to_string();
        let mut contents = Vec::new();
        contents.extend_from_slice(good.as_bytes());
        contents.push(b'\n');
        contents.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        contents.push(b'\n');
        contents.extend_from_slice(good.as_bytes());
        contents.push(b'\n');
        std::fs::write(&path, contents).unwrap();
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).ok();
    }
}
