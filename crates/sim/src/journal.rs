//! The cell journal: a crash-tolerant record of completed simulations.
//!
//! A journaled run appends one JSONL line per *computed* cell — workload,
//! trace length, config fingerprint, and the finished [`SimStats`] — and
//! flushes after each line, so a `SIGKILL` loses at most one torn tail
//! line. On restart, [`read_entries`] replays the journal and the harness
//! preloads every valid entry into its cell cache; the resumed run then
//! re-simulates only the cells that never finished.
//!
//! Reading is deliberately paranoid, because the journal is exactly the
//! file most likely to be half-written: lines are length-bounded
//! ([`MAX_LINE_BYTES`]) and read without buffering oversize garbage, each
//! line is schema-checked ([`JOURNAL_SCHEMA_VERSION`]) and field-checked,
//! and anything malformed — torn tail, corrupt JSON, foreign schema — is
//! counted, warned about, and skipped. A corrupt journal can cost
//! re-simulation; it can never poison results or abort a resume.
//!
//! Truncation is not the only way storage lies. Every appended line is
//! framed with a [CRC32](crc32) of its payload (`xxxxxxxx {json}`), so
//! *bit rot* — a flipped byte that still parses as JSON — is detected
//! too: a line whose checksum does not match is counted separately
//! ([`JournalReplay::corrupt`], surfaced as the harness's
//! `journal_corrupt_lines` stat) and skipped. Unframed lines written by
//! pre-CRC versions of this module are still accepted, so old journals
//! resume fine; they just lack rot detection.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use fdip::SimStats;
use fdip_types::{FromJson, Json, ToJson};

/// Journal line format version; bump on any incompatible change so a
/// resume never trusts lines written by a different format.
pub const JOURNAL_SCHEMA_VERSION: u64 = 1;

/// Upper bound on one journal line. A real entry is a few KiB; anything
/// larger is corruption and is skipped without ever being buffered.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// The CRC32 lookup table (IEEE 802.3 reflected polynomial `0xEDB88320`),
/// built at compile time — the workspace is std-only, so the checksum is
/// hand-rolled rather than pulled from a crate.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Standard CRC32 (the IEEE one `cksum`/zlib/PNG use) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Splits a CRC-framed journal line (`xxxxxxxx payload`) into its parts.
/// Returns `None` for unframed (legacy) lines.
pub(crate) fn split_crc_frame(line: &str) -> Option<(u32, &str)> {
    let (prefix, payload) = (line.get(..8)?, line.get(9..)?);
    if line.as_bytes().get(8) != Some(&b' ') {
        return None;
    }
    let crc = u32::from_str_radix(prefix, 16).ok()?;
    Some((crc, payload))
}

/// One completed cell, as recorded in (and replayed from) the journal.
///
/// The `config` field is the *content fingerprint*
/// ([`config_fingerprint`](crate::harness::config_fingerprint)), not a
/// display label, so a replayed entry hits the cell cache under any label.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Workload name.
    pub workload: String,
    /// Trace length the cell was simulated at.
    pub trace_len: usize,
    /// Config content fingerprint.
    pub config: String,
    /// The finished statistics.
    pub stats: SimStats,
}

impl ToJson for JournalEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::uint(JOURNAL_SCHEMA_VERSION)),
            ("workload", Json::str(&self.workload)),
            ("trace_len", Json::uint(self.trace_len as u64)),
            ("config", Json::str(&self.config)),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl JournalEntry {
    pub(crate) fn parse(line: &str) -> Option<JournalEntry> {
        let doc = Json::parse(line).ok()?;
        if doc.get("schema_version")?.as_u64()? != JOURNAL_SCHEMA_VERSION {
            return None;
        }
        Some(JournalEntry {
            workload: String::from_json(doc.get("workload")?)?,
            trace_len: usize::try_from(doc.get("trace_len")?.as_u64()?).ok()?,
            config: String::from_json(doc.get("config")?)?,
            stats: SimStats::from_json(doc.get("stats")?)?,
        })
    }
}

/// What a journal replay recovered, reported to the user at resume time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Valid entries preloaded into the cell cache.
    pub restored: usize,
    /// Malformed / torn / foreign-schema lines skipped (with a warning).
    pub skipped: usize,
    /// Lines whose CRC32 frame did not verify (bit rot), also skipped.
    pub corrupt: usize,
}

/// What [`read_entries`] found in a journal file.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// The valid entries, in file order.
    pub entries: Vec<JournalEntry>,
    /// Malformed / torn / oversize / foreign-schema lines skipped.
    pub skipped: usize,
    /// Lines that failed their CRC32 check (bit rot), skipped.
    pub corrupt: usize,
}

/// An open journal being appended to. One line per completed cell,
/// flushed immediately; appends are serialized under a lock.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry as a single flushed, CRC32-framed JSONL line
    /// (`xxxxxxxx {json}\n`). Framing and newline go out in one write, so
    /// a kill can tear at most the line being written — never interleave
    /// two entries.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let payload = entry.to_json().to_string();
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

/// Reads the next `\n`-terminated line into `line`, bounding it at
/// [`MAX_LINE_BYTES`]. Returns `Ok(None)` at a clean EOF; `Ok(Some(fits))`
/// otherwise, where `fits` is false for an oversize line (its bytes are
/// discarded, never buffered) *or* an unterminated tail — a torn write
/// from a killed run — which the caller must treat as corrupt.
fn next_line(reader: &mut impl BufRead, line: &mut Vec<u8>) -> io::Result<Option<bool>> {
    line.clear();
    let mut fits = true;
    let mut seen_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if seen_any { Some(false) } else { None });
        }
        seen_any = true;
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if fits && line.len() + pos <= MAX_LINE_BYTES {
                    line.extend_from_slice(&chunk[..pos]);
                } else {
                    fits = false;
                }
                reader.consume(pos + 1);
                return Ok(Some(fits));
            }
            None => {
                let len = chunk.len();
                if fits && line.len() + len <= MAX_LINE_BYTES {
                    line.extend_from_slice(chunk);
                } else {
                    fits = false;
                    line.clear();
                }
                reader.consume(len);
            }
        }
    }
}

/// Replays a journal, returning the valid entries in file order plus the
/// counts of skipped and CRC-corrupt lines. A missing file is an empty
/// journal, not an error. See the module docs for the hardening rules.
///
/// # Errors
///
/// Only on real I/O failure while reading; corruption is never an error.
pub fn read_entries(path: &Path) -> io::Result<JournalReplay> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(JournalReplay::default()),
        Err(err) => return Err(err),
    };
    let mut reader = BufReader::new(file);
    let mut line = Vec::new();
    let mut replay = JournalReplay::default();
    let mut lineno = 0usize;
    while let Some(fits) = next_line(&mut reader, &mut line)? {
        lineno += 1;
        if !fits {
            replay.skipped += 1;
            eprintln!(
                "warning: {}:{lineno}: oversize or torn journal line skipped",
                path.display()
            );
            continue;
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            replay.skipped += 1;
            eprintln!(
                "warning: {}:{lineno}: non-UTF-8 journal line skipped",
                path.display()
            );
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        // CRC-framed line: verify before parsing. Unframed lines (legacy
        // journals) go straight to the parser.
        let payload = match split_crc_frame(text) {
            Some((expected, payload)) => {
                if crc32(payload.as_bytes()) != expected {
                    replay.corrupt += 1;
                    eprintln!(
                        "warning: {}:{lineno}: journal line failed its CRC32 check \
                         (bit rot); skipped",
                        path.display()
                    );
                    continue;
                }
                payload
            }
            None => text,
        };
        match JournalEntry::parse(payload) {
            Some(entry) => replay.entries.push(entry),
            None => {
                replay.skipped += 1;
                eprintln!(
                    "warning: {}:{lineno}: malformed journal line skipped",
                    path.display()
                );
            }
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fdip-journal-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample(workload: &str) -> JournalEntry {
        JournalEntry {
            workload: workload.to_string(),
            trace_len: 8_000,
            config: "FrontendConfig { .. }".to_string(),
            stats: SimStats {
                cycles: 1234,
                instructions: 8_000,
                ..SimStats::default()
            },
        }
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = temp_path("roundtrip");
        let journal = Journal::open_append(&path).unwrap();
        journal.append(&sample("w1")).unwrap();
        journal.append(&sample("w2")).unwrap();
        let replay = read_entries(&path).unwrap();
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.corrupt, 0);
        assert_eq!(replay.entries, vec![sample("w1"), sample("w2")]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let replay = read_entries(&temp_path("missing")).unwrap();
        assert!(replay.entries.is_empty());
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.corrupt, 0);
    }

    #[test]
    fn crc32_known_answers() {
        // The standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn bit_rot_is_detected_and_counted() {
        let path = temp_path("bitrot");
        let journal = Journal::open_append(&path).unwrap();
        journal.append(&sample("w1")).unwrap();
        journal.append(&sample("w2")).unwrap();
        drop(journal);
        // Flip one byte inside the second line's payload. The damaged
        // line still parses as JSON (a digit changed), but the CRC frame
        // catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let digit = bytes
            .iter()
            .enumerate()
            .skip(first_nl + 10)
            .find(|(_, b)| b.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap();
        bytes[digit] = if bytes[digit] == b'9' { b'8' } else { b'9' };
        std::fs::write(&path, bytes).unwrap();
        let replay = read_entries(&path).unwrap();
        assert_eq!(replay.entries, vec![sample("w1")]);
        assert_eq!(replay.corrupt, 1);
        assert_eq!(replay.skipped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_unframed_lines_still_resume() {
        let path = temp_path("legacy");
        // A journal written before CRC framing: bare JSON lines.
        let contents = format!("{}\n{}\n", sample("w1").to_json(), sample("w2").to_json());
        std::fs::write(&path, contents).unwrap();
        let replay = read_entries(&path).unwrap();
        assert_eq!(replay.entries, vec![sample("w1"), sample("w2")]);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.corrupt, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_skipped_but_earlier_lines_survive() {
        let path = temp_path("torn");
        let journal = Journal::open_append(&path).unwrap();
        journal.append(&sample("w1")).unwrap();
        journal.append(&sample("w2")).unwrap();
        drop(journal);
        // A killed process tears the last line mid-write: no trailing
        // newline, truncated payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();
        let replay = read_entries(&path).unwrap();
        assert_eq!(replay.entries, vec![sample("w1")]);
        assert_eq!(replay.skipped, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_point_recovers_cleanly() {
        // Mirrors the trace reader's malformed-input sweep: a journal cut
        // at any byte never errors and never yields a bogus entry. Runs
        // over the CRC-framed format the writer actually produces.
        let path = temp_path("truncate");
        let journal = Journal::open_append(&path).unwrap();
        journal.append(&sample("w1")).unwrap();
        journal.append(&sample("w2")).unwrap();
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_entries(&path).unwrap();
            assert!(replay.entries.len() <= 2);
            for e in &replay.entries {
                assert!(e == &sample("w1") || e == &sample("w2"), "cut at {cut}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_foreign_lines_are_counted_and_skipped() {
        let path = temp_path("corrupt");
        let good = sample("w1").to_json().to_string();
        let foreign = good.replace(r#""schema_version":1"#, r#""schema_version":99"#);
        let contents = format!("not json at all\n{{\"schema_version\":1}}\n{foreign}\n\n{good}\n");
        std::fs::write(&path, contents).unwrap();
        let replay = read_entries(&path).unwrap();
        assert_eq!(replay.entries, vec![sample("w1")]);
        // Garbage, field-less, and foreign-schema lines; the blank line is
        // tolerated silently.
        assert_eq!(replay.skipped, 3);
        assert_eq!(replay.corrupt, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversize_line_is_skipped_without_buffering() {
        let path = temp_path("oversize");
        let good = sample("w1").to_json().to_string();
        let mut contents = Vec::new();
        contents.extend_from_slice(good.as_bytes());
        contents.push(b'\n');
        contents.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        contents.push(b'\n');
        contents.extend_from_slice(good.as_bytes());
        contents.push(b'\n');
        std::fs::write(&path, contents).unwrap();
        let replay = read_entries(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.skipped, 1);
        std::fs::remove_file(&path).ok();
    }
}
