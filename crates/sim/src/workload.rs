//! Workload suites: named traces for experiments to run over.
//!
//! Three sources feed the same trace pipeline: the synthetic CFG
//! generator (profile workloads, the original suites), assembled
//! real programs executed by `fdip-isa`, and multi-phase scenarios
//! composed from those programs. All three produce ordinary traces, so
//! the harness cache, supervisor, and experiment registry treat them
//! identically — only [`WorkloadSpec::generate`] dispatches.

use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::Trace;

use crate::Scale;

/// Which suite an experiment runs over.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SuiteKind {
    /// Compact-footprint interactive workloads.
    Client,
    /// Large-footprint request-processing workloads.
    Server,
    /// Both suites.
    All,
}

/// Where a workload's instruction stream comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadSource {
    /// The synthetic CFG generator, under a named profile.
    Profile(Profile),
    /// An assembled program from the `fdip-isa` library, executed to
    /// completion (wrapping at `halt`).
    Program(String),
    /// A multi-phase `fdip-isa` scenario (context switches / interrupts).
    Scenario(String),
}

impl WorkloadSource {
    /// Encodes the source as a `kind:name` wire token for IPC.
    pub fn to_wire(&self) -> String {
        match self {
            WorkloadSource::Profile(p) => format!("profile:{}", p.name()),
            WorkloadSource::Program(n) => format!("program:{n}"),
            WorkloadSource::Scenario(n) => format!("scenario:{n}"),
        }
    }

    /// Decodes a `kind:name` token, validating the name against the
    /// profile table, program library, or scenario catalogue.
    pub fn from_wire(raw: &str) -> Option<WorkloadSource> {
        let (kind, name) = raw.split_once(':')?;
        match kind {
            "profile" => Profile::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .map(WorkloadSource::Profile),
            "program" => {
                fdip_isa::library::source(name).map(|_| WorkloadSource::Program(name.to_string()))
            }
            "scenario" => {
                fdip_isa::scenario::find(name).map(|_| WorkloadSource::Scenario(name.to_string()))
            }
            _ => None,
        }
    }
}

/// One named workload: a trace source plus a seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Report name, e.g. `server-2`, `bubble`, or `cs-quad~s7`.
    pub name: String,
    /// Trace source.
    pub source: WorkloadSource,
    /// Generator / interleaving seed (ignored by `Program` sources, whose
    /// execution is fully determined by the program text).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Builds the synthetic-suite spec for member `index` of `profile`.
    pub fn new(profile: Profile, index: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: format!("{}-{}", profile.name(), index + 1),
            source: WorkloadSource::Profile(profile),
            // Seeds are disjoint across profiles so suites never share RNG
            // streams.
            seed: 1000 * (profile as u64 + 1) + index as u64,
        }
    }

    /// Builds a spec for a named library program, or `None` if the
    /// program does not exist.
    pub fn program(name: &str) -> Option<WorkloadSpec> {
        fdip_isa::library::source(name)?;
        Some(WorkloadSpec {
            name: name.to_string(),
            source: WorkloadSource::Program(name.to_string()),
            seed: 0,
        })
    }

    /// Builds a spec for a named scenario at `seed`, or `None` if the
    /// scenario does not exist.
    pub fn scenario(name: &str, seed: u64) -> Option<WorkloadSpec> {
        fdip_isa::scenario::find(name)?;
        Some(WorkloadSpec {
            name: format!("{name}~s{seed}"),
            source: WorkloadSource::Scenario(name.to_string()),
            seed,
        })
    }

    /// Generates the trace at the given length.
    pub fn generate(&self, trace_len: usize) -> Trace {
        match &self.source {
            WorkloadSource::Profile(profile) => GeneratorConfig::profile(*profile)
                .name(self.name.clone())
                .seed(self.seed)
                .target_len(trace_len)
                .generate(),
            // Names were validated at construction (or wire decode), so a
            // miss here is a caller bug, not an input error.
            WorkloadSource::Program(prog) => fdip_isa::library::trace(prog, &self.name, trace_len)
                .unwrap_or_else(|| panic!("unknown library program {prog:?}")),
            WorkloadSource::Scenario(scn) => {
                fdip_isa::scenario::trace(scn, self.seed, &self.name, trace_len)
                    .unwrap_or_else(|| panic!("unknown scenario {scn:?}"))
            }
        }
    }
}

/// The synthetic workloads of a suite at a given scale.
pub fn suite(kind: SuiteKind, scale: Scale) -> Vec<WorkloadSpec> {
    let per = scale.workloads_per_suite;
    let mut specs = Vec::new();
    if matches!(kind, SuiteKind::Client | SuiteKind::All) {
        specs.extend((0..per).map(|i| WorkloadSpec::new(Profile::Client, i)));
    }
    if matches!(kind, SuiteKind::Server | SuiteKind::All) {
        specs.extend((0..per).map(|i| WorkloadSpec::new(Profile::Server, i)));
    }
    specs
}

/// Every library program as a workload, in catalogue order.
pub fn program_suite() -> Vec<WorkloadSpec> {
    fdip_isa::library::names()
        .into_iter()
        .map(|n| WorkloadSpec::program(n).expect("library name"))
        .collect()
}

/// Every scenario as a workload at `seed`, in catalogue order.
pub fn scenario_suite(seed: u64) -> Vec<WorkloadSpec> {
    fdip_isa::scenario::names()
        .into_iter()
        .map(|n| WorkloadSpec::scenario(n, seed).expect("scenario name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_follow_scale() {
        assert_eq!(suite(SuiteKind::Client, Scale::quick()).len(), 1);
        assert_eq!(suite(SuiteKind::All, Scale::full()).len(), 8);
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let all = suite(SuiteKind::All, Scale::full());
        let mut names: Vec<_> = all.iter().map(|w| w.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
        let mut seeds: Vec<_> = all.iter().map(|w| w.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn generate_respects_length() {
        let spec = WorkloadSpec::new(Profile::Client, 0);
        let t = spec.generate(5_000);
        assert!(t.len() >= 5_000);
        assert_eq!(t.name(), "client-1");
    }

    #[test]
    fn program_workloads_generate_valid_traces() {
        let spec = WorkloadSpec::program("bubble").unwrap();
        let t = spec.generate(8_000);
        assert!(t.len() >= 8_000);
        assert_eq!(t.name(), "bubble");
        t.validate().unwrap();
        assert!(WorkloadSpec::program("no-such-program").is_none());
    }

    #[test]
    fn scenario_workloads_generate_valid_traces() {
        let spec = WorkloadSpec::scenario("cs-sort-vm", 7).unwrap();
        assert_eq!(spec.name, "cs-sort-vm~s7");
        let t = spec.generate(8_000);
        assert!(t.len() >= 8_000);
        t.validate().unwrap();
        assert!(WorkloadSpec::scenario("no-such-scenario", 0).is_none());
    }

    #[test]
    fn full_suites_cover_the_catalogues() {
        assert_eq!(program_suite().len(), fdip_isa::library::names().len());
        assert!(program_suite().len() >= 6);
        assert_eq!(scenario_suite(1).len(), fdip_isa::scenario::names().len());
        assert!(scenario_suite(1).len() >= 3);
    }

    #[test]
    fn wire_round_trip_covers_all_sources() {
        for spec in [
            WorkloadSpec::new(Profile::Server, 2),
            WorkloadSpec::program("vm").unwrap(),
            WorkloadSpec::scenario("irq-vm", 3).unwrap(),
        ] {
            let wire = spec.source.to_wire();
            assert_eq!(WorkloadSource::from_wire(&wire), Some(spec.source));
        }
        assert_eq!(WorkloadSource::from_wire("profile:warp9"), None);
        assert_eq!(WorkloadSource::from_wire("program:warp9"), None);
        assert_eq!(WorkloadSource::from_wire("scenario:warp9"), None);
        assert_eq!(WorkloadSource::from_wire("nonsense"), None);
    }
}
