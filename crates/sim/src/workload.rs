//! Workload suites: named, seeded synthetic traces standing in for the
//! paper's benchmark traces.

use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::Trace;

use crate::Scale;

/// Which suite an experiment runs over.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SuiteKind {
    /// Compact-footprint interactive workloads.
    Client,
    /// Large-footprint request-processing workloads.
    Server,
    /// Both suites.
    All,
}

/// One named workload: a profile plus a seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Report name, e.g. `server-2`.
    pub name: String,
    /// Generator profile.
    pub profile: Profile,
    /// Generator seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Builds the spec for suite member `index`.
    pub fn new(profile: Profile, index: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: format!("{}-{}", profile.name(), index + 1),
            profile,
            // Seeds are disjoint across profiles so suites never share RNG
            // streams.
            seed: 1000 * (profile as u64 + 1) + index as u64,
        }
    }

    /// Generates the trace at the given length.
    pub fn generate(&self, trace_len: usize) -> Trace {
        GeneratorConfig::profile(self.profile)
            .name(self.name.clone())
            .seed(self.seed)
            .target_len(trace_len)
            .generate()
    }
}

/// The workloads of a suite at a given scale.
pub fn suite(kind: SuiteKind, scale: Scale) -> Vec<WorkloadSpec> {
    let per = scale.workloads_per_suite;
    let mut specs = Vec::new();
    if matches!(kind, SuiteKind::Client | SuiteKind::All) {
        specs.extend((0..per).map(|i| WorkloadSpec::new(Profile::Client, i)));
    }
    if matches!(kind, SuiteKind::Server | SuiteKind::All) {
        specs.extend((0..per).map(|i| WorkloadSpec::new(Profile::Server, i)));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_follow_scale() {
        assert_eq!(suite(SuiteKind::Client, Scale::quick()).len(), 1);
        assert_eq!(suite(SuiteKind::All, Scale::full()).len(), 8);
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let all = suite(SuiteKind::All, Scale::full());
        let mut names: Vec<_> = all.iter().map(|w| w.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
        let mut seeds: Vec<_> = all.iter().map(|w| w.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn generate_respects_length() {
        let spec = WorkloadSpec::new(Profile::Client, 0);
        let t = spec.generate(5_000);
        assert!(t.len() >= 5_000);
        assert_eq!(t.name(), "client-1");
    }
}
