//! Plain-text tables, CSV emission, and ASCII series charts for experiment
//! output.

use std::fmt::Write as _;

/// A titled table of strings, rendered column-aligned.
///
/// # Examples
///
/// ```
/// use fdip_sim::report::Table;
///
/// let mut t = Table::new("demo", &["workload", "speedup"]);
/// t.row(["server-1".to_string(), "1.42".to_string()]);
/// let text = t.to_text();
/// assert!(text.contains("workload"));
/// assert!(text.contains("1.42"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let render = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        render(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            render(&mut out, row);
        }
        out
    }

    /// Renders the table as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

impl fdip_types::ToJson for Table {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(self, title, headers, rows)
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a byte count as KB with 2 decimals.
pub fn kb(bytes: u64) -> String {
    format!("{:.2}KB", bytes as f64 / 1024.0)
}

/// A placeholder row for a workload whose cells failed: the label, a
/// `FAILED` marker, and `—` padding out to `width` columns. Experiments
/// use it to keep rendering partial tables when the harness degrades
/// (the error details land in the appended "failed cells" table).
///
/// # Panics
///
/// Panics if `width < 2` — there is no room for the marker.
pub fn failed_row(label: impl Into<String>, width: usize) -> Vec<String> {
    assert!(width >= 2, "failed_row needs room for label + marker");
    let mut row = vec![label.into(), "FAILED".to_string()];
    row.resize(width, "—".to_string());
    row
}

/// One line of an ASCII chart: a labeled series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in x order; x is categorical.
    pub points: Vec<(String, f64)>,
}

/// Renders grouped horizontal bars: one block per x category, one bar per
/// series — a terminal rendition of the paper's grouped bar figures.
pub fn ascii_chart(title: &str, series: &[Series], unit: &str) -> String {
    let max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, y)| *y))
        .fold(f64::EPSILON, f64::max);
    let label_width = series.iter().map(|s| s.label.len()).max().unwrap_or(0);
    let x_width = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| x.len()))
        .max()
        .unwrap_or(0);
    let bar_width = 40usize;
    let mut out = String::new();
    let _ = writeln!(out, "# {title} ({unit})");
    let categories: Vec<&String> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| x).collect())
        .unwrap_or_default();
    for (i, x) in categories.iter().enumerate() {
        for s in series {
            let y = s.points.get(i).map(|(_, y)| *y).unwrap_or(0.0);
            let filled = ((y / max) * bar_width as f64).round().max(0.0) as usize;
            let _ = writeln!(
                out,
                "{:>xw$}  {:<lw$}  {}{} {:.2}",
                if s.label == series[0].label {
                    x.as_str()
                } else {
                    ""
                },
                s.label,
                "█".repeat(filled.min(bar_width)),
                " ".repeat(bar_width - filled.min(bar_width)),
                y,
                xw = x_width,
                lw = label_width,
            );
        }
        if i + 1 < categories.len() {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", &["a", "bb"]);
        t.row(["1".to_string(), "2".to_string()]);
        t.row(["333".to_string(), "4".to_string()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# t");
        assert!(lines[1].contains("a") && lines[1].contains("bb"));
        // Both data rows end at the same column.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn markdown_render() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### t"));
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 333 | 4 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["x"]);
        t.row(["a,b".to_string()]);
        t.row(["q\"q".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["only-one".to_string()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(kb(11776), "11.50KB");
    }

    #[test]
    fn chart_renders_all_series() {
        let series = vec![
            Series {
                label: "fdip".into(),
                points: vec![("1K".into(), 1.4), ("2K".into(), 1.5)],
            },
            Series {
                label: "nlp".into(),
                points: vec![("1K".into(), 1.2), ("2K".into(), 1.2)],
            },
        ];
        let chart = ascii_chart("speedup", &series, "x over baseline");
        assert!(chart.contains("fdip"));
        assert!(chart.contains("nlp"));
        assert!(chart.contains("1K"));
        assert!(chart.contains('█'));
    }
}
