//! The worker side of process-isolated cell execution.
//!
//! A worker is *this same binary*, re-executed by the supervisor
//! (`crates/sim/src/supervisor.rs`) with [`WORKER_ENV`] set. It speaks
//! the [`crate::ipc`] frame protocol on stdin/stdout: read a
//! [`RunRequest`], simulate the cell, reply `ok`/`err`, repeat until
//! stdin reaches EOF. While a cell is in flight a dedicated thread emits
//! heartbeat frames, so the supervisor can tell a *long* cell (heartbeats
//! flowing, wall-clock budget still enforces the limit) from a *wedged*
//! one (silence → SIGKILL).
//!
//! Faults that arrive on the request (`abort`/`hang`/`bigalloc`, see
//! [`crate::fault`]) are realized *here*, inside the disposable process,
//! so isolation drills exercise exactly the containment path a real
//! crash would take. Panics — injected or genuine — are caught and
//! reported as `err` frames; the worker survives them and takes the next
//! cell.
//!
//! Binaries opt in by calling [`maybe_worker_entry`] first thing in
//! `main`: it is a no-op in a normal invocation and never returns in a
//! worker one. Activation is by environment variable rather than argv so
//! every harness-owning binary (`fdip`, `exp_all`) becomes worker-capable
//! without touching its argument parsing.

use std::collections::HashMap;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use fdip::{CancelToken, Simulator};
use fdip_trace::Trace;

use crate::ipc::{read_frame, write_frame, RunRequest, WorkerFault, WorkerReply};

/// Environment variable that turns an invocation of a harness binary into
/// a single-purpose cell worker (any non-empty value).
pub const WORKER_ENV: &str = "FDIP_WORKER";

/// Environment variable that turns an invocation of a harness binary into
/// a worker *daemon*: its value is the `host:port` to listen on. This is
/// how in-process harnesses (the chaos soak) spawn disposable workerds
/// without shelling out to the `fdip` CLI.
pub const WORKERD_LISTEN_ENV: &str = "FDIP_WORKERD_LISTEN";

/// Seat count advertised by an env-activated worker daemon (default 2).
pub const WORKERD_SLOTS_ENV: &str = "FDIP_WORKERD_SLOTS";

/// How often a busy worker proves liveness to its supervisor.
pub const HEARTBEAT_PERIOD: Duration = Duration::from_millis(100);

/// Becomes the worker process and never returns if [`WORKER_ENV`] is set,
/// or the workerd daemon if [`WORKERD_LISTEN_ENV`] is set; otherwise does
/// nothing. Call first thing in `main`, before argument parsing, in every
/// binary the supervisor may self-exec. [`WORKER_ENV`] is checked first:
/// a daemon's own children must become plain workers (the daemon clears
/// the listen variable for them, but first wins regardless).
pub fn maybe_worker_entry() {
    if std::env::var_os(WORKER_ENV).is_some() {
        std::process::exit(worker_main());
    }
    if let Some(listen) = std::env::var_os(WORKERD_LISTEN_ENV) {
        let listen = listen.to_string_lossy().into_owned();
        std::process::exit(workerd_main(&listen));
    }
}

/// The env-activated daemon entry: bind, announce (the spawner parses the
/// banner for the bound address), serve until killed.
fn workerd_main(listen: &str) -> i32 {
    let slots = std::env::var(WORKERD_SLOTS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2);
    let listener = match std::net::TcpListener::bind(listen) {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("fdip-workerd: cannot listen on {listen}: {err}");
            return 1;
        }
    };
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| listen.to_string());
    // Same banner as `fdip workerd` so one parser serves both paths.
    println!("fdip-workerd listening on {addr} ({slots} seat(s))");
    match crate::fleet::serve_workerd(listener, slots, &|| false) {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("fdip-workerd: serve loop failed: {err}");
            1
        }
    }
}

/// The worker protocol loop. Exit code 0 is an orderly shutdown (EOF on
/// stdin, or the supervisor went away mid-write); 2 is a protocol error —
/// the supervisor treats any unexpected exit as a crash, so precision
/// beyond that is not load-bearing.
pub fn worker_main() -> i32 {
    // Failures travel up the pipe as typed `err` frames; the default
    // hook's per-panic backtrace on stderr would only interleave garbage
    // into the supervisor's own output.
    panic::set_hook(Box::new(|_| {}));

    let stdout = Arc::new(Mutex::new(io::stdout()));
    let busy = Arc::new(AtomicBool::new(false));
    {
        // Heartbeats only while a cell is in flight: an idle worker is
        // silent, so frames never pile up while it sits in the pool.
        let stdout = Arc::clone(&stdout);
        let busy = Arc::clone(&busy);
        std::thread::spawn(move || loop {
            std::thread::sleep(HEARTBEAT_PERIOD);
            if busy.load(Ordering::Relaxed) {
                let mut out = stdout.lock().unwrap_or_else(PoisonError::into_inner);
                if write_frame(&mut *out, &WorkerReply::Heartbeat.to_json()).is_err() {
                    // Supervisor gone; nothing left to work for.
                    std::process::exit(0);
                }
            }
        });
    }

    // Workers outlive many cells (the supervisor recycles after K), so
    // cache generated traces like the in-process trace store would.
    let mut traces: HashMap<(String, usize), Trace> = HashMap::new();
    let mut stdin = io::stdin().lock();
    loop {
        let frame = match read_frame(&mut stdin) {
            Ok(Some(frame)) => frame,
            Ok(None) => return 0,
            Err(_) => return 2,
        };
        let Some(request) = RunRequest::from_json(&frame) else {
            return 2;
        };
        busy.store(true, Ordering::Relaxed);
        let reply = run_one(&request, &mut traces);
        busy.store(false, Ordering::Relaxed);
        let mut out = stdout.lock().unwrap_or_else(PoisonError::into_inner);
        if write_frame(&mut *out, &reply.to_json()).is_err() {
            return 0;
        }
    }
}

/// Simulates one requested cell, realizing any injected fault on the way.
fn run_one(request: &RunRequest, traces: &mut HashMap<(String, usize), Trace>) -> WorkerReply {
    match request.fault {
        // The crash-class faults never return: they exist to prove the
        // supervisor contains exactly this.
        Some(WorkerFault::Abort) => std::process::abort(),
        Some(WorkerFault::Hang) => loop {
            // A runaway loop that never polls CancelToken — only the
            // supervisor's hard wall-clock kill can end it.
            std::hint::spin_loop();
        },
        Some(WorkerFault::BigAlloc) => {
            // An impossible single allocation: the layout is valid (under
            // isize::MAX) but no address space backs it, so the allocator
            // reports failure and `handle_alloc_error` aborts — the
            // non-unwinding OOM shape `catch_unwind` cannot contain.
            let doomed: Vec<u8> = Vec::with_capacity(isize::MAX as usize / 2);
            std::hint::black_box(doomed.capacity());
            unreachable!("allocation of half the address space succeeded");
        }
        Some(WorkerFault::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(WorkerFault::Panic) | None => {}
    }
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        if request.fault == Some(WorkerFault::Panic) {
            panic!("injected fault: panic at ({})", request.workload.name);
        }
        let trace = traces
            .entry((request.workload.name.clone(), request.trace_len))
            .or_insert_with(|| request.workload.generate(request.trace_len));
        // The budget is enforced by the supervisor's SIGKILL, not
        // cooperatively: a fresh token keeps the simulation path identical
        // to the in-process one without ever cancelling.
        Simulator::new(&request.config, trace).run_cancellable(&CancelToken::new())
    }));
    match outcome {
        Ok(Ok(stats)) => WorkerReply::Ok {
            id: request.id,
            stats: Box::new(stats),
        },
        Ok(Err(fdip::Cancelled)) => WorkerReply::Err {
            id: request.id,
            kind: "transient".to_string(),
            message: "worker cancel token fired unexpectedly".to_string(),
            signal: None,
            code: None,
        },
        Err(payload) => WorkerReply::Err {
            id: request.id,
            kind: "panic".to_string(),
            message: crate::harness::panic_message(payload.as_ref()),
            signal: None,
            code: None,
        },
    }
}
