//! The deterministic chaos soak: sustained-failure drills for the
//! self-healing fleet.
//!
//! A soak runs N seeded rounds of real experiments against a live
//! two-daemon fleet with the shared result cache attached, while a
//! schedule derived from the seed kills and restarts a daemon mid-round,
//! injects network faults (`partition`/`slowlink`/`truncframe`/`drop`),
//! and rots cache entries between rounds. The invariants it checks are
//! the repo's core robustness story:
//!
//! * **Byte identity** — every round's rendered output must equal the
//!   fault-free baseline, byte for byte. The simulator is deterministic
//!   and cells are content-addressed, so no amount of node loss,
//!   re-dispatch, hedging, or cache corruption may change a digit.
//! * **Bounded re-simulation** — once round 0 has populated the cache,
//!   later rounds may simulate at most the entries the schedule
//!   corrupted; everything else must be served from the cache.
//! * **Convergence** — across the soak, the fleet must actually lose a
//!   node (the schedule guarantees in-flight cells on the victim) and
//!   readmit it through the backoff reprobe, booking MTTR.
//!
//! Daemons are this same binary, self-exec'd via
//! [`crate::worker::WORKERD_LISTEN_ENV`], so the soak is a single
//! process tree with no CLI dependency — `fdip chaos` and `chaos_bench`
//! are thin frontends over [`run_chaos`].

use std::io::{self, BufRead};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fdip_types::Json;

use crate::fault::{splitmix64, FaultPlan, RetryPolicy};
use crate::fleet::{FleetConfig, HedgePolicy};
use crate::harness::{Harness, HarnessStats};
use crate::{experiments, Scale};

/// Version of the persisted `results/BENCH_chaos.json` layout.
pub const CHAOS_SCHEMA_VERSION: u64 = 1;

/// How a soak is shaped. All randomness is derived from `seed` via
/// splitmix64, so two soaks with the same config are the same soak.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Rounds to run (each: fresh harness, live fleet, shared cache).
    pub rounds: usize,
    /// Master seed for the kill/fault/corruption schedule.
    pub seed: u64,
    /// Experiment ids each round runs, in order (quick scale).
    pub experiments: Vec<String>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            rounds: 5,
            seed: 1999,
            experiments: vec!["e01".to_string()],
        }
    }
}

/// What one round did and saw.
#[derive(Clone, Debug)]
pub struct ChaosRound {
    /// Round number (0-based; round 0 populates the cache cold).
    pub round: usize,
    /// The fault plan injected this round.
    pub fault_plan: String,
    /// Distinct cache entries rotted before the round (0 for round 0).
    pub corrupted: usize,
    /// Corrupt entries the attach-time scan found (and quarantined).
    pub scan_corrupt: usize,
    /// Whether the rendered output matched the fault-free baseline.
    pub byte_identical: bool,
    /// Wall-clock time for the round.
    pub wall_ms: u64,
    /// Full harness counters at round end.
    pub stats: HarnessStats,
    /// Milliseconds of node downtime recovered this round (MTTR input).
    pub downtime_ms: u64,
}

impl ChaosRound {
    fn to_json(&self) -> Json {
        Json::obj([
            ("round", Json::uint(self.round as u64)),
            ("fault_plan", Json::str(self.fault_plan.as_str())),
            ("corrupted", Json::uint(self.corrupted as u64)),
            ("scan_corrupt", Json::uint(self.scan_corrupt as u64)),
            ("byte_identical", Json::Bool(self.byte_identical)),
            ("wall_ms", Json::uint(self.wall_ms)),
            ("cells_simulated", Json::uint(self.stats.cells_simulated)),
            ("cells_failed", Json::uint(self.stats.cells_failed)),
            ("remote_cache_hits", Json::uint(self.stats.remote_cache_hits)),
            ("node_losses", Json::uint(self.stats.node_losses)),
            ("node_readmissions", Json::uint(self.stats.node_readmissions)),
            ("cells_redispatched", Json::uint(self.stats.cells_redispatched)),
            ("cells_hedged", Json::uint(self.stats.cells_hedged)),
            ("hedge_wins", Json::uint(self.stats.hedge_wins)),
            ("downtime_ms", Json::uint(self.downtime_ms)),
        ])
    }
}

/// The whole soak: per-round records plus the gate verdict.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The master seed the schedule was derived from.
    pub seed: u64,
    /// Per-round records, in order.
    pub rounds: Vec<ChaosRound>,
    /// Gate violations, empty when the soak passed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Sum of a per-round counter.
    fn total(&self, field: impl Fn(&ChaosRound) -> u64) -> u64 {
        self.rounds.iter().map(field).sum()
    }

    /// Mean time to recovery across all readmissions, in milliseconds.
    pub fn mttr_ms(&self) -> f64 {
        let readmissions = self.total(|r| r.stats.node_readmissions);
        if readmissions == 0 {
            return 0.0;
        }
        self.total(|r| r.downtime_ms) as f64 / readmissions as f64
    }

    /// The versioned `results/BENCH_chaos.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::uint(CHAOS_SCHEMA_VERSION)),
            ("bench", Json::str("chaos")),
            ("seed", Json::uint(self.seed)),
            ("rounds", Json::arr(self.rounds.iter().map(ChaosRound::to_json))),
            (
                "aggregate",
                Json::obj([
                    ("rounds", Json::uint(self.rounds.len() as u64)),
                    (
                        "byte_identical_rounds",
                        Json::uint(self.rounds.iter().filter(|r| r.byte_identical).count() as u64),
                    ),
                    ("node_losses", Json::uint(self.total(|r| r.stats.node_losses))),
                    (
                        "node_readmissions",
                        Json::uint(self.total(|r| r.stats.node_readmissions)),
                    ),
                    (
                        "cells_redispatched",
                        Json::uint(self.total(|r| r.stats.cells_redispatched)),
                    ),
                    ("cells_hedged", Json::uint(self.total(|r| r.stats.cells_hedged))),
                    ("hedge_wins", Json::uint(self.total(|r| r.stats.hedge_wins))),
                    ("mttr_ms", Json::num(self.mttr_ms())),
                ]),
            ),
            ("passed", Json::Bool(self.passed())),
            (
                "failures",
                Json::arr(self.failures.iter().map(|f| Json::str(f.as_str()))),
            ),
        ])
    }

    /// Human-readable soak summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos soak: seed {} · {} round(s)\n",
            self.seed,
            self.rounds.len()
        ));
        out.push_str(
            "round  identical  sim  hit  loss  readmit  redisp  hedged  won  wall_ms  faults\n",
        );
        for r in &self.rounds {
            out.push_str(&format!(
                "{:>5}  {:>9}  {:>3}  {:>3}  {:>4}  {:>7}  {:>6}  {:>6}  {:>3}  {:>7}  {}\n",
                r.round,
                if r.byte_identical { "yes" } else { "NO" },
                r.stats.cells_simulated,
                r.stats.remote_cache_hits,
                r.stats.node_losses,
                r.stats.node_readmissions,
                r.stats.cells_redispatched,
                r.stats.cells_hedged,
                r.stats.hedge_wins,
                r.wall_ms,
                r.fault_plan,
            ));
        }
        out.push_str(&format!(
            "aggregate: {} loss(es), {} readmission(s), mean MTTR {:.0}ms, {} hedge(s) ({} won)\n",
            self.total(|r| r.stats.node_losses),
            self.total(|r| r.stats.node_readmissions),
            self.mttr_ms(),
            self.total(|r| r.stats.cells_hedged),
            self.total(|r| r.stats.hedge_wins),
        ));
        if self.passed() {
            out.push_str("chaos soak PASSED: every gate held\n");
        } else {
            for f in &self.failures {
                out.push_str(&format!("CHECK FAILED: {f}\n"));
            }
        }
        out
    }
}

/// One self-exec'd worker daemon under soak management.
struct ChaosDaemon {
    child: Child,
    addr: String,
}

impl ChaosDaemon {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Self-execs the current binary as a workerd listening on `listen`
/// (`127.0.0.1:0` for an ephemeral port; a concrete `host:port` to
/// restart a killed daemon in place) and parses the banner for the bound
/// address.
fn spawn_daemon(listen: &str, slots: usize) -> io::Result<ChaosDaemon> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .env(crate::worker::WORKERD_LISTEN_ENV, listen)
        .env(crate::worker::WORKERD_SLOTS_ENV, slots.to_string())
        .env_remove(crate::worker::WORKER_ENV)
        .env_remove("FDIP_FAULTS")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = io::BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner)?;
    let addr = banner
        .strip_prefix("fdip-workerd listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .map(str::to_string);
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected workerd banner: {banner:?}"),
        ));
    };
    // Keep the daemon's stdout drained so it can never block on the pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });
    Ok(ChaosDaemon { child, addr })
}

/// Restart with patience: the port was just vacated by a SIGKILL and the
/// OS may briefly refuse the rebind.
fn respawn_daemon(addr: &str, slots: usize) -> io::Result<ChaosDaemon> {
    let mut last = None;
    for _ in 0..40 {
        match spawn_daemon(addr, slots) {
            Ok(daemon) => return Ok(daemon),
            Err(err) => {
                last = Some(err);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("respawn failed")))
}

/// Rots up to `max` distinct cache entries (one flipped payload byte
/// each), seeded. Returns how many were actually corrupted.
fn corrupt_cache_entries(dir: &Path, seed: u64, max: usize) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("cell"))
        .collect();
    files.sort();
    if files.is_empty() {
        return 0;
    }
    let wanted = 1 + (splitmix64(seed) as usize % max.max(1));
    let mut picked = std::collections::BTreeSet::new();
    for k in 0..wanted {
        picked.insert(splitmix64(seed ^ (k as u64 + 1)) as usize % files.len());
    }
    let mut corrupted = 0;
    for index in picked {
        let path = &files[index];
        let Ok(mut bytes) = std::fs::read(path) else {
            continue;
        };
        if bytes.is_empty() {
            continue;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        if std::fs::write(path, &bytes).is_ok() {
            corrupted += 1;
        }
    }
    corrupted
}

/// Renders the fault-free, fleet-free reference output for `experiments`.
fn baseline_text(experiments_ids: &[String]) -> Result<String, String> {
    let harness = Harness::with_threads(4);
    let mut out = String::new();
    for id in experiments_ids {
        let exp = experiments::find(id).ok_or_else(|| format!("unknown experiment {id:?}"))?;
        out.push_str(&exp.run(&harness, Scale::quick()).to_text());
    }
    Ok(out)
}

/// Runs the soak. See the module docs for the invariants; the returned
/// report carries every violation in `failures` (an empty list is a
/// pass). Infrastructure failures — a daemon that cannot spawn, an
/// unknown experiment id — are errors; *chaos* failures are report
/// entries, because a soak that dies mid-drill has not measured anything.
///
/// # Errors
///
/// Only for infrastructure that never came up (daemon spawn, cache dir).
pub fn run_chaos(config: &ChaosConfig) -> io::Result<ChaosReport> {
    let baseline = baseline_text(&config.experiments)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;

    let cache_dir = std::env::temp_dir().join(format!(
        "fdip-chaos-{}-{}",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::create_dir_all(&cache_dir)?;

    const SLOTS: usize = 2;
    let daemons = Arc::new(Mutex::new(vec![
        spawn_daemon("127.0.0.1:0", SLOTS)?,
        spawn_daemon("127.0.0.1:0", SLOTS)?,
    ]));
    let addrs: Vec<String> = daemons
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|d| d.addr.clone())
        .collect();

    let mut rounds = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for round in 0..config.rounds {
        let round_seed = splitmix64(config.seed.wrapping_add(round as u64));

        // Between-rounds sabotage: rot cache entries so the round must
        // re-simulate exactly those cells (and no more).
        let corrupted = if round == 0 {
            0
        } else {
            corrupt_cache_entries(&cache_dir, round_seed, 2)
        };

        // Round 0 runs every cell slow (guaranteeing in-flight work on
        // both nodes when the kill lands); later rounds add one seeded
        // fleet fault on top.
        let fault_plan = if round == 0 {
            "slow@*/*:1200".to_string()
        } else {
            let kinds = ["partition@*/*", "slowlink@*/*:80", "truncframe@*/*", "drop@*/*"];
            let pick = kinds[(splitmix64(round_seed ^ 0xFA) as usize) % kinds.len()];
            format!("slow@*/*:800,{pick}")
        };

        let harness = Harness::with_threads(4);
        harness.set_retry_policy(RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(25),
            cell_budget: Some(Duration::from_secs(30)),
        });
        harness.set_fault_plan(Some(
            FaultPlan::parse(&fault_plan)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        ));
        let fleet_config = FleetConfig {
            addrs: addrs.clone(),
            connect_timeout: Duration::from_secs(3),
            heartbeat_timeout: Duration::from_millis(700),
            reprobe_base: Duration::from_millis(150),
            hedge: HedgePolicy::After(Duration::from_millis(400)),
        };
        harness.enable_fleet(fleet_config)?;
        let scan = harness.attach_cache(&cache_dir)?;

        // The kill/restart schedule, deterministic per round: SIGKILL a
        // seeded victim mid-round, hold it down, restart it in place.
        let victim = (splitmix64(round_seed ^ 0x5EED) as usize) % addrs.len();
        let (kill_at, down_for) = if round == 0 {
            (Duration::from_millis(600), Duration::from_millis(450))
        } else {
            (Duration::from_millis(200), Duration::from_millis(300))
        };
        let killer = {
            let daemons = Arc::clone(&daemons);
            std::thread::spawn(move || -> Result<(), String> {
                std::thread::sleep(kill_at);
                let (addr, slots) = {
                    let mut guard = daemons
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard[victim].kill();
                    (guard[victim].addr.clone(), SLOTS)
                };
                std::thread::sleep(down_for);
                let restarted = respawn_daemon(&addr, slots)
                    .map_err(|e| format!("round restart of {addr} failed: {e}"))?;
                daemons
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[victim] = restarted;
                Ok(())
            })
        };

        let started = Instant::now();
        let mut text = String::new();
        let mut run_err = None;
        for id in &config.experiments {
            match experiments::find(id) {
                Some(exp) => text.push_str(&exp.run(&harness, Scale::quick()).to_text()),
                None => run_err = Some(format!("unknown experiment {id:?}")),
            }
        }
        let wall_ms = started.elapsed().as_millis() as u64;
        if let Some(err) = run_err {
            failures.push(err);
        }
        match killer.join() {
            Ok(Ok(())) => {}
            Ok(Err(err)) => failures.push(format!("round {round}: {err}")),
            Err(_) => failures.push(format!("round {round}: kill/restart thread panicked")),
        }

        let stats = harness.stats();
        let downtime_ms = harness.fleet_stats().readmission_downtime_ms;
        let byte_identical = text == baseline;
        if !byte_identical {
            failures.push(format!(
                "round {round}: output diverged from the fault-free baseline"
            ));
        }
        if stats.cells_failed > 0 {
            failures.push(format!(
                "round {round}: {} cell(s) failed terminally",
                stats.cells_failed
            ));
        }
        if round > 0 && stats.cells_simulated > corrupted as u64 {
            failures.push(format!(
                "round {round}: simulated {} cell(s) but only {corrupted} were corrupted — \
                 re-simulation is not bounded by the cache",
                stats.cells_simulated
            ));
        }
        rounds.push(ChaosRound {
            round,
            fault_plan,
            corrupted,
            scan_corrupt: scan.corrupt,
            byte_identical,
            wall_ms,
            stats,
            downtime_ms,
        });
        // Dropping the harness drops the fleet (joining its reprobe
        // thread) so the next round starts with fresh health state.
        drop(harness);
    }

    let total = |field: fn(&ChaosRound) -> u64| rounds.iter().map(field).sum::<u64>();
    if total(|r| r.stats.node_losses) == 0 {
        failures.push("the soak never lost a node — the schedule did not bite".to_string());
    }
    if total(|r| r.stats.node_readmissions) == 0 {
        failures.push("the soak never readmitted a node — recovery was not exercised".to_string());
    }

    for daemon in daemons
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter_mut()
    {
        daemon.kill();
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    Ok(ChaosReport {
        seed: config.seed,
        rounds,
        failures,
    })
}
