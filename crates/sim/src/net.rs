//! The fleet's network layer: typed frame decoding, handshake messages,
//! and deadline-carrying TCP streams.
//!
//! The PR 5 supervisor speaks length-prefixed JSON frames over a worker's
//! stdin/stdout — a trusted transport where the only failure modes are
//! EOF and a crashed peer. Moving the same frames onto TCP adds failure
//! modes a pipe never has: a peer that vanishes mid-frame, a partition
//! that silences the stream while both ends live, and bytes that were
//! corrupted (or hostile) in flight. This module gives the frame codec
//! teeth for that environment:
//!
//! * [`FrameError`] — a typed decode error. The length prefix is capped
//!   *before* any allocation ([`FrameError::Oversized`]), so a corrupted
//!   or attacker-controlled prefix can never drive an unbounded
//!   pre-allocation; truncation and garbage are distinguished from plain
//!   I/O failure so callers can count and classify.
//! * [`read_frame`] / [`write_frame`] — the codec itself, generic over
//!   `Read`/`Write` so the same functions serve pipes and sockets. The
//!   pipe-facing [`crate::ipc`] wrappers delegate here.
//! * [`Hello`] / [`Welcome`] — the registration handshake. A dialing
//!   supervisor proves protocol version and build fingerprint before the
//!   worker daemon accepts cells; a mismatched peer is refused with a
//!   reason rather than fed frames it may misinterpret.
//! * [`NetFault`] — the injectable network failures (`drop`, `partition`,
//!   `slowlink`, `truncframe`) the fleet realizes at its transport layer
//!   so every recovery path is drill-testable deterministically.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fdip_types::Json;

/// Upper bound on one frame, shared with the pipe transport
/// ([`crate::ipc::MAX_FRAME_BYTES`] re-exports this value). A run request
/// (config + workload) is a few KiB and a reply smaller still; anything
/// larger means a desynchronized, corrupted, or hostile stream.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Fleet wire-protocol version; bump on any incompatible frame change so
/// a mixed-version fleet refuses to pair instead of mis-decoding.
pub const PROTOCOL_VERSION: u64 = 1;

/// The build fingerprint exchanged during registration. Cells are keyed
/// by the config's `Debug` fingerprint and results are reused verbatim,
/// so a supervisor must never accept stats from a worker built from a
/// different simulator: crate version changes cover that (the workspace
/// versions move together), and the journal schema version guards the
/// stats encoding itself.
///
/// A non-empty `FDIP_FLEET_TAG` environment variable is appended to the
/// fingerprint, segregating clusters that must not pair (and giving
/// drift-refusal drills a deterministic lever: restart a daemon with a
/// different tag and every re-handshake is refused by name).
pub fn build_fingerprint() -> String {
    let mut fingerprint = format!(
        "fdip-sim {} proto {PROTOCOL_VERSION} journal {}",
        env!("CARGO_PKG_VERSION"),
        crate::journal::JOURNAL_SCHEMA_VERSION
    );
    if let Ok(tag) = std::env::var("FDIP_FLEET_TAG") {
        if !tag.is_empty() {
            fingerprint.push_str(" tag ");
            fingerprint.push_str(&tag);
        }
    }
    fingerprint
}

/// Why a frame could not be decoded from the stream.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix claimed more than [`MAX_FRAME_BYTES`]. Detected
    /// before any buffer is sized from it, so a corrupt or hostile prefix
    /// costs a closed connection, never an allocation.
    Oversized {
        /// The length the prefix claimed.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The stream ended inside a frame (torn prefix or short body).
    Truncated,
    /// The frame arrived whole but its body was not valid JSON text.
    Garbage(String),
    /// The underlying transport failed (includes read timeouts, which
    /// callers poll for via [`FrameError::is_timeout`]).
    Io(io::Error),
}

impl FrameError {
    /// Whether this is a read-deadline expiry rather than a dead peer —
    /// the poll tick the fleet's liveness loop is built on.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max} byte cap")
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::Garbage(detail) => write!(f, "undecodable frame: {detail}"),
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(io) => io,
            FrameError::Truncated => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
            FrameError::Oversized { .. } | FrameError::Garbage(_) => {
                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
            }
        }
    }
}

/// Writes `doc` as one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates I/O errors; rejects frames over [`MAX_FRAME_BYTES`].
pub fn write_frame(writer: &mut impl Write, doc: &Json) -> io::Result<()> {
    let body = doc.to_string();
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES} cap",
                body.len()
            ),
        ));
    }
    let len = body.len() as u32;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF *at a frame boundary* (the
/// peer closed between messages — the orderly shutdown signal); EOF
/// mid-frame is [`FrameError::Truncated`].
///
/// The length prefix is validated against [`MAX_FRAME_BYTES`] before the
/// body buffer is allocated, so no input can size an allocation.
///
/// # Errors
///
/// [`FrameError`] as documented per variant; a read deadline on the
/// underlying stream surfaces as `Io` with `is_timeout() == true`.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        let n = reader.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(FrameError::Truncated);
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut body = vec![0u8; len];
    if let Err(e) = reader.read_exact(&mut body) {
        return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        });
    }
    let text = std::str::from_utf8(&body)
        .map_err(|e| FrameError::Garbage(format!("non-UTF-8 body: {e}")))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| FrameError::Garbage(format!("bad JSON: {e}")))
}

/// The supervisor's opening frame on a fresh connection: who it is built
/// as, so the worker daemon can refuse a mismatched peer up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The dialer's [`PROTOCOL_VERSION`].
    pub protocol: u64,
    /// The dialer's [`build_fingerprint`].
    pub fingerprint: String,
}

impl Hello {
    /// This build's hello.
    pub fn current() -> Hello {
        Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint: build_fingerprint(),
        }
    }

    /// Encodes the handshake frame.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("op", Json::str("hello")),
            ("protocol", Json::uint(self.protocol)),
            ("fingerprint", Json::str(&self.fingerprint)),
        ])
    }

    /// Decodes a handshake frame.
    pub fn from_json(doc: &Json) -> Option<Hello> {
        if doc.get("op")?.as_str()? != "hello" {
            return None;
        }
        Some(Hello {
            protocol: doc.get("protocol")?.as_u64()?,
            fingerprint: doc.get("fingerprint")?.as_str()?.to_string(),
        })
    }
}

/// The worker daemon's answer to a [`Hello`]: registration accepted (with
/// the daemon's cell-slot count) or refused with a reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Welcome {
    /// Handshake accepted; the daemon will serve cells on this connection.
    Accepted {
        /// Concurrent cell slots the daemon offers (the dialer opens one
        /// connection per slot).
        slots: usize,
    },
    /// Handshake refused (version/fingerprint mismatch, or draining).
    Refused {
        /// Human-readable refusal reason.
        reason: String,
    },
}

impl Welcome {
    /// Encodes the handshake answer.
    pub fn to_json(&self) -> Json {
        match self {
            Welcome::Accepted { slots } => Json::obj([
                ("op", Json::str("welcome")),
                ("slots", Json::uint(*slots as u64)),
            ]),
            Welcome::Refused { reason } => {
                Json::obj([("op", Json::str("reject")), ("reason", Json::str(reason))])
            }
        }
    }

    /// Decodes a handshake answer.
    pub fn from_json(doc: &Json) -> Option<Welcome> {
        match doc.get("op")?.as_str()? {
            "welcome" => Some(Welcome::Accepted {
                slots: usize::try_from(doc.get("slots")?.as_u64()?).ok()?,
            }),
            "reject" => Some(Welcome::Refused {
                reason: doc.get("reason")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

/// The drain notice a worker daemon sends before closing an idle
/// connection: "orderly goodbye", so the dialer retires the slot without
/// charging a node loss.
pub fn bye_frame() -> Json {
    Json::obj([("op", Json::str("bye"))])
}

/// Whether `doc` is a drain notice.
pub fn is_bye(doc: &Json) -> bool {
    doc.get("op").and_then(Json::as_str) == Some("bye")
}

/// A deterministic network fault the fleet transport realizes while
/// dispatching one cell (see the `drop`/`partition`/`slowlink`/
/// `truncframe` kinds in [`crate::fault::FaultPlan`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Sever the connection instead of dispatching — a node dying the
    /// instant it was picked.
    Drop,
    /// Dispatch, then receive nothing (heartbeats included) — a network
    /// partition with both ends alive. Recovery is the heartbeat-loss
    /// path.
    Partition,
    /// Delay the dispatch by this long — a congested or lossy link.
    Slowlink(Duration),
    /// Send a truncated, garbage-bytes frame instead of the request —
    /// corruption in flight. The worker daemon must reject it and the
    /// dialer must recover by re-dispatching.
    TruncFrame,
}

/// Dials `addr` with `timeout` applied to the connect *and* installed as
/// the stream's read/write deadline — every fleet I/O is bounded, so a
/// silent peer can stall a dispatch by at most one deadline, never
/// forever.
///
/// # Errors
///
/// Resolution and connection failures, or an address that resolves to
/// nothing.
pub fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{addr}: no usable socket address"),
    );
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(doc: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, doc).unwrap();
        read_frame(&mut buf.as_slice()).unwrap().unwrap()
    }

    #[test]
    fn handshake_frames_round_trip() {
        let hello = Hello::current();
        assert_eq!(hello.protocol, PROTOCOL_VERSION);
        assert_eq!(Hello::from_json(&roundtrip(&hello.to_json())), Some(hello));

        for welcome in [
            Welcome::Accepted { slots: 3 },
            Welcome::Refused {
                reason: "protocol 99 != 1".to_string(),
            },
        ] {
            assert_eq!(
                Welcome::from_json(&roundtrip(&welcome.to_json())),
                Some(welcome)
            );
        }
        assert!(is_bye(&roundtrip(&bye_frame())));
        assert!(!is_bye(&Hello::current().to_json()));
        assert_eq!(Hello::from_json(&bye_frame()), None);
        assert_eq!(Welcome::from_json(&bye_frame()), None);
    }

    #[test]
    fn oversized_length_prefix_is_typed_and_never_allocated() {
        // A 4 GiB claim must come back as Oversized without any attempt
        // to buffer it — the body bytes are absent and irrelevant.
        let mut stream: &[u8] = &u32::MAX.to_be_bytes();
        match read_frame(&mut stream) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // One past the cap still trips it; the cap itself does not.
        let over = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &over[..]),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_at_every_byte_is_typed() {
        // Mirrors the trace-codec truncation sweeps: a valid frame cut at
        // any interior byte is Truncated — never a panic, never a bogus
        // document, never a misclassified I/O error.
        let mut full = Vec::new();
        write_frame(&mut full, &Hello::current().to_json()).unwrap();
        for cut in 1..full.len() {
            let mut stream = &full[..cut];
            match read_frame(&mut stream) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // Cut at zero is the clean-EOF boundary.
        assert!(read_frame(&mut &full[..0]).unwrap().is_none());
    }

    #[test]
    fn garbage_bodies_are_rejected_not_trusted() {
        for body in [
            &b"not json at all"[..],
            b"{\"op\": ",
            b"\xff\xfe\xfd\xfc",
            b"[1, 2",
        ] {
            let mut stream = Vec::new();
            stream.extend_from_slice(&(body.len() as u32).to_be_bytes());
            stream.extend_from_slice(body);
            match read_frame(&mut stream.as_slice()) {
                Err(FrameError::Garbage(_)) => {}
                other => panic!("{body:?}: expected Garbage, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_errors_convert_to_io_and_display() {
        let over = FrameError::Oversized { len: 99, max: 10 };
        assert!(over.to_string().contains("99"));
        assert_eq!(io::Error::from(over).kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            io::Error::from(FrameError::Truncated).kind(),
            io::ErrorKind::UnexpectedEof
        );
        let timeout = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "deadline"));
        assert!(timeout.is_timeout());
        assert!(!FrameError::Truncated.is_timeout());
    }

    #[test]
    fn fingerprint_names_the_protocol_and_schema() {
        let fp = build_fingerprint();
        assert!(fp.contains("proto 1"), "{fp}");
        assert!(fp.contains("journal"), "{fp}");
    }
}
