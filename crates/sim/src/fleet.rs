//! The distributed tier: the fleet dispatcher behind `--fleet`, the
//! `fdip workerd` daemon loop, and the shared on-disk result cache.
//!
//! PR 5's supervisor contains cell failures inside one machine; this
//! module stretches the same protocol across machines without weakening
//! any of its guarantees:
//!
//! * **[`Fleet`]** — the client side. One slot per advertised worker
//!   seat, each slot a TCP connection to a registered node. Dispatch
//!   routes by the cell's content hash (same cell → same node → warm
//!   trace cache), liveness rides the PR 5 heartbeat discipline plus
//!   read deadlines, and every way a node can vanish — killed process,
//!   severed link, silent partition, corrupt frame — resolves to the
//!   *retryable* [`CellError::Crashed`], so a dead node costs
//!   re-dispatch, never a failed run.
//! * **[`serve_workerd`]** — the daemon side. Each accepted connection
//!   is handshake-checked ([`Hello`]/[`Welcome`]) and then proxied to a
//!   supervised self-exec'd child worker (the PR 5 worker, verbatim), so
//!   a cell that aborts or hangs remotely kills a disposable child, not
//!   the daemon. A child's death is reported back as a typed `crashed`
//!   reply carrying the exit signal/code. On shutdown the daemon drains:
//!   in-flight cells finish, new ones are refused with a `bye`, and the
//!   process exits 0.
//! * **[`ResultCache`]** — the cluster-wide memo. One CRC32-framed
//!   [`JournalEntry`] per file, content-addressed by
//!   `(workload, trace_len, config-fingerprint)`, written atomically
//!   ([`crate::persist::write_atomic`]). Consulted before any dispatch,
//!   local or remote, so an identical cell simulates exactly once
//!   *cluster-wide*; corrupt entries are skipped and counted, never
//!   trusted.
//!
//! Fault drills for every path above are injectable deterministically
//! via the `drop`/`partition`/`slowlink`/`truncframe` kinds in
//! [`crate::fault::FaultPlan`], realized here as [`NetFault`]s.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fdip::{FrontendConfig, SimStats};
use fdip_types::{Json, ToJson};

use crate::fault::CellError;
use crate::harness::lock;
use crate::ipc::{read_frame, write_frame, RunRequest, WorkerFault, WorkerReply};
use crate::journal::{crc32, split_crc_frame, JournalEntry};
use crate::net::{self, bye_frame, is_bye, Hello, NetFault, Welcome, PROTOCOL_VERSION};
use crate::workload::WorkloadSpec;

/// Read-poll quantum for fleet streams: how often a blocked read wakes to
/// check budget/heartbeat/drain deadlines.
const POLL: Duration = Duration::from_millis(100);

/// How often the daemon's accept loop polls for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// How long a fresh connection gets to complete its handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Cells a proxied child runs before being retired and respawned fresh
/// (same leak bound as the local supervisor's `recycle_after`).
const RECYCLE_AFTER: u64 = 64;

/// Connection and liveness policy for a [`Fleet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker daemon addresses (`host:port`).
    pub addrs: Vec<String>,
    /// Dial timeout, also installed as each stream's write deadline.
    pub connect_timeout: Duration,
    /// Silence longer than this from a busy node means it is partitioned
    /// or dead, not slow; the cell is reclassified for re-dispatch.
    pub heartbeat_timeout: Duration,
}

impl FleetConfig {
    /// Policy for `addrs` with defaults, overridable for drills via the
    /// `FDIP_FLEET_CONNECT_MS` / `FDIP_FLEET_HEARTBEAT_MS` environment
    /// variables (tests shrink the heartbeat so partition drills converge
    /// in milliseconds, not seconds).
    pub fn new(addrs: Vec<String>) -> FleetConfig {
        let ms = |var: &str, default: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        FleetConfig {
            addrs,
            connect_timeout: Duration::from_millis(ms("FDIP_FLEET_CONNECT_MS", 3_000)),
            heartbeat_timeout: Duration::from_millis(ms("FDIP_FLEET_HEARTBEAT_MS", 5_000)),
        }
    }
}

/// Counters the fleet accumulates; folded into
/// [`HarnessStats`](crate::harness::HarnessStats) and exported by
/// `fdip-serve` `/metrics`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Worker seats registered across all reachable nodes.
    pub fleet_workers: u64,
    /// Nodes that went silent mid-run (one per down-transition, not per
    /// connection — a killed daemon with four seats is one loss).
    pub node_losses: u64,
    /// Cell attempts re-dispatched after a first attempt failed.
    pub cells_redispatched: u64,
}

/// One registered node.
#[derive(Debug)]
struct NodeState {
    addr: String,
    /// Set on a silent loss, cleared by any successful dial or reply;
    /// routing prefers nodes not currently marked lost.
    lost: AtomicBool,
}

/// One dispatch seat: which node it belongs to and its (lazily dialed,
/// re-dialed after loss) connection.
#[derive(Debug)]
struct SlotConn {
    conn: Option<TcpStream>,
}

/// How one seat attempt ended, distinguishing "could not even reach the
/// node" (re-route within the same attempt) from a real cell outcome.
enum SlotOutcome {
    /// Dialing the node failed; the attempt has not been spent.
    Unreachable(CellError),
    /// The cell ran (or died) on the node; this is the attempt's result.
    Final(CellError),
}

/// The client side of distributed cell execution: a pool of TCP seats
/// across registered worker daemons, presenting the same `run_cell`
/// contract as the local [`Supervisor`](crate::supervisor::Supervisor).
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    nodes: Vec<NodeState>,
    /// `slot_nodes[i]` is the node index slot `i` belongs to (immutable
    /// after construction, so routing can consult it without slot locks).
    slot_nodes: Vec<usize>,
    slots: Vec<Mutex<SlotConn>>,
    free: Mutex<Vec<usize>>,
    available: Condvar,
    next_id: AtomicU64,
    node_losses: AtomicU64,
    cells_redispatched: AtomicU64,
}

impl Fleet {
    /// Registers with every address in `config`, learning each node's
    /// seat count from its handshake. Unreachable nodes are warned about
    /// and skipped — the fleet sails with whoever showed up.
    ///
    /// # Errors
    ///
    /// Only if *no* node is reachable: an empty fleet cannot run cells.
    pub fn connect(config: FleetConfig) -> io::Result<Fleet> {
        let mut nodes = Vec::new();
        let mut slot_nodes = Vec::new();
        let mut slots = Vec::new();
        for addr in &config.addrs {
            match dial(addr, config.connect_timeout) {
                Ok((stream, seats)) => {
                    let node = nodes.len();
                    nodes.push(NodeState {
                        addr: addr.clone(),
                        lost: AtomicBool::new(false),
                    });
                    let mut first = Some(stream);
                    for _ in 0..seats.max(1) {
                        slot_nodes.push(node);
                        slots.push(Mutex::new(SlotConn { conn: first.take() }));
                    }
                }
                Err(err) => {
                    eprintln!(
                        "fleet: {addr}: unreachable at startup ({err}); continuing without it"
                    );
                }
            }
        }
        if slots.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "no fleet node is reachable",
            ));
        }
        let free = (0..slots.len()).rev().collect();
        Ok(Fleet {
            config,
            nodes,
            slot_nodes,
            slots,
            free: Mutex::new(free),
            available: Condvar::new(),
            next_id: AtomicU64::new(1),
            node_losses: AtomicU64::new(0),
            cells_redispatched: AtomicU64::new(0),
        })
    }

    /// Total registered seats (the harness sizes its thread pool to this).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Registered nodes and their seat counts, for startup reporting.
    pub fn nodes(&self) -> Vec<(String, usize)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let seats = self.slot_nodes.iter().filter(|&&s| s == i).count();
                (n.addr.clone(), seats)
            })
            .collect()
    }

    /// Current counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            fleet_workers: self.slots.len() as u64,
            node_losses: self.node_losses.load(Ordering::Relaxed),
            cells_redispatched: self.cells_redispatched.load(Ordering::Relaxed),
        }
    }

    /// Runs one cell attempt somewhere on the fleet, blocking until a
    /// seat is free. Same contract as the local supervisor's `run_cell`,
    /// plus an optional [`NetFault`] realized at this transport.
    ///
    /// Routing prefers the node picked by the cell's content hash (warm
    /// trace caches), rotated by attempt number so a re-dispatch lands
    /// elsewhere, restricted to nodes not currently marked lost. Within
    /// one attempt, an unreachable node is re-routed around rather than
    /// charged against the retry budget — as long as one node answers,
    /// dead ones cost nothing but a refused dial.
    ///
    /// # Errors
    ///
    /// Typed exactly like the local path: [`CellError::Timeout`] for a
    /// budget preemption (the connection is severed, which kills the
    /// remote child), [`CellError::Crashed`] for silent node loss or a
    /// remotely crashed child, [`CellError::Panic`] /
    /// [`CellError::Transient`] when the remote worker survived and said
    /// so itself.
    #[allow(clippy::too_many_arguments)]
    pub fn run_cell(
        &self,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: Option<WorkerFault>,
        net_fault: Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, CellError> {
        if attempt > 1 {
            self.cells_redispatched.fetch_add(1, Ordering::Relaxed);
        }
        let key = crate::fault::fnv1a(&format!(
            "{}\u{0}{}\u{0}{}",
            workload.name,
            trace_len,
            crate::harness::config_fingerprint(config)
        ));
        let mut last = CellError::Transient {
            message: "fleet had no node to dispatch to".to_string(),
            attempts: attempt,
        };
        // One re-route per registered node, so a single attempt walks the
        // whole fleet before conceding.
        for round in 0..self.nodes.len() {
            let preferred = self.route(key, attempt, round);
            let index = self.acquire_slot(preferred);
            let outcome = self.run_on_slot(
                index, workload, trace_len, budget_ms, &fault, &net_fault, config, attempt,
            );
            self.release_slot(index);
            match outcome {
                Ok(stats) => return Ok(stats),
                Err(SlotOutcome::Unreachable(err)) => last = err,
                Err(SlotOutcome::Final(err)) => return Err(err),
            }
        }
        Err(last)
    }

    /// Picks the preferred node for `(content key, attempt, re-route
    /// round)`: hash-routed over nodes not marked lost, falling back to
    /// the full set (a probe that re-discovers recovered nodes) when
    /// every node is marked lost.
    fn route(&self, key: u64, attempt: u32, round: usize) -> usize {
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].lost.load(Ordering::Relaxed))
            .collect();
        let pool: &[usize] = if live.is_empty() {
            &self.slot_nodes // never empty; values are node indices
        } else {
            &live
        };
        let spin = key
            .wrapping_add(u64::from(attempt.saturating_sub(1)))
            .wrapping_add(round as u64);
        pool[(spin % pool.len() as u64) as usize]
    }

    fn acquire_slot(&self, preferred: usize) -> usize {
        let mut free = lock(&self.free);
        loop {
            if let Some(pos) = free.iter().rposition(|&i| self.slot_nodes[i] == preferred) {
                return free.remove(pos);
            }
            // Any seat on a node not marked lost beats waiting.
            if let Some(pos) = free
                .iter()
                .rposition(|&i| !self.nodes[self.slot_nodes[i]].lost.load(Ordering::Relaxed))
            {
                return free.remove(pos);
            }
            // Every free seat is on a lost node. Probe one only when the
            // whole fleet is marked lost (the probe is how a recovered
            // node is re-discovered); while any node is live, waiting for
            // one of its busy seats beats burning the retry budget on
            // refused dials.
            let any_live =
                (0..self.nodes.len()).any(|n| !self.nodes[n].lost.load(Ordering::Relaxed));
            if !any_live {
                if let Some(index) = free.pop() {
                    return index;
                }
            }
            free = self
                .available
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn release_slot(&self, index: usize) {
        lock(&self.free).push(index);
        self.available.notify_one();
    }

    /// Books a silent loss of `node` (once per down-transition) and
    /// returns the retryable error that sends the cell back through the
    /// harness's retry loop.
    fn node_lost(&self, node: usize, attempt: u32) -> CellError {
        if !self.nodes[node].lost.swap(true, Ordering::Relaxed) {
            self.node_losses.fetch_add(1, Ordering::Relaxed);
        }
        CellError::Crashed {
            signal: None,
            code: None,
            attempts: attempt,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_on_slot(
        &self,
        index: usize,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: &Option<WorkerFault>,
        net_fault: &Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, SlotOutcome> {
        let node_index = self.slot_nodes[index];
        let mut slot = lock(&self.slots[index]);
        if slot.conn.is_none() {
            match dial(&self.nodes[node_index].addr, self.config.connect_timeout) {
                Ok((stream, _seats)) => {
                    slot.conn = Some(stream);
                    self.nodes[node_index].lost.store(false, Ordering::Relaxed);
                }
                Err(err) => {
                    // Could not even reach the node: mark it lost so
                    // routing steers away, and let run_cell re-route this
                    // same attempt.
                    if !self.nodes[node_index].lost.swap(true, Ordering::Relaxed) {
                        self.node_losses.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(SlotOutcome::Unreachable(CellError::Transient {
                        message: format!(
                            "fleet dial {} failed: {err}",
                            self.nodes[node_index].addr
                        ),
                        attempts: attempt,
                    }));
                }
            }
        }

        // Realize pre-dispatch network faults.
        match net_fault {
            Some(NetFault::Slowlink(delay)) => std::thread::sleep(*delay),
            Some(NetFault::Drop) => {
                slot.conn = None;
                return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
            }
            _ => {}
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let stream = slot.conn.as_mut().expect("connection just ensured");
        let sent = if matches!(net_fault, Some(NetFault::TruncFrame)) {
            // Corruption in flight: a complete frame whose body is
            // garbage bytes. The daemon must reject it and close; we
            // recover below through the ordinary loss path.
            let garbage = b"\xff\xfe deliberately corrupt fleet frame";
            let mut raw = Vec::with_capacity(4 + garbage.len());
            raw.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
            raw.extend_from_slice(garbage);
            stream.write_all(&raw).and_then(|()| stream.flush())
        } else {
            let request = RunRequest {
                id,
                workload: workload.clone(),
                trace_len,
                budget_ms,
                fault: fault.clone(),
                config: config.clone(),
            };
            net::write_frame(stream, &request.to_json())
        };
        if sent.is_err() {
            slot.conn = None;
            return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
        }

        let budget_deadline =
            (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
        let mut heartbeat_deadline = Instant::now() + self.config.heartbeat_timeout;

        // A partition delivers nothing — not the heartbeats that are in
        // fact arriving, not even the peer's FIN. Going fully deaf makes
        // the heartbeat deadline fire exactly as a real partition would.
        if matches!(net_fault, Some(NetFault::Partition)) {
            loop {
                std::thread::sleep(POLL);
                let now = Instant::now();
                if budget_deadline.is_some_and(|deadline| now >= deadline) {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(CellError::Timeout { budget_ms }));
                }
                if now >= heartbeat_deadline {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                }
            }
        }

        loop {
            let stream = slot.conn.as_mut().expect("connection live while waiting");
            match net::read_frame(stream) {
                Ok(Some(frame)) => {
                    if is_bye(&frame) {
                        // Orderly drain, not a crash: retire the seat's
                        // connection without charging a node loss.
                        slot.conn = None;
                        return Err(SlotOutcome::Final(CellError::Transient {
                            message: format!(
                                "worker daemon {} is draining; cell re-dispatched",
                                self.nodes[node_index].addr
                            ),
                            attempts: attempt,
                        }));
                    }
                    match WorkerReply::from_json(&frame) {
                        Some(WorkerReply::Heartbeat) => {
                            heartbeat_deadline = Instant::now() + self.config.heartbeat_timeout;
                        }
                        Some(WorkerReply::Ok { id: rid, stats }) if rid == id => {
                            self.nodes[node_index].lost.store(false, Ordering::Relaxed);
                            return Ok(*stats);
                        }
                        Some(WorkerReply::Err {
                            id: rid,
                            kind,
                            message,
                            signal,
                            code,
                        }) if rid == id => {
                            return Err(SlotOutcome::Final(if kind == "crashed" {
                                // The remote child died; the daemon told
                                // us so and will close this connection.
                                // Typed like a local crash — retryable.
                                slot.conn = None;
                                CellError::Crashed {
                                    signal,
                                    code,
                                    attempts: attempt,
                                }
                            } else if kind == "panic" {
                                CellError::Panic {
                                    message,
                                    attempts: attempt,
                                }
                            } else {
                                CellError::Transient {
                                    message,
                                    attempts: attempt,
                                }
                            }));
                        }
                        // A reply for a superseded id (kill raced a
                        // completion): drop it.
                        Some(_) => {}
                        None => {
                            // The peer speaks frames but not our protocol:
                            // a corrupt or hostile stream. Sever it.
                            slot.conn = None;
                            return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                        }
                    }
                }
                Ok(None) => {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                }
                Err(err) if err.is_timeout() => {
                    let now = Instant::now();
                    if budget_deadline.is_some_and(|deadline| now >= deadline) {
                        // Severing the connection is the remote SIGKILL:
                        // the daemon kills the child when its client
                        // vanishes. Intentional preemption, not a loss.
                        slot.conn = None;
                        return Err(SlotOutcome::Final(CellError::Timeout { budget_ms }));
                    }
                    if now >= heartbeat_deadline {
                        slot.conn = None;
                        return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                    }
                }
                Err(_) => {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                }
            }
        }
    }
}

/// Dials one node and completes the registration handshake, returning the
/// stream (read deadline set to the poll quantum) and the node's
/// advertised seat count.
fn dial(addr: &str, timeout: Duration) -> io::Result<(TcpStream, usize)> {
    let mut stream = net::connect(addr, timeout)?;
    net::write_frame(&mut stream, &Hello::current().to_json())?;
    let doc = net::read_frame(&mut stream)
        .map_err(io::Error::from)?
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionReset,
                "node closed during handshake",
            )
        })?;
    match Welcome::from_json(&doc) {
        Some(Welcome::Accepted { slots }) => {
            stream.set_read_timeout(Some(POLL))?;
            Ok((stream, slots))
        }
        Some(Welcome::Refused { reason }) => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("node refused registration: {reason}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "node answered the handshake with an unintelligible frame",
        )),
    }
}

#[cfg(unix)]
fn exit_signal(status: &ExitStatus) -> Option<i32> {
    std::os::unix::process::ExitStatusExt::signal(status)
}

#[cfg(not(unix))]
fn exit_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// What the child's stdout reader thread forwards to the proxy loop.
enum ChildEvent {
    /// A raw frame from the child, forwarded to the client verbatim.
    Frame(Json),
    /// The child exited (or was killed).
    Eof,
    /// The pipe broke mid-frame — treated like a crash.
    Failed(#[allow(dead_code)] io::Error),
}

/// A supervised child worker proxied to one fleet connection.
struct ProxyChild {
    child: Child,
    stdin: ChildStdin,
    events: Receiver<ChildEvent>,
    cells_done: u64,
}

/// Self-execs the current binary as a PR 5 worker, exactly as the local
/// supervisor does.
fn spawn_proxy_child() -> io::Result<ProxyChild> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("worker")
        .env(crate::worker::WORKER_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let mut stdout = child.stdout.take().expect("stdout was piped");
    let (sender, events) = mpsc::channel();
    std::thread::spawn(move || loop {
        let event = match read_frame(&mut stdout) {
            Ok(Some(frame)) => ChildEvent::Frame(frame),
            Ok(None) => ChildEvent::Eof,
            Err(err) => ChildEvent::Failed(err),
        };
        let terminal = !matches!(event, ChildEvent::Frame(_));
        if sender.send(event).is_err() || terminal {
            return;
        }
    });
    Ok(ProxyChild {
        child,
        stdin,
        events,
        cells_done: 0,
    })
}

/// Reaps a child that is already gone (or nearly); SIGKILL on a zombie is
/// a no-op and preserves the recorded exit status.
fn reap_child(proxy: ProxyChild) -> io::Result<ExitStatus> {
    let mut child = proxy.child;
    let _ = child.kill();
    child.wait()
}

/// SIGKILL without ceremony (client vanished; nobody to report to).
fn kill_child(proxy: ProxyChild) {
    let mut child = proxy.child;
    let _ = child.kill();
    let _ = child.wait();
}

/// Graceful retirement: close stdin (EOF ends the worker loop), give it a
/// moment, escalate to SIGKILL if it will not leave.
fn retire_child(proxy: ProxyChild) {
    let ProxyChild {
        mut child, stdin, ..
    } = proxy;
    drop(stdin);
    for _ in 0..50 {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => break,
        }
    }
    let _ = child.kill();
    let _ = child.wait();
}

/// Builds the `crashed` reply a daemon sends when its proxied child died
/// under a cell, carrying the exit evidence for remote classification.
fn crash_reply(id: u64, status: io::Result<ExitStatus>) -> Json {
    let (signal, code, message) = match status {
        Ok(status) => {
            let signal = exit_signal(&status);
            let code = status.code();
            let message = match (signal, code) {
                (Some(sig), _) => format!("remote worker killed by signal {sig}"),
                (None, Some(code)) => format!("remote worker exited with code {code}"),
                (None, None) => "remote worker died without a status".to_string(),
            };
            (signal, code, message)
        }
        Err(_) => (
            None,
            None,
            "remote worker died without a status".to_string(),
        ),
    };
    WorkerReply::Err {
        id,
        kind: "crashed".to_string(),
        message,
        signal,
        code,
    }
    .to_json()
}

/// The id that concludes a cell, if `frame` is a final (non-heartbeat)
/// reply.
fn concluding_id(frame: &Json) -> Option<u64> {
    match WorkerReply::from_json(frame) {
        Some(WorkerReply::Ok { id, .. }) | Some(WorkerReply::Err { id, .. }) => Some(id),
        _ => None,
    }
}

/// The `fdip workerd` serve loop: accepts fleet connections on
/// `listener`, advertising `slots` seats per handshake, until `shutdown`
/// returns true — then drains (in-flight cells finish, idle connections
/// get a `bye`, children retire) and returns.
///
/// Each connection is served on its own thread and proxied to a
/// supervised child worker spawned lazily on its first cell, so a cell
/// that aborts, hangs, or OOMs remotely takes down a disposable child —
/// never the daemon. A vanished client (severed connection) SIGKILLs the
/// child, which is how remote budget preemption works.
///
/// # Errors
///
/// Only listener-level failures; per-connection errors retire that
/// connection and are otherwise absorbed.
pub fn serve_workerd(
    listener: TcpListener,
    slots: usize,
    shutdown: &(dyn Fn() -> bool + Sync),
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let draining = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shutdown() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let draining = Arc::clone(&draining);
                conns.push(std::thread::spawn(move || {
                    serve_connection(stream, slots, &draining);
                }));
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
        conns.retain(|handle| !handle.is_finished());
    }
    // Drain: no new connections (we stopped accepting), in-flight cells
    // finish, idle connections say goodbye.
    draining.store(true, Ordering::Relaxed);
    for handle in conns {
        let _ = handle.join();
    }
    Ok(())
}

/// One fleet connection: handshake, then proxy cells to a child worker.
fn serve_connection(mut stream: TcpStream, slots: usize, draining: &AtomicBool) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(POLL)).is_err()
        || stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT)).is_err()
    {
        return;
    }

    // Handshake, bounded: a peer that won't identify itself gets nothing.
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let hello = loop {
        match net::read_frame(&mut stream) {
            Ok(Some(doc)) => break Hello::from_json(&doc),
            Ok(None) => return,
            Err(err) if err.is_timeout() => {
                if Instant::now() >= deadline || draining.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return, // oversized/truncated/garbage: refuse to guess
        }
    };
    let Some(hello) = hello else { return };
    let fingerprint = net::build_fingerprint();
    if hello.protocol != PROTOCOL_VERSION || hello.fingerprint != fingerprint {
        let reason = format!(
            "version mismatch: peer is {:?} proto {}, daemon is {:?} proto {PROTOCOL_VERSION}",
            hello.fingerprint, hello.protocol, fingerprint
        );
        let _ = net::write_frame(&mut stream, &Welcome::Refused { reason }.to_json());
        return;
    }
    if draining.load(Ordering::Relaxed) {
        let reason = "daemon is draining".to_string();
        let _ = net::write_frame(&mut stream, &Welcome::Refused { reason }.to_json());
        return;
    }
    if net::write_frame(&mut stream, &Welcome::Accepted { slots }.to_json()).is_err() {
        return;
    }

    let mut child: Option<ProxyChild> = None;
    loop {
        // Idle: wait for the next cell (or the drain signal).
        let doc = match net::read_frame(&mut stream) {
            Ok(Some(doc)) => doc,
            Ok(None) => break, // client closed between cells
            Err(err) if err.is_timeout() => {
                if draining.load(Ordering::Relaxed) {
                    let _ = net::write_frame(&mut stream, &bye_frame());
                    break;
                }
                continue;
            }
            // Corrupt, oversized, or truncated input: never guess at a
            // desynchronized stream — sever it. The client re-dispatches.
            Err(_) => break,
        };
        let Some(request) = RunRequest::from_json(&doc) else {
            break; // valid JSON, wrong protocol: same treatment
        };
        if draining.load(Ordering::Relaxed) {
            let _ = net::write_frame(&mut stream, &bye_frame());
            break;
        }

        if child.is_none() {
            match spawn_proxy_child() {
                Ok(spawned) => child = Some(spawned),
                Err(err) => {
                    let reply = WorkerReply::Err {
                        id: request.id,
                        kind: "transient".to_string(),
                        message: format!("daemon could not spawn a worker: {err}"),
                        signal: None,
                        code: None,
                    };
                    if net::write_frame(&mut stream, &reply.to_json()).is_err() {
                        break;
                    }
                    continue;
                }
            }
        }
        let proxy = child.as_mut().expect("child just ensured");
        if write_frame(&mut proxy.stdin, &doc).is_err() {
            // Child died between cells: report and close; the client
            // redials, getting a fresh connection and a fresh child.
            let status = reap_child(child.take().expect("child present"));
            let _ = net::write_frame(&mut stream, &crash_reply(request.id, status));
            break;
        }

        // Busy: pump the child's frames (heartbeats included) to the
        // client until this cell concludes. Deliberately no drain check
        // here — in-flight cells finish.
        let mut concluded = false;
        loop {
            let proxy = child.as_mut().expect("child live while busy");
            match proxy.events.recv_timeout(POLL) {
                Ok(ChildEvent::Frame(frame)) => {
                    let done = concluding_id(&frame) == Some(request.id);
                    if net::write_frame(&mut stream, &frame).is_err() {
                        // The client vanished mid-cell: that is the remote
                        // SIGKILL (budget preemption or client death).
                        kill_child(child.take().expect("child present"));
                        return;
                    }
                    if done {
                        concluded = true;
                        break;
                    }
                }
                Ok(ChildEvent::Eof) | Ok(ChildEvent::Failed(_)) => {
                    let status = reap_child(child.take().expect("child present"));
                    let _ = net::write_frame(&mut stream, &crash_reply(request.id, status));
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    let status = reap_child(child.take().expect("child present"));
                    let _ = net::write_frame(&mut stream, &crash_reply(request.id, status));
                    break;
                }
            }
        }
        if !concluded {
            break; // child crashed: close so the client starts clean
        }
        let proxy = child.as_mut().expect("child survived the cell");
        proxy.cells_done += 1;
        if proxy.cells_done >= RECYCLE_AFTER {
            retire_child(child.take().expect("child present"));
        }
    }
    if let Some(proxy) = child {
        retire_child(proxy);
    }
}

/// What a [`ResultCache`] scan found, reported at attach time (the
/// `journal restored ...`-style startup line).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Valid entries present.
    pub entries: usize,
    /// Files whose CRC frame or schema did not verify (bit rot), skipped.
    pub corrupt: usize,
}

/// One [`ResultCache`] lookup's outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum CacheLookup {
    /// The cell's finished statistics, verified end to end.
    Hit(Box<SimStats>),
    /// No entry for this cell.
    Miss,
    /// An entry exists but failed its CRC, schema, or key check — skipped
    /// and counted, never trusted.
    Corrupt,
}

/// The cluster-wide content-addressed result cache: one atomically
/// written, CRC32-framed [`JournalEntry`] file per completed cell, keyed
/// by `(workload, trace_len, config-fingerprint)`. Consulted before any
/// dispatch; shared safely between concurrent processes because entries
/// are immutable for a given key (the simulator is deterministic) and
/// writes go through rename.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, workload: &str, trace_len: usize, fingerprint: &str) -> PathBuf {
        let key = crate::fault::fnv1a(&format!("{workload}\u{0}{trace_len}\u{0}{fingerprint}"));
        self.dir.join(format!("{key:016x}.cell"))
    }

    fn decode(contents: &str) -> Option<JournalEntry> {
        let line = contents.lines().next()?;
        let (stored_crc, payload) = split_crc_frame(line)?;
        if crc32(payload.as_bytes()) != stored_crc {
            return None;
        }
        JournalEntry::parse(payload)
    }

    /// Looks up one cell. A hit is verified three ways — CRC32 frame,
    /// schema parse, and a full key comparison (so even an FNV collision
    /// cannot serve the wrong cell's statistics).
    pub fn lookup(&self, workload: &str, trace_len: usize, fingerprint: &str) -> CacheLookup {
        let path = self.entry_path(workload, trace_len, fingerprint);
        let contents = match std::fs::read_to_string(&path) {
            Ok(contents) => contents,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(_) => return CacheLookup::Corrupt,
        };
        match Self::decode(&contents) {
            Some(entry)
                if entry.workload == workload
                    && entry.trace_len == trace_len
                    && entry.config == fingerprint =>
            {
                CacheLookup::Hit(Box::new(entry.stats))
            }
            _ => CacheLookup::Corrupt,
        }
    }

    /// Persists one completed cell, atomically (temp + fsync + rename):
    /// a concurrent reader sees the old entry or the new one, never a
    /// torn file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn store(&self, entry: &JournalEntry) -> io::Result<()> {
        let path = self.entry_path(&entry.workload, entry.trace_len, &entry.config);
        let payload = entry.to_json().to_string();
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        crate::persist::write_atomic(&path, line.as_bytes())
    }

    /// Scans the cache, counting valid and corrupt entries — the warm
    /// start report.
    pub fn scan(&self) -> CacheSummary {
        let mut summary = CacheSummary::default();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return summary;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("cell") {
                continue;
            }
            // Valid means fully valid: frame, schema, *and* addressing —
            // an intact entry sitting under some other cell's key would
            // be refused by `lookup`, so the scan calls it corrupt too.
            let valid = std::fs::read_to_string(&path)
                .ok()
                .and_then(|contents| Self::decode(&contents))
                .is_some_and(|decoded| {
                    self.entry_path(&decoded.workload, decoded.trace_len, &decoded.config) == path
                });
            if valid {
                summary.entries += 1;
            } else {
                summary.corrupt += 1;
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn canned_stats() -> SimStats {
        SimStats {
            cycles: 123,
            instructions: 456,
            ..SimStats::default()
        }
    }

    fn spec() -> WorkloadSpec {
        use fdip_trace::gen::Profile;
        WorkloadSpec::new(Profile::Server, 1)
    }

    /// A scripted peer standing in for a workerd: accepts `conns`
    /// connections, handshakes each, then runs `script` on it.
    fn fake_node(
        conns: usize,
        script: impl Fn(usize, &mut TcpStream) + Send + 'static,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for i in 0..conns {
                let (mut stream, _) = listener.accept().unwrap();
                let doc = net::read_frame(&mut stream).unwrap().unwrap();
                assert!(Hello::from_json(&doc).is_some());
                net::write_frame(&mut stream, &Welcome::Accepted { slots: 1 }.to_json()).unwrap();
                script(i, &mut stream);
            }
        });
        (addr, handle)
    }

    fn tiny_config(addrs: Vec<String>) -> FleetConfig {
        FleetConfig {
            addrs,
            connect_timeout: Duration::from_secs(2),
            heartbeat_timeout: Duration::from_millis(400),
        }
    }

    #[test]
    fn fleet_runs_a_cell_against_a_node() {
        let (addr, node) = fake_node(1, |_, stream| {
            let doc = net::read_frame(stream).unwrap().unwrap();
            let request = RunRequest::from_json(&doc).expect("a run request");
            net::write_frame(stream, &WorkerReply::Heartbeat.to_json()).unwrap();
            let reply = WorkerReply::Ok {
                id: request.id,
                stats: Box::new(canned_stats()),
            };
            net::write_frame(stream, &reply.to_json()).unwrap();
        });
        let fleet = Fleet::connect(tiny_config(vec![addr.clone()])).unwrap();
        assert_eq!(fleet.workers(), 1);
        assert_eq!(fleet.nodes(), vec![(addr, 1)]);
        let stats = fleet
            .run_cell(&spec(), 1000, 0, None, None, &FrontendConfig::default(), 1)
            .unwrap();
        assert_eq!(stats, canned_stats());
        assert_eq!(
            fleet.stats(),
            FleetStats {
                fleet_workers: 1,
                node_losses: 0,
                cells_redispatched: 0
            }
        );
        node.join().unwrap();
    }

    #[test]
    fn a_node_closing_mid_cell_is_one_loss_and_a_redial_recovers() {
        let (addr, node) = fake_node(2, |conn, stream| {
            let doc = net::read_frame(stream).unwrap().unwrap();
            let request = RunRequest::from_json(&doc).expect("a run request");
            if conn == 0 {
                return; // die mid-cell: the client must classify a loss
            }
            let reply = WorkerReply::Ok {
                id: request.id,
                stats: Box::new(canned_stats()),
            };
            net::write_frame(stream, &reply.to_json()).unwrap();
        });
        let fleet = Fleet::connect(tiny_config(vec![addr])).unwrap();
        let config = FrontendConfig::default();
        let err = fleet
            .run_cell(&spec(), 1000, 0, None, None, &config, 1)
            .unwrap_err();
        assert!(
            matches!(err, CellError::Crashed { .. }),
            "node loss must be retryable Crashed, got {err:?}"
        );
        assert!(err.retryable());
        // The retry (attempt 2) redials and succeeds.
        let stats = fleet
            .run_cell(&spec(), 1000, 0, None, None, &config, 2)
            .unwrap();
        assert_eq!(stats, canned_stats());
        let stats = fleet.stats();
        assert_eq!(stats.node_losses, 1);
        assert_eq!(stats.cells_redispatched, 1);
        node.join().unwrap();
    }

    #[test]
    fn partition_fault_trips_the_heartbeat_deadline() {
        let (addr, node) = fake_node(1, |_, stream| {
            let doc = net::read_frame(stream).unwrap().unwrap();
            let request = RunRequest::from_json(&doc).expect("a run request");
            // The node answers normally — the *client* is partitioned.
            let reply = WorkerReply::Ok {
                id: request.id,
                stats: Box::new(canned_stats()),
            };
            let _ = net::write_frame(stream, &reply.to_json());
        });
        let fleet = Fleet::connect(tiny_config(vec![addr])).unwrap();
        let start = Instant::now();
        let err = fleet
            .run_cell(
                &spec(),
                1000,
                0,
                None,
                Some(NetFault::Partition),
                &FrontendConfig::default(),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, CellError::Crashed { .. }), "{err:?}");
        assert!(
            start.elapsed() >= Duration::from_millis(350),
            "partition must be detected by the heartbeat deadline, not eagerly"
        );
        assert_eq!(fleet.stats().node_losses, 1);
        node.join().unwrap();
    }

    #[test]
    fn drop_fault_severs_before_dispatch() {
        let (addr, node) = fake_node(1, |_, stream| {
            // Nothing should arrive: severed before dispatch. Read until
            // the client closes.
            while let Ok(Some(_)) = net::read_frame(stream) {}
        });
        let fleet = Fleet::connect(tiny_config(vec![addr])).unwrap();
        let err = fleet
            .run_cell(
                &spec(),
                1000,
                0,
                None,
                Some(NetFault::Drop),
                &FrontendConfig::default(),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, CellError::Crashed { .. }), "{err:?}");
        assert_eq!(fleet.stats().node_losses, 1);
        drop(fleet); // closes the connection so the node thread ends
        node.join().unwrap();
    }

    #[test]
    fn an_unreachable_fleet_is_an_error_and_a_refusal_names_its_reason() {
        let err = Fleet::connect(tiny_config(vec!["127.0.0.1:1".to_string()])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let refuser = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = net::read_frame(&mut stream).unwrap();
            let reason = "protocol too old".to_string();
            net::write_frame(&mut stream, &Welcome::Refused { reason }.to_json()).unwrap();
        });
        let err = dial(&addr, Duration::from_secs(2)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(err.to_string().contains("protocol too old"), "{err}");
        refuser.join().unwrap();
    }

    #[test]
    fn workerd_refuses_a_mismatched_peer_and_drains_on_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let daemon = std::thread::spawn(move || {
            serve_workerd(listener, 2, &move || flag.load(Ordering::Relaxed))
        });

        // Wrong protocol version → typed refusal, no child ever spawned.
        let mut stream = net::connect(&addr, Duration::from_secs(2)).unwrap();
        let bogus = Hello {
            protocol: PROTOCOL_VERSION + 1,
            fingerprint: net::build_fingerprint(),
        };
        net::write_frame(&mut stream, &bogus.to_json()).unwrap();
        let doc = read_with_patience(&mut stream);
        match Welcome::from_json(&doc) {
            Some(Welcome::Refused { reason }) => {
                assert!(reason.contains("version mismatch"), "{reason}")
            }
            other => panic!("expected a refusal, got {other:?}"),
        }

        // A well-formed handshake is accepted (still no cell, no child).
        let mut stream = net::connect(&addr, Duration::from_secs(2)).unwrap();
        net::write_frame(&mut stream, &Hello::current().to_json()).unwrap();
        let doc = read_with_patience(&mut stream);
        assert_eq!(
            Welcome::from_json(&doc),
            Some(Welcome::Accepted { slots: 2 })
        );

        stop.store(true, Ordering::Relaxed);
        daemon.join().unwrap().unwrap();
    }

    /// Reads one frame, riding out the poll-quantum read timeouts.
    fn read_with_patience(stream: &mut TcpStream) -> Json {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match net::read_frame(stream) {
                Ok(Some(doc)) => return doc,
                Ok(None) => panic!("peer closed before answering"),
                Err(err) if err.is_timeout() && Instant::now() < deadline => {}
                Err(err) => panic!("handshake read failed: {err}"),
            }
        }
    }

    #[test]
    fn cache_round_trips_detects_corruption_and_rejects_key_mismatches() {
        let dir = std::env::temp_dir().join(format!("fdip-cellcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.scan(), CacheSummary::default());
        assert_eq!(cache.lookup("w", 1000, "cfg"), CacheLookup::Miss);

        let entry = JournalEntry {
            workload: "w".to_string(),
            trace_len: 1000,
            config: "cfg".to_string(),
            stats: canned_stats(),
        };
        cache.store(&entry).unwrap();
        assert_eq!(
            cache.lookup("w", 1000, "cfg"),
            CacheLookup::Hit(Box::new(canned_stats()))
        );
        assert_eq!(
            cache.scan(),
            CacheSummary {
                entries: 1,
                corrupt: 0
            }
        );

        // A colliding file holding some *other* cell's entry must not be
        // served: the stored key is compared in full.
        let other_path = cache.entry_path("other", 9, "zzz");
        std::fs::copy(cache.entry_path("w", 1000, "cfg"), &other_path).unwrap();
        assert_eq!(cache.lookup("other", 9, "zzz"), CacheLookup::Corrupt);

        // Bit rot: flip a byte inside the payload → CRC catches it.
        let path = cache.entry_path("w", 1000, "cfg");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.lookup("w", 1000, "cfg"), CacheLookup::Corrupt);
        let summary = cache.scan();
        assert_eq!(summary.corrupt, 2, "{summary:?}");

        // A fresh store repairs the entry.
        cache.store(&entry).unwrap();
        assert_eq!(
            cache.lookup("w", 1000, "cfg"),
            CacheLookup::Hit(Box::new(canned_stats()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_of_a_cache_entry_is_corrupt_never_a_panic() {
        let dir = std::env::temp_dir().join(format!("fdip-cellcache-tr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let entry = JournalEntry {
            workload: "w".to_string(),
            trace_len: 500,
            config: "cfg".to_string(),
            stats: canned_stats(),
        };
        cache.store(&entry).unwrap();
        let path = cache.entry_path("w", 500, "cfg");
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len().saturating_sub(1) {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(
                cache.lookup("w", 500, "cfg"),
                CacheLookup::Corrupt,
                "cut at {cut}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
